"""Shared fixtures for the benchmark/reproduction harness.

Every bench regenerates one table or figure of the paper (see
DESIGN.md's per-experiment index), times its core computation with
pytest-benchmark, prints the reproduced artifact, and writes it under
``benchmarks/output/`` so EXPERIMENTS.md can reference stable files.

Run with::

    pytest benchmarks/ --benchmark-only

The synthetic world used here is the *medium* stock scale (~30k hosts);
set ``REPRO_BENCH_SCALE=large`` for the ~120k-host paper-shape runs.
"""

import os
from pathlib import Path

import pytest

from repro.eval import ReproductionContext, TableResult
from repro.synth import WorldConfig

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_config() -> WorldConfig:
    """The world scale benches run at (env-switchable)."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "medium")
    if scale == "large":
        return WorldConfig.large()
    if scale == "small":
        return WorldConfig.small()
    return WorldConfig.medium()


@pytest.fixture(scope="session")
def ctx() -> ReproductionContext:
    """The shared reproduction context (world + core + estimates)."""
    return ReproductionContext.build(bench_config())


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture()
def save_artifact(output_dir):
    """Print a reproduced table and persist it for EXPERIMENTS.md."""

    def _save(result: TableResult, extra: str = "") -> None:
        text = result.to_ascii()
        if extra:
            text = text + "\n\n" + extra
        print("\n" + text)
        path = output_dir / f"{result.experiment_id}.txt"
        path.write_text(text + "\n", encoding="utf-8")

    return _save
