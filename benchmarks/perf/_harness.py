"""Shared plumbing for the perf benchmark scripts.

Both ``bench_pagerank.py`` and ``bench_incremental.py`` need the same
scaffolding — best-of-N timing, a version-stamped report skeleton, JSON
emission to a file or stdout — and CI diffs their committed baselines,
so the report shape must stay consistent across the two.  Keeping the
helpers here keeps the scripts about *what* they measure.

This package directory is excluded from pytest collection
(``testpaths = ["tests"]``); the scripts import it relatively via
``sys.path`` manipulation so they stay runnable as plain
``python benchmarks/perf/bench_*.py`` without installing anything.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path

import numpy as np
import scipy

__all__ = [
    "best_of",
    "median",
    "emit_report",
    "new_report",
    "split_csv",
]


def best_of(repeats, fn):
    """Run ``fn`` ``repeats`` times; return (best seconds, last result).

    Best-of-N is the standard defense against interference from other
    processes: the minimum is the run closest to the true cost.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def median(values):
    """Median of a sequence of floats (no numpy dtype leakage)."""
    return float(np.median(np.asarray(list(values), dtype=np.float64)))


def new_report(benchmark, parameters):
    """The common report skeleton: schema, tool versions, parameters.

    The ``versions`` block exists so a regression investigation can
    tell a code regression from a numpy/scipy upgrade on the runner.
    """
    return {
        "schema": 1,
        "benchmark": benchmark,
        "versions": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "scipy": scipy.__version__,
        },
        "parameters": parameters,
        "presets": {},
    }


def emit_report(report, out):
    """Write ``report`` as JSON to ``out`` (or stdout when ``None``)."""
    payload = json.dumps(report, indent=2, sort_keys=False) + "\n"
    if out:
        path = Path(out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(payload, encoding="utf-8")
        print(f"wrote {path}", file=sys.stderr)
    else:
        print(payload, end="")


def split_csv(text):
    """``"a, b,c"`` → ``["a", "b", "c"]`` (argparse list flags)."""
    return [item.strip() for item in text.split(",") if item.strip()]
