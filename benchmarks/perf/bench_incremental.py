#!/usr/bin/env python
"""Benchmark: incremental push updates vs a cold batched re-solve.

The deployment story of the incremental engine (``docs/perf.md``) is a
mass-estimation service tracking an evolving host graph: between two
crawls a small fraction of edges changes, and the service re-ranks by
warm-starting from yesterday's converged ``(p, p')`` pair instead of
re-solving from scratch.  This bench reproduces that loop on the
synthetic presets:

1. Solve the base graph cold (the state a service holds in memory).
2. For each of ``--events`` independent churn events, materialize an
   edge delta sized to ``--churn`` of the edge count, in two flavors:

   ``farm``
       Spam-farm appearance: previously link-less hosts sprout ~20
       outlinks each, pointing at other link-less leaves — doorway
       pages linking up content leaves, the canonical link-spam event
       the paper's detector exists to catch.  The perturbation stays
       local (leaf targets absorb mass without scattering), which is
       exactly the regime push updates are built for.
   ``diffuse``
       The same sources pointing at uniformly random targets.  The
       residual reaches well-connected hosts and diffuses graph-wide,
       so the push kernel escapes to the cold block kernel (see
       ``docs/perf.md``) and only the warm-start advantage survives.

3. Time, per event, a cold ``solve_many`` on the mutated graph (fresh
   engine: operator build + block solve, what a re-run pays) against
   ``update_many`` on an engine holding the hot operator (operator
   splice + residual push, what the service pays).  ``farm`` events are
   independent perturbations of the base graph; ``diffuse`` events
   *chain* — event ``i`` applies to the graph events ``1..i-1``
   produced, the realistic between-crawl stream — and are additionally
   measured **coalesced**: all ``--events`` deltas composed into one
   net splice and one warm solve (``update_many`` on the application
   list), amortizing the solve across the window.  Per-event rows
   record the push-solver work profile (seed frontier, live frontier,
   escapes, escape sweeps, correction columns, polish sweeps).
4. Verify per event that the incremental scores match the cold ones to
   ``10 * tol`` per node, and report the median speedup per flavor.

Two tolerance scenarios run back-to-back: ``default`` (``1e-12``, the
reproduction default — the incremental solver runs at the same ``tol``
as the cold solve) is the one the CI speedup gates apply to; ``relaxed``
(``1e-8``, plenty for a threshold detector at ``tau = 0.98``) is
reported for reference.  The ``farm`` gate (``--min-speedup``) applies
to the per-event median: a leaf-local push converges in a couple of
sweeps.  The ``diffuse`` per-event speedup is honest but small
(~1.1-1.3x, warm start alone — the residual reaches well-connected
hosts and the push kernel escapes to the cold block kernel), so its
gate (``--min-diffuse-speedup``) applies to the *coalesced* per-event
cost: one composed solve across the window divided by the events it
covers.

Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_incremental.py \
        --out benchmarks/perf/BENCH_incremental.json

    # CI gate: >=5x median farm-flavor speedup at 1% churn on the
    # medium preset, >=2x amortized coalesced diffuse speedup, and no
    # >4x slowdown vs the committed baseline
    PYTHONPATH=src python benchmarks/perf/bench_incremental.py \
        --check benchmarks/perf/BENCH_incremental.json \
        --factor 4.0 --min-speedup 5.0 --min-diffuse-speedup 2.0

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection and the bench must run standalone in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit_report, median, new_report, split_csv  # noqa: E402

#: Outlinks each appearing farm host sprouts; ~the size of the alliance
#: rings in the synthetic worlds.
LINKS_PER_HOST = 20

SCENARIOS = (
    {"name": "default", "tol": 1e-12, "gated": True},
    {"name": "relaxed", "tol": 1e-8, "gated": False},
)

#: The per-event CI speedup floor (``--min-speedup``) applies to this
#: churn flavor; ``diffuse`` is gated on its coalesced amortized
#: speedup instead (``--min-diffuse-speedup``).
GATED_FLAVOR = "farm"

#: Push-solver work profile copied into every per-event row.
STAT_FIELDS = (
    "sweeps",
    "pushes",
    "max_frontier",
    "seed_frontier",
    "live_seed_frontier",
    "escapes",
    "escape_sweeps",
    "correction_cols",
    "polish_sweeps",
)


def churn_delta(graph, *, churn, rng, flavor):
    """An insertion-only delta: link-less hosts sprout outlinks.

    Sized to ``churn * num_edges`` new edges, spread over hosts that
    currently have no outlinks (so every insertion is guaranteed
    fresh).  The ``farm`` flavor points them at other link-less leaves
    — doorway pages linking up content leaves, a new spam farm
    lighting up between crawls; ``diffuse`` points them at uniformly
    random hosts, the worst case for push locality.
    """
    from repro.graph import GraphDelta

    n = graph.num_nodes
    out_degree = np.diff(graph.indptr)
    silent = np.flatnonzero(out_degree == 0)
    budget = max(1, int(round(churn * graph.num_edges)))
    num_farms = max(1, min(len(silent), budget // LINKS_PER_HOST))
    sources = rng.choice(silent, size=num_farms, replace=False)
    insertions = []
    for src in sources:
        if flavor == "farm":
            pool = silent[silent != src]
            targets = rng.choice(pool, size=LINKS_PER_HOST, replace=False)
        else:
            targets = rng.choice(n - 1, size=LINKS_PER_HOST, replace=False)
            # shift past src so no self-link is drawn
            targets = np.where(targets >= src, targets + 1, targets)
        insertions.extend((int(src), int(t)) for t in targets)
    return GraphDelta(insertions=insertions)


def bench_preset(config, *, repeats, events, churn, seed):
    from repro.core.pagerank import (
        scaled_core_jump_vector,
        uniform_jump_vector,
    )
    from repro.perf import PagerankEngine
    from repro.synth.scenario import build_world, default_good_core

    world = build_world(config)
    graph = world.graph
    core = default_good_core(world)
    n = graph.num_nodes
    stacked = np.stack(
        [
            uniform_jump_vector(n),
            scaled_core_jump_vector(n, core, gamma=0.85),
        ],
        axis=1,
    )

    rng = np.random.default_rng(seed)
    # farm: independent perturbations of the base graph (drawn first so
    # the rng stream — and thus the gated farm numbers — stay stable)
    farm_apps = [
        churn_delta(graph, churn=churn, rng=rng, flavor="farm").apply(
            graph
        )
        for _ in range(events)
    ]
    # diffuse: a chained stream — each delta applies to the graph the
    # previous events produced.  Sources stay disjoint across events (a
    # host that sprouted links is no longer silent), so the chain
    # composes to one conflict-free net splice.
    diffuse_apps = []
    tip = graph
    for _ in range(events):
        delta = churn_delta(tip, churn=churn, rng=rng, flavor="diffuse")
        application = delta.apply(tip)
        diffuse_apps.append(application)
        tip = application.after

    preset = {
        "num_nodes": n,
        "num_edges": graph.num_edges,
        "dangling_frac": round(float(graph.dangling_mask().mean()), 4),
        "churn": {
            "fraction": churn,
            "events": events,
            "insertions_per_event": farm_apps[0].delta.num_insertions,
            "links_per_host": LINKS_PER_HOST,
        },
        "scenarios": {},
    }

    def _stat_row(stats):
        row = {field: getattr(stats, field) for field in STAT_FIELDS}
        row["correction_gain"] = round(stats.correction_gain, 4)
        return row

    def _time_cold(application, tol):
        best = float("inf")
        result = None
        for _ in range(repeats):
            engine = PagerankEngine()  # cold: pays operator build
            start = time.perf_counter()
            result = engine.solve_many(application.after, stacked, tol=tol)
            best = min(best, time.perf_counter() - start)
        return best, result

    def _time_warm(application, previous, tol):
        best = float("inf")
        result = None
        for _ in range(repeats):
            engine = PagerankEngine()
            # untimed: the hot operator a long-running service holds
            engine.cache.bundle_for(application.before)
            start = time.perf_counter()
            result = engine.update_many(
                application, previous, stacked, tol=tol
            )
            best = min(best, time.perf_counter() - start)
        return best, result

    for scenario in SCENARIOS:
        tol = scenario["tol"]
        # the state a long-running service holds: the base solution and
        # the base operator (solved once, outside any timed region)
        base_engine = PagerankEngine()
        base = base_engine.solve_many(graph, stacked, tol=tol)

        flavor_blocks = {}
        for flavor, apps in (
            ("farm", farm_apps), ("diffuse", diffuse_apps),
        ):
            event_rows = []
            previous = base
            last_cold = None
            for application in apps:
                cold_best, cold_result = _time_cold(application, tol)
                inc_best, inc_result = _time_warm(
                    application, previous, tol
                )
                deviation = float(
                    np.abs(inc_result.scores - cold_result.scores).max()
                )
                row = {
                    "cold_seconds": round(cold_best, 4),
                    "incremental_seconds": round(inc_best, 4),
                    "speedup": round(cold_best / inc_best, 2),
                    "max_abs_deviation": float(f"{deviation:.3e}"),
                }
                row.update(_stat_row(inc_result.stats))
                event_rows.append(row)
                last_cold = cold_result
                if flavor == "diffuse":
                    # chained: the next event warm-starts from this one
                    previous = inc_result

            speedups = [row["speedup"] for row in event_rows]
            block = {
                "gated": scenario["gated"] and flavor == GATED_FLAVOR,
                "cold_seconds_median": round(
                    median(row["cold_seconds"] for row in event_rows), 4
                ),
                "incremental_seconds_median": round(
                    median(
                        row["incremental_seconds"] for row in event_rows
                    ),
                    4,
                ),
                "speedup_median": round(median(speedups), 2),
                "speedup_min": round(min(speedups), 2),
                "max_abs_deviation": max(
                    row["max_abs_deviation"] for row in event_rows
                ),
                "events": event_rows,
            }

            if flavor == "diffuse":
                # coalesced window: every chained delta composed into
                # one net splice, one warm solve from the base solution
                coal_best = float("inf")
                coal_result = None
                for _ in range(repeats):
                    engine = PagerankEngine()
                    engine.cache.bundle_for(graph)
                    start = time.perf_counter()
                    coal_result = engine.update_many(
                        list(apps), base, stacked, tol=tol
                    )
                    coal_best = min(
                        coal_best, time.perf_counter() - start
                    )
                coal_dev = float(
                    np.abs(coal_result.scores - last_cold.scores).max()
                )
                per_event = coal_best / len(apps)
                coalesced = {
                    "gated": scenario["gated"],
                    "events": len(apps),
                    "seconds": round(coal_best, 4),
                    "per_event_seconds": round(per_event, 4),
                    "speedup_per_event": round(
                        block["cold_seconds_median"] / per_event, 2
                    ),
                    "max_abs_deviation": float(f"{coal_dev:.3e}"),
                }
                coalesced.update(_stat_row(coal_result.stats))
                block["coalesced"] = coalesced

            flavor_blocks[flavor] = block

        preset["scenarios"][scenario["name"]] = {
            "tol": tol,
            "deviation_bound": 10.0 * tol,
            "flavors": flavor_blocks,
        }
    return preset


def verify_deviations(report):
    """Correctness failures (incremental drifted past ``10 * tol``)."""
    failures = []
    for name, preset in report["presets"].items():
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                if flavor["max_abs_deviation"] > scenario[
                    "deviation_bound"
                ]:
                    failures.append(
                        f"{name}/{sname}/{fname}: incremental scores "
                        f"deviate {flavor['max_abs_deviation']:.3e} from "
                        f"the cold solve, above the 10*tol bound "
                        f"{scenario['deviation_bound']:.1e}"
                    )
                coalesced = flavor.get("coalesced")
                if coalesced is not None and (
                    coalesced["max_abs_deviation"]
                    > scenario["deviation_bound"]
                ):
                    failures.append(
                        f"{name}/{sname}/{fname}/coalesced: composed "
                        f"scores deviate "
                        f"{coalesced['max_abs_deviation']:.3e} from the "
                        f"cold solve, above the 10*tol bound "
                        f"{scenario['deviation_bound']:.1e}"
                    )
    return failures


def check_regression(
    report, baseline_path, factor, min_speedup, min_diffuse_speedup=None
):
    """Return a list of failure messages (empty = pass).

    ``min_speedup`` and the slowdown factor apply to *gated* flavor
    blocks only (``farm`` at the reproduction tolerance) — a leaf-local
    push beats the cold solve per event.  ``min_diffuse_speedup``
    applies to the gated ``coalesced`` block of the ``diffuse`` flavor:
    its per-event speedup is warm-start-only (~1.1-1.3x, no meaningful
    floor), but one composed solve amortized across the window must
    beat the per-event cold solve by the floor.  The ``relaxed``
    scenario's cold solve is itself cheap, so it carries no gate —
    machine noise would dominate.
    """
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        base_preset = baseline.get("presets", {}).get(name)
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                coalesced = flavor.get("coalesced")
                if (
                    coalesced is not None
                    and coalesced.get("gated")
                    and min_diffuse_speedup is not None
                    and coalesced["speedup_per_event"]
                    < min_diffuse_speedup
                ):
                    failures.append(
                        f"{name}/{sname}/{fname}/coalesced: amortized "
                        f"speedup {coalesced['speedup_per_event']:.2f}x "
                        f"per event is below the required "
                        f"{min_diffuse_speedup:g}x"
                    )
                if not flavor["gated"]:
                    continue
                if min_speedup is not None and (
                    flavor["speedup_median"] < min_speedup
                ):
                    failures.append(
                        f"{name}/{sname}/{fname}: median incremental "
                        f"speedup {flavor['speedup_median']:.2f}x is "
                        f"below the required {min_speedup:g}x"
                    )
                base_flavor = None
                if base_preset:
                    base_flavor = (
                        base_preset.get("scenarios", {})
                        .get(sname, {})
                        .get("flavors", {})
                        .get(fname)
                    )
                if base_flavor is None:
                    continue
                current = flavor["incremental_seconds_median"]
                reference = base_flavor["incremental_seconds_median"]
                if reference > 0 and current > factor * reference:
                    failures.append(
                        f"{name}/{sname}/{fname}: incremental median "
                        f"{current:.4f}s is more than {factor:g}x the "
                        f"baseline {reference:.4f}s"
                    )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets",
        default="medium",
        help="comma-separated subset of small,medium,large",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing (default 3)"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=5,
        help="independent churn events per preset (median over them)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="fraction of the edge count inserted per event (default 1%%)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_incremental.json and "
        "exit non-zero on regression",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="max allowed slowdown vs the baseline (default 4.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the gated median speedup drops below this ratio",
    )
    parser.add_argument(
        "--min-diffuse-speedup",
        type=float,
        default=None,
        help="fail if the coalesced diffuse window's amortized "
        "per-event speedup drops below this ratio",
    )
    args = parser.parse_args(argv)

    from repro.synth.scenario import WorldConfig

    factories = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "large": WorldConfig.large,
    }
    names = split_csv(args.presets)
    unknown = sorted(set(names) - set(factories))
    if unknown:
        parser.error(f"unknown presets: {', '.join(unknown)}")

    report = new_report(
        "incremental_pagerank",
        {
            "seed": args.seed,
            "repeats": args.repeats,
            "events": args.events,
            "churn": args.churn,
            "gamma": 0.85,
        },
    )
    for name in names:
        print(f"benchmarking preset {name} ...", file=sys.stderr, flush=True)
        report["presets"][name] = bench_preset(
            factories[name](args.seed),
            repeats=args.repeats,
            events=args.events,
            churn=args.churn,
            seed=args.seed,
        )

    emit_report(report, args.out)

    for name, preset in report["presets"].items():
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                print(
                    f"{name}/{sname}/{fname} (tol={scenario['tol']:g}): "
                    f"cold {flavor['cold_seconds_median']}s, incremental "
                    f"{flavor['incremental_seconds_median']}s "
                    f"({flavor['speedup_median']}x median, "
                    f"{flavor['speedup_min']}x min), max deviation "
                    f"{flavor['max_abs_deviation']:.2e}",
                    file=sys.stderr,
                )
                coalesced = flavor.get("coalesced")
                if coalesced is not None:
                    print(
                        f"{name}/{sname}/{fname}/coalesced: "
                        f"{coalesced['events']} events in "
                        f"{coalesced['seconds']}s "
                        f"({coalesced['per_event_seconds']}s/event, "
                        f"{coalesced['speedup_per_event']}x amortized), "
                        f"max deviation "
                        f"{coalesced['max_abs_deviation']:.2e}",
                        file=sys.stderr,
                    )

    failures = verify_deviations(report)
    if args.check:
        failures.extend(
            check_regression(
                report,
                args.check,
                args.factor,
                args.min_speedup,
                args.min_diffuse_speedup,
            )
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
