#!/usr/bin/env python
"""Benchmark: incremental push updates vs a cold batched re-solve.

The deployment story of the incremental engine (``docs/perf.md``) is a
mass-estimation service tracking an evolving host graph: between two
crawls a small fraction of edges changes, and the service re-ranks by
warm-starting from yesterday's converged ``(p, p')`` pair instead of
re-solving from scratch.  This bench reproduces that loop on the
synthetic presets:

1. Solve the base graph cold (the state a service holds in memory).
2. For each of ``--events`` independent churn events, materialize an
   edge delta sized to ``--churn`` of the edge count, in two flavors:

   ``farm``
       Spam-farm appearance: previously link-less hosts sprout ~20
       outlinks each, pointing at other link-less leaves — doorway
       pages linking up content leaves, the canonical link-spam event
       the paper's detector exists to catch.  The perturbation stays
       local (leaf targets absorb mass without scattering), which is
       exactly the regime push updates are built for.
   ``diffuse``
       The same sources pointing at uniformly random targets.  The
       residual reaches well-connected hosts and diffuses graph-wide,
       so the push kernel escapes to the cold block kernel (see
       ``docs/perf.md``) and only the warm-start advantage survives.

3. Time, per event, a cold ``solve_many`` on the mutated graph (fresh
   engine: operator build + block solve, what a re-run pays) against
   ``update_many`` on an engine holding the *base* operator (operator
   splice + residual push, what the service pays).
4. Verify per event that the incremental scores match the cold ones to
   ``10 * tol`` per node, and report the median speedup per flavor.

Two tolerance scenarios run back-to-back: ``default`` (``1e-12``, the
reproduction default — the incremental solver runs at the same ``tol``
as the cold solve) is the one the CI speedup gate applies to, on the
``farm`` flavor; ``relaxed`` (``1e-8``, plenty for a threshold
detector at ``tau = 0.98``) is reported for reference.  The edge
*grows* with precision: a leaf-local push converges in a couple of
sweeps regardless of ``tol`` while the cold solve pays ~60% more
iterations going from 1e-8 to 1e-12.  The ``diffuse`` flavor is never
gated — its honest speedup is ~1.1-1.3x, from the warm start alone.

Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_incremental.py \
        --out benchmarks/perf/BENCH_incremental.json

    # CI gate: >=5x median farm-flavor speedup at 1% churn on the
    # medium preset, and no >4x slowdown vs the committed baseline
    PYTHONPATH=src python benchmarks/perf/bench_incremental.py \
        --check benchmarks/perf/BENCH_incremental.json \
        --factor 4.0 --min-speedup 5.0

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection and the bench must run standalone in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit_report, median, new_report, split_csv  # noqa: E402

#: Outlinks each appearing farm host sprouts; ~the size of the alliance
#: rings in the synthetic worlds.
LINKS_PER_HOST = 20

SCENARIOS = (
    {"name": "default", "tol": 1e-12, "gated": True},
    {"name": "relaxed", "tol": 1e-8, "gated": False},
)

#: The CI speedup floor applies to this churn flavor only.
GATED_FLAVOR = "farm"


def churn_delta(graph, *, churn, rng, flavor):
    """An insertion-only delta: link-less hosts sprout outlinks.

    Sized to ``churn * num_edges`` new edges, spread over hosts that
    currently have no outlinks (so every insertion is guaranteed
    fresh).  The ``farm`` flavor points them at other link-less leaves
    — doorway pages linking up content leaves, a new spam farm
    lighting up between crawls; ``diffuse`` points them at uniformly
    random hosts, the worst case for push locality.
    """
    from repro.graph import GraphDelta

    n = graph.num_nodes
    out_degree = np.diff(graph.indptr)
    silent = np.flatnonzero(out_degree == 0)
    budget = max(1, int(round(churn * graph.num_edges)))
    num_farms = max(1, min(len(silent), budget // LINKS_PER_HOST))
    sources = rng.choice(silent, size=num_farms, replace=False)
    insertions = []
    for src in sources:
        if flavor == "farm":
            pool = silent[silent != src]
            targets = rng.choice(pool, size=LINKS_PER_HOST, replace=False)
        else:
            targets = rng.choice(n - 1, size=LINKS_PER_HOST, replace=False)
            # shift past src so no self-link is drawn
            targets = np.where(targets >= src, targets + 1, targets)
        insertions.extend((int(src), int(t)) for t in targets)
    return GraphDelta(insertions=insertions)


def bench_preset(config, *, repeats, events, churn, seed):
    from repro.core.pagerank import (
        scaled_core_jump_vector,
        uniform_jump_vector,
    )
    from repro.perf import PagerankEngine
    from repro.synth.scenario import build_world, default_good_core

    world = build_world(config)
    graph = world.graph
    core = default_good_core(world)
    n = graph.num_nodes
    stacked = np.stack(
        [
            uniform_jump_vector(n),
            scaled_core_jump_vector(n, core, gamma=0.85),
        ],
        axis=1,
    )

    rng = np.random.default_rng(seed)
    flavors = {
        flavor: [
            churn_delta(graph, churn=churn, rng=rng, flavor=flavor)
            for _ in range(events)
        ]
        for flavor in ("farm", "diffuse")
    }
    applications = {
        flavor: [delta.apply(graph) for delta in deltas]
        for flavor, deltas in flavors.items()
    }

    preset = {
        "num_nodes": n,
        "num_edges": graph.num_edges,
        "dangling_frac": round(float(graph.dangling_mask().mean()), 4),
        "churn": {
            "fraction": churn,
            "events": events,
            "insertions_per_event": len(flavors["farm"][0]),
            "links_per_host": LINKS_PER_HOST,
        },
        "scenarios": {},
    }

    for scenario in SCENARIOS:
        tol = scenario["tol"]
        # the state a long-running service holds: the base solution and
        # the base operator (solved once, outside any timed region)
        base_engine = PagerankEngine()
        base = base_engine.solve_many(graph, stacked, tol=tol)

        flavor_blocks = {}
        for flavor, apps in applications.items():
            event_rows = []
            for application in apps:
                cold_best = float("inf")
                cold_result = None
                for _ in range(repeats):
                    engine = PagerankEngine()  # cold: pays operator build
                    start = time.perf_counter()
                    cold_result = engine.solve_many(
                        application.after, stacked, tol=tol
                    )
                    cold_best = min(cold_best, time.perf_counter() - start)

                inc_best = float("inf")
                inc_result = None
                for _ in range(repeats):
                    engine = PagerankEngine()
                    engine.cache.bundle_for(graph)  # untimed: service state
                    start = time.perf_counter()
                    inc_result = engine.update_many(
                        application, base, stacked, tol=tol
                    )
                    inc_best = min(inc_best, time.perf_counter() - start)

                deviation = float(
                    np.abs(inc_result.scores - cold_result.scores).max()
                )
                event_rows.append(
                    {
                        "cold_seconds": round(cold_best, 4),
                        "incremental_seconds": round(inc_best, 4),
                        "speedup": round(cold_best / inc_best, 2),
                        "max_abs_deviation": float(f"{deviation:.3e}"),
                        "sweeps": inc_result.stats.sweeps,
                        "pushes": inc_result.stats.pushes,
                        "max_frontier": inc_result.stats.max_frontier,
                    }
                )

            speedups = [row["speedup"] for row in event_rows]
            flavor_blocks[flavor] = {
                "gated": scenario["gated"] and flavor == GATED_FLAVOR,
                "cold_seconds_median": round(
                    median(row["cold_seconds"] for row in event_rows), 4
                ),
                "incremental_seconds_median": round(
                    median(
                        row["incremental_seconds"] for row in event_rows
                    ),
                    4,
                ),
                "speedup_median": round(median(speedups), 2),
                "speedup_min": round(min(speedups), 2),
                "max_abs_deviation": max(
                    row["max_abs_deviation"] for row in event_rows
                ),
                "events": event_rows,
            }

        preset["scenarios"][scenario["name"]] = {
            "tol": tol,
            "deviation_bound": 10.0 * tol,
            "flavors": flavor_blocks,
        }
    return preset


def verify_deviations(report):
    """Correctness failures (incremental drifted past ``10 * tol``)."""
    failures = []
    for name, preset in report["presets"].items():
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                if flavor["max_abs_deviation"] > scenario[
                    "deviation_bound"
                ]:
                    failures.append(
                        f"{name}/{sname}/{fname}: incremental scores "
                        f"deviate {flavor['max_abs_deviation']:.3e} from "
                        f"the cold solve, above the 10*tol bound "
                        f"{scenario['deviation_bound']:.1e}"
                    )
    return failures


def check_regression(report, baseline_path, factor, min_speedup):
    """Return a list of failure messages (empty = pass).

    The speedup floor and the slowdown factor both apply to *gated*
    flavor blocks only (``farm`` at the reproduction tolerance).  The
    ``diffuse`` flavor's speedup comes from the warm start alone
    (~1.1-1.3x) and the ``relaxed`` scenario's cold solve is itself
    cheap, so neither carries a meaningful floor — machine noise would
    dominate the gate.
    """
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        base_preset = baseline.get("presets", {}).get(name)
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                if not flavor["gated"]:
                    continue
                if min_speedup is not None and (
                    flavor["speedup_median"] < min_speedup
                ):
                    failures.append(
                        f"{name}/{sname}/{fname}: median incremental "
                        f"speedup {flavor['speedup_median']:.2f}x is "
                        f"below the required {min_speedup:g}x"
                    )
                base_flavor = None
                if base_preset:
                    base_flavor = (
                        base_preset.get("scenarios", {})
                        .get(sname, {})
                        .get("flavors", {})
                        .get(fname)
                    )
                if base_flavor is None:
                    continue
                current = flavor["incremental_seconds_median"]
                reference = base_flavor["incremental_seconds_median"]
                if reference > 0 and current > factor * reference:
                    failures.append(
                        f"{name}/{sname}/{fname}: incremental median "
                        f"{current:.4f}s is more than {factor:g}x the "
                        f"baseline {reference:.4f}s"
                    )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets",
        default="medium",
        help="comma-separated subset of small,medium,large",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing (default 3)"
    )
    parser.add_argument(
        "--events",
        type=int,
        default=5,
        help="independent churn events per preset (median over them)",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="fraction of the edge count inserted per event (default 1%%)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_incremental.json and "
        "exit non-zero on regression",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="max allowed slowdown vs the baseline (default 4.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if the gated median speedup drops below this ratio",
    )
    args = parser.parse_args(argv)

    from repro.synth.scenario import WorldConfig

    factories = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "large": WorldConfig.large,
    }
    names = split_csv(args.presets)
    unknown = sorted(set(names) - set(factories))
    if unknown:
        parser.error(f"unknown presets: {', '.join(unknown)}")

    report = new_report(
        "incremental_pagerank",
        {
            "seed": args.seed,
            "repeats": args.repeats,
            "events": args.events,
            "churn": args.churn,
            "gamma": 0.85,
        },
    )
    for name in names:
        print(f"benchmarking preset {name} ...", file=sys.stderr, flush=True)
        report["presets"][name] = bench_preset(
            factories[name](args.seed),
            repeats=args.repeats,
            events=args.events,
            churn=args.churn,
            seed=args.seed,
        )

    emit_report(report, args.out)

    for name, preset in report["presets"].items():
        for sname, scenario in preset["scenarios"].items():
            for fname, flavor in scenario["flavors"].items():
                print(
                    f"{name}/{sname}/{fname} (tol={scenario['tol']:g}): "
                    f"cold {flavor['cold_seconds_median']}s, incremental "
                    f"{flavor['incremental_seconds_median']}s "
                    f"({flavor['speedup_median']}x median, "
                    f"{flavor['speedup_min']}x min), max deviation "
                    f"{flavor['max_abs_deviation']:.2e}",
                    file=sys.stderr,
                )

    failures = verify_deviations(report)
    if args.check:
        failures.extend(
            check_regression(
                report, args.check, args.factor, args.min_speedup
            )
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    if args.check:
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
