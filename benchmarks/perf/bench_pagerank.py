#!/usr/bin/env python
"""Micro-benchmark for the batched PageRank engine.

Measures, on the synthetic presets, the spam-mass hot path — solving
the (uniform, core) jump pair — three ways:

``sequential``
    Two ``pagerank()`` calls against a cold engine: the operator is
    built on the first call and the two vectors solve one at a time.
    This is the pre-engine behavior an experiment paid per mass
    estimate.
``batched_cold``
    One ``solve_many`` on a cold engine: operator build, restriction
    build, and a single block iteration for both vectors.
``batched_warm``
    The same ``solve_many`` with the operator already cached — the
    steady state inside a sweep.

Emits ``BENCH_pagerank.json``; the committed copy next to this script
is the regression baseline.  Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_pagerank.py \
        --out benchmarks/perf/BENCH_pagerank.json

    # CI gate: fail on >2x slowdown vs the committed baseline, on the
    # batched path losing its edge over the sequential one, or on
    # telemetry costing more than its <5% budget when enabled
    PYTHONPATH=src python benchmarks/perf/bench_pagerank.py \
        --check benchmarks/perf/BENCH_pagerank.json \
        --factor 2.0 --min-speedup 1.5 --max-overhead 1.05

Each preset also times the warm batched solve twice more — telemetry
disabled (the process default) and enabled with an in-memory sink —
and records the ratio under ``telemetry.overhead_ratio``; see
``docs/observability.md``.

Wall-clock numbers move with hardware; the regression gate is a
*ratio* against the baseline recorded on the same runner class, and
the speedup gate is machine-independent (both paths run on the same
box in the same process).

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection (``testpaths = ["tests"]``), and the
bench must be runnable standalone in CI without plugins.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import best_of as _best_of  # noqa: E402
from _harness import emit_report, new_report, split_csv  # noqa: E402


def bench_preset(name, config, *, repeats, mc_walks):
    from repro.core.pagerank import (
        pagerank,
        scaled_core_jump_vector,
        uniform_jump_vector,
    )
    from repro.perf import PagerankEngine, pagerank_montecarlo_parallel
    from repro.synth.scenario import build_world, default_good_core

    world = build_world(config)
    graph = world.graph
    core = default_good_core(world)
    n = graph.num_nodes
    uniform = uniform_jump_vector(n)
    core_jump = scaled_core_jump_vector(n, core, gamma=0.85)
    stacked = np.stack([uniform, core_jump], axis=1)

    # sequential baseline: cold engine, one solve at a time
    def run_sequential():
        engine = PagerankEngine()
        r1 = pagerank(
            graph, uniform, tol=1e-12, transition_t=engine.operator(graph)
        )
        r2 = pagerank(
            graph, core_jump, tol=1e-12, transition_t=engine.operator(graph)
        )
        return r1, r2

    seq_seconds, (seq_r1, seq_r2) = _best_of(repeats, run_sequential)

    # batched, cold cache (includes operator + restriction build)
    def run_cold():
        engine = PagerankEngine()
        return engine.solve_many(graph, stacked, tol=1e-12)

    cold_seconds, cold_batch = _best_of(repeats, run_cold)

    # batched, warm cache (steady state inside a sweep)
    warm_engine = PagerankEngine()
    warm_engine.solve_many(graph, stacked, tol=1e-12)  # prime

    def run_warm():
        return warm_engine.solve_many(graph, stacked, tol=1e-12)

    warm_seconds, warm_batch = _best_of(repeats, run_warm)

    # telemetry overhead: the same warm solve with telemetry disabled
    # (the default) vs enabled with an in-memory sink, measured
    # back-to-back so thermal/cache state is comparable.  The enabled
    # path must stay within the documented <5% budget (CI gates it via
    # --max-overhead on the medium preset).
    from repro.obs import MemorySink, Telemetry, set_telemetry

    tele_off_seconds, _ = _best_of(repeats, run_warm)
    telemetry = Telemetry(sink=MemorySink())
    previous = set_telemetry(telemetry)
    try:
        tele_on_seconds, _ = _best_of(repeats, run_warm)
    finally:
        set_telemetry(previous)

    deviation = float(
        np.abs(cold_batch.scores[:, 0] - seq_r1.scores).sum()
        + np.abs(cold_batch.scores[:, 1] - seq_r2.scores).sum()
    )

    mc = None
    if mc_walks > 0:
        mc_seconds, mc_result = _best_of(
            1,
            lambda: pagerank_montecarlo_parallel(
                graph, num_walks=mc_walks, workers=1, seed=0
            ),
        )
        mc = {
            "num_walks": mc_walks,
            "seconds": round(mc_seconds, 4),
            "walks_per_sec": round(mc_walks / mc_seconds, 1),
            "total_steps": mc_result.total_steps,
        }

    return {
        "num_nodes": n,
        "num_edges": graph.num_edges,
        "dangling_frac": round(float(graph.dangling_mask().mean()), 4),
        "sequential": {
            "seconds": round(seq_seconds, 4),
            "iterations": [seq_r1.iterations, seq_r2.iterations],
        },
        "batched_cold": {
            "seconds": round(cold_seconds, 4),
            "iterations": [int(i) for i in cold_batch.iterations],
        },
        "batched_warm": {
            "seconds": round(warm_seconds, 4),
            "iterations": [int(i) for i in warm_batch.iterations],
        },
        "speedup_cold": round(seq_seconds / cold_seconds, 3),
        "speedup_warm": round(seq_seconds / warm_seconds, 3),
        "solves_per_sec_warm": round(2.0 / warm_seconds, 2),
        "l1_deviation_vs_sequential": float(f"{deviation:.3e}"),
        "telemetry": {
            "disabled_seconds": round(tele_off_seconds, 4),
            "enabled_seconds": round(tele_on_seconds, 4),
            "overhead_ratio": round(tele_on_seconds / tele_off_seconds, 3),
        },
        "montecarlo": mc,
    }


def check_regression(report, baseline_path, factor, min_speedup,
                     speedup_presets=("medium",), max_overhead=None,
                     overhead_presets=("medium",)):
    """Return a list of failure messages (empty = pass)."""
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        base = baseline.get("presets", {}).get(name)
        if base is None:
            continue
        for path in ("batched_cold", "batched_warm"):
            current = preset[path]["seconds"]
            reference = base[path]["seconds"]
            if reference > 0 and current > factor * reference:
                failures.append(
                    f"{name}/{path}: {current:.4f}s is more than "
                    f"{factor:g}x the baseline {reference:.4f}s"
                )
    if min_speedup is not None:
        # the speedup floor targets presets large enough to amortize
        # setup (tiny graphs batch well but have little to save)
        for name in speedup_presets:
            preset = report["presets"].get(name)
            if preset is None:
                continue
            if preset["speedup_cold"] < min_speedup:
                failures.append(
                    f"{name}: batched cold speedup "
                    f"{preset['speedup_cold']:.2f}x is below the "
                    f"required {min_speedup:g}x"
                )
    if max_overhead is not None:
        # the telemetry budget is gated on presets whose solve is long
        # enough that the ratio measures instrumentation, not timer
        # noise (tiny graphs finish in microseconds)
        for name in overhead_presets:
            preset = report["presets"].get(name)
            if preset is None or "telemetry" not in preset:
                continue
            ratio = preset["telemetry"]["overhead_ratio"]
            if ratio > max_overhead:
                failures.append(
                    f"{name}: telemetry-enabled warm solve is "
                    f"{ratio:.3f}x the disabled one, above the "
                    f"allowed {max_overhead:g}x"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets",
        default="small,medium",
        help="comma-separated subset of small,medium,large",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N timing (default 3)"
    )
    parser.add_argument(
        "--mc-walks",
        type=int,
        default=20_000,
        help="Monte-Carlo walks to time per preset (0 = skip)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_pagerank.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="max allowed slowdown vs the baseline (default 2.0)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail if batched cold speedup drops below this ratio",
    )
    parser.add_argument(
        "--speedup-presets",
        default="medium",
        help="comma-separated presets the --min-speedup floor applies "
        "to (default: medium — large enough to amortize setup)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=None,
        help="fail if the telemetry-enabled warm solve exceeds this "
        "ratio of the disabled one (e.g. 1.05 for the <5%% budget)",
    )
    parser.add_argument(
        "--overhead-presets",
        default="medium",
        help="comma-separated presets the --max-overhead ceiling "
        "applies to (default: medium — long enough to beat timer "
        "noise)",
    )
    args = parser.parse_args(argv)

    from repro.synth.scenario import WorldConfig

    factories = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "large": WorldConfig.large,
    }
    names = split_csv(args.presets)
    unknown = sorted(set(names) - set(factories))
    if unknown:
        parser.error(f"unknown presets: {', '.join(unknown)}")

    report = new_report(
        "pagerank_engine",
        {
            "seed": args.seed,
            "repeats": args.repeats,
            "tol": 1e-12,
            "gamma": 0.85,
        },
    )
    for name in names:
        print(f"benchmarking preset {name} ...", file=sys.stderr, flush=True)
        report["presets"][name] = bench_preset(
            name,
            factories[name](args.seed),
            repeats=args.repeats,
            mc_walks=args.mc_walks,
        )

    emit_report(report, args.out)

    for name, preset in report["presets"].items():
        print(
            f"{name}: sequential {preset['sequential']['seconds']}s, "
            f"batched cold {preset['batched_cold']['seconds']}s "
            f"({preset['speedup_cold']}x), warm "
            f"{preset['batched_warm']['seconds']}s "
            f"({preset['speedup_warm']}x)",
            file=sys.stderr,
        )

    if args.check:
        failures = check_regression(
            report,
            args.check,
            args.factor,
            args.min_speedup,
            speedup_presets=tuple(split_csv(args.speedup_presets)),
            max_overhead=args.max_overhead,
            overhead_presets=tuple(split_csv(args.overhead_presets)),
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
