#!/usr/bin/env python
"""Benchmark: million-host out-of-core build + solve under a peak-RSS cap.

The paper's host graph has 73.3M hosts (Section 4.1); the sharded
backend (``docs/scale.md``) exists so the reproduction can climb toward
that scale without an edge list ever living in memory.  This bench pins
the claim on the ``WorldConfig.huge`` preset:

1. Stream-generate a huge world (default 1M hosts) straight into a
   block-partitioned shard store via the external bucket sort —
   ``build_huge_store`` never materializes the edge list.
2. Run the full mass-estimation pipeline (`estimate_spam_mass`, two
   batched PageRank solves) against the store through the shard-by-shard
   block-Jacobi kernel.
3. Shallow-verify the store (manifest digests composing to the
   fingerprint).

Reported per phase: wall-clock seconds and the process peak RSS
(``getrusage.ru_maxrss`` — kilobytes on Linux) after the phase.  The CI
gate enforces three things against the committed baseline
``BENCH_scale.json``:

* the store fingerprint is **equal** — the streaming generator and the
  bucket-sort builder are deterministic by construction, so any drift
  is a correctness bug, not noise;
* peak RSS stays under ``--max-rss-mb`` (an absolute cap: the point of
  out-of-core is a memory ceiling, and a cap regression is exactly the
  failure mode the backend exists to prevent);
* wall-clock stays within ``--factor`` of the baseline.

Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_scale.py \
        --out benchmarks/perf/BENCH_scale.json

    # CI gate
    PYTHONPATH=src python benchmarks/perf/bench_scale.py \
        --check benchmarks/perf/BENCH_scale.json \
        --factor 4.0 --max-rss-mb 2048

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection and the bench must run standalone in CI.
"""

from __future__ import annotations

import argparse
import json
import resource
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit_report, new_report  # noqa: E402


def peak_rss_mb():
    """Lifetime peak RSS of this process in MiB (Linux: ru_maxrss is KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_scale(*, hosts, shards, chunk_edges, seed, workdir):
    from repro.core.mass import estimate_spam_mass
    from repro.graph.sharded import verify_store
    from repro.perf import PagerankEngine
    from repro.synth.huge import build_huge_store, huge_good_core
    from repro.synth.scenario import WorldConfig

    if hosts >= 1_000_000:
        config = WorldConfig.huge(seed=seed, num_base_hosts=hosts)
    else:
        # sub-preset smoke runs (--hosts below the huge floor): same
        # shape knobs, just smaller
        config = WorldConfig(
            seed,
            num_base_hosts=hosts,
            mean_outdegree=6.0,
            directory_size=min(5_000, hosts // 10),
            gov_size=min(20_000, hosts // 10),
        )

    start = time.perf_counter()
    store = build_huge_store(
        config, workdir, num_shards=shards, chunk_edges=chunk_edges
    )
    build_seconds = time.perf_counter() - start
    rss_after_build = peak_rss_mb()

    engine = PagerankEngine()
    start = time.perf_counter()
    estimates = estimate_spam_mass(
        store, huge_good_core(config), engine=engine
    )
    solve_seconds = time.perf_counter() - start
    rss_after_solve = peak_rss_mb()

    start = time.perf_counter()
    verdict = verify_store(workdir)
    verify_seconds = time.perf_counter() - start
    if not verdict["ok"]:  # pragma: no cover - would be a builder bug
        raise SystemExit(
            "store verification failed: " + "; ".join(verdict["problems"])
        )

    return {
        "hosts": store.num_nodes,
        "edges": store.num_edges,
        "shards": store.num_shards,
        "fingerprint": store.structural_fingerprint(),
        "build_seconds": round(build_seconds, 4),
        "solve_seconds": round(solve_seconds, 4),
        "verify_seconds": round(verify_seconds, 4),
        "peak_rss_mb_after_build": round(rss_after_build, 1),
        "peak_rss_mb": round(rss_after_solve, 1),
        # informational float stats (NOT gated: they are deterministic
        # for a fixed numpy, but the gate must survive library bumps)
        "total_absolute_mass": float(estimates.absolute.sum()),
        "max_relative_mass": float(estimates.relative.max()),
        "shard_cache": store.cache_info(),
    }


def check_regression(report, baseline_path, factor, max_rss_mb):
    """Return a list of failure messages (empty = pass)."""
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        if max_rss_mb is not None and preset["peak_rss_mb"] > max_rss_mb:
            failures.append(
                f"{name}: peak RSS {preset['peak_rss_mb']:.0f} MiB "
                f"exceeds the {max_rss_mb:g} MiB cap"
            )
        base = baseline.get("presets", {}).get(name)
        if base is None:
            continue
        if (
            base["hosts"] == preset["hosts"]
            and base["fingerprint"] != preset["fingerprint"]
        ):
            failures.append(
                f"{name}: store fingerprint {preset['fingerprint']} "
                f"drifted from the baseline {base['fingerprint']} — the "
                "streaming generator or the bucket-sort builder is no "
                "longer deterministic"
            )
        for phase in ("build_seconds", "solve_seconds"):
            current, reference = preset[phase], base.get(phase, 0)
            if reference > 0 and current > factor * reference:
                failures.append(
                    f"{name}: {phase} {current:.2f}s is more than "
                    f"{factor:g}x the baseline {reference:.2f}s"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--hosts",
        type=int,
        default=1_000_000,
        help="world size (default 1M, the huge-preset floor)",
    )
    parser.add_argument(
        "--shards", type=int, default=8, help="shard count (default 8)"
    )
    parser.add_argument(
        "--chunk-edges",
        type=int,
        default=1 << 20,
        help="edges per generated chunk (default 1Mi)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--workdir",
        default=None,
        help="build the store here (default: a temp dir, removed after)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_scale.json and exit "
        "non-zero on regression or fingerprint drift",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="max allowed slowdown vs the baseline (default 4.0)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=float,
        default=None,
        help="absolute peak-RSS cap in MiB (the out-of-core guarantee)",
    )
    args = parser.parse_args(argv)

    name = f"huge-{args.hosts // 1_000_000}m" if (
        args.hosts % 1_000_000 == 0
    ) else f"huge-{args.hosts}"
    report = new_report(
        "sharded_scale",
        {
            "hosts": args.hosts,
            "shards": args.shards,
            "chunk_edges": args.chunk_edges,
            "seed": args.seed,
        },
    )
    print(
        f"building + solving {args.hosts:,} hosts in {args.shards} "
        "shards ...",
        file=sys.stderr,
        flush=True,
    )
    if args.workdir:
        Path(args.workdir).mkdir(parents=True, exist_ok=True)
        report["presets"][name] = bench_scale(
            hosts=args.hosts,
            shards=args.shards,
            chunk_edges=args.chunk_edges,
            seed=args.seed,
            workdir=Path(args.workdir),
        )
    else:
        with tempfile.TemporaryDirectory(prefix="bench-scale-") as tmp:
            report["presets"][name] = bench_scale(
                hosts=args.hosts,
                shards=args.shards,
                chunk_edges=args.chunk_edges,
                seed=args.seed,
                workdir=Path(tmp) / "store",
            )

    emit_report(report, args.out)

    for pname, preset in report["presets"].items():
        print(
            f"{pname}: {preset['edges']:,} edges in "
            f"{preset['shards']} shards — build "
            f"{preset['build_seconds']}s, solve "
            f"{preset['solve_seconds']}s, verify "
            f"{preset['verify_seconds']}s, peak RSS "
            f"{preset['peak_rss_mb']:.0f} MiB",
            file=sys.stderr,
        )

    if args.check:
        failures = check_regression(
            report, args.check, args.factor, args.max_rss_mb
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
