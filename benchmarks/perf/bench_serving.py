#!/usr/bin/env python
"""Benchmark: serving latency, sustained QPS, availability under ingest.

The always-on daemon (``repro-spam serve``, :mod:`repro.serve`) answers
per-host spam-mass queries from an immutable epoch while a background
worker folds accepted deltas into the next one.  This bench measures
the three numbers an operator sizes the service by, over the real
socket path (NDJSON over a unix socket — the same bytes a production
client would pay for):

1. **Query latency** — p50/p99 over ``--requests`` sequential requests
   per op (``score``, ``top``, ``health``), one warm client.
2. **Sustained QPS** — ``--threads`` clients hammering ``score`` for
   ``--duration`` seconds; reported as total responses / wall time.
3. **Availability under ingest** — a churn delta (1% of the edge
   count, diffuse targets: the slow flavor for the incremental
   engine) is submitted and applied while one client keeps reading.
   Every read during the in-flight re-estimate must answer — from the
   previous epoch, with ``staleness`` set — and the bench reports the
   read latencies and the availability ratio.  Availability below 1.0
   is a correctness failure, not a regression.
4. **Replicated serving** (``--replicas N``, default 2) — the same
   world behind a WAL-owning writer + N snapshot-fed read replicas
   and the shard-aware router: sustained ``score`` QPS through the
   router, then read availability while one replica is killed
   mid-load (reads route around the corpse; the supervised set
   restarts it).  Availability below 1.0 or a replica that never
   comes back is a correctness failure; replicated QPS is gated like
   the single-process number.

Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_serving.py \
        --out benchmarks/perf/BENCH_serving.json

    # CI gate: no >4x p99 latency or QPS regression vs the baseline
    PYTHONPATH=src python benchmarks/perf/bench_serving.py \
        --check benchmarks/perf/BENCH_serving.json --factor 4.0

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection and the bench must run standalone in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit_report, new_report, split_csv  # noqa: E402

#: Ops the sequential latency section measures.
LATENCY_OPS = ("score", "top", "health")


def _percentiles_ms(samples):
    arr = np.asarray(samples, dtype=np.float64) * 1e3
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "max_ms": round(float(arr.max()), 4),
        "requests": int(arr.size),
    }


def churn_delta(graph, *, churn, rng):
    """Insertion-only churn sized to ``churn * num_edges``: link-less
    hosts sprout outlinks at uniformly random targets (the diffuse
    flavor of ``bench_incremental.py`` — the slowest apply, so the
    availability window is as wide as it honestly gets)."""
    from repro.graph import GraphDelta

    n = graph.num_nodes
    out_degree = np.diff(graph.indptr)
    silent = np.flatnonzero(out_degree == 0)
    budget = max(1, int(round(churn * graph.num_edges)))
    links_per_host = 20
    num_sources = max(1, min(len(silent), budget // links_per_host))
    sources = rng.choice(silent, size=num_sources, replace=False)
    insertions = []
    for src in sources:
        targets = rng.choice(n - 1, size=links_per_host, replace=False)
        targets = np.where(targets >= src, targets + 1, targets)
        insertions.extend((int(src), int(t)) for t in targets)
    return GraphDelta(insertions=insertions)


def bench_replicated(
    graph, core, estimates, hosts, root, *, threads, duration, replicas
):
    """Replicated QPS + availability during a replica kill.

    A fresh writer daemon ships its base snapshot to ``root/ship``,
    ``replicas`` read replicas load it, and the router fans ``score``
    reads across them over the real socket.  Mid-way through the
    availability window one replica is killed; every read must still
    answer (route-around or writer fallback) and the background
    refresh sweep must restart the corpse before the window closes.
    """
    from repro.serve import (
        DaemonConfig,
        DeltaWAL,
        ReplicaRouter,
        ReplicaSet,
        ReplicatedWriter,
        ScoringDaemon,
        ScoringServer,
        ServeClient,
    )

    failures = []
    daemon = ScoringDaemon(
        graph,
        core,
        estimates,
        wal=DeltaWAL(root / "replicated-wal"),
        config=DaemonConfig(),
    )
    writer = ReplicatedWriter(daemon, root / "ship")
    rset = ReplicaSet(root / "ship", graph, core=core)
    fleet = rset.spawn(replicas)
    router = ReplicaRouter(fleet, replica_set=rset)
    server = ScoringServer(
        daemon,
        root / "replicated.sock",
        max_queue=max(64, threads * 4),
        workers=2,
        router=router,
        writer=writer,
        replica_poll=0.02,
    )
    server.start()
    try:
        # sustained QPS through the router
        counts = [0] * threads
        replica_served = [0] * threads
        stop = threading.Event()

        def _hammer(idx):
            with ServeClient(server.socket_path) as c:
                i = 0
                while not stop.is_set():
                    response = c.score(hosts[(idx + i) % len(hosts)])
                    if not response.get("ok"):
                        failures.append(f"replicated qps: {response!r}")
                        return
                    counts[idx] += 1
                    replica_served[idx] += str(
                        response.get("served_by", "")
                    ).startswith("replica-")
                    i += 1

        pool = [
            threading.Thread(target=_hammer, args=(i,), daemon=True)
            for i in range(threads)
        ]
        started = time.perf_counter()
        for t in pool:
            t.start()
        time.sleep(duration)
        stop.set()
        for t in pool:
            t.join(timeout=30.0)
        elapsed = time.perf_counter() - started
        result = {
            "replicas": replicas,
            "throughput": {
                "threads": threads,
                "duration_seconds": round(elapsed, 3),
                "requests": sum(counts),
                "qps": round(sum(counts) / elapsed, 1),
                "replica_served_fraction": round(
                    sum(replica_served) / max(1, sum(counts)), 6
                ),
            },
        }

        # availability while one replica dies mid-load
        reads, killed_at = [], None
        deadline = time.perf_counter() + duration
        with ServeClient(server.socket_path) as client:
            i = 0
            while time.perf_counter() < deadline:
                if killed_at is None and time.perf_counter() > (
                    deadline - duration / 2
                ):
                    router.replicas[0].kill("bench-chaos")
                    killed_at = time.perf_counter()
                start = time.perf_counter()
                response = client.score(hosts[i % len(hosts)])
                reads.append(time.perf_counter() - start)
                if not response.get("ok"):
                    failures.append(f"read during kill: {response!r}")
                    break
                i += 1
        answered = len(reads) - sum(
            1 for f in failures if f.startswith("read during kill")
        )
        restart_deadline = time.perf_counter() + 30.0
        while time.perf_counter() < restart_deadline:
            if rset.restarts >= 1 and all(
                r.ready for r in router.replicas
            ):
                break
            time.sleep(0.02)
        else:
            failures.append(
                "killed replica never restarted within 30s "
                f"(restarts={rset.restarts})"
            )
        result["kill"] = {
            "reads_during_kill": len(reads),
            "availability": round(answered / max(1, len(reads)), 6),
            "routed_around": router.routed_around,
            "restarts": rset.restarts,
            "read_latency": _percentiles_ms(reads),
        }
        result["failures"] = failures
        return result
    finally:
        server.stop()


def bench_preset(
    config, *, requests, threads, duration, churn, seed, replicas
):
    from repro.core.mass import estimate_spam_mass
    from repro.serve import (
        DaemonConfig,
        DeltaWAL,
        ScoringDaemon,
        ScoringServer,
        ServeClient,
    )
    from repro.synth.scenario import build_world, default_good_core

    world = build_world(config)
    graph = world.graph
    core = default_good_core(world)
    estimates = estimate_spam_mass(graph, core, gamma=0.85)

    rng = np.random.default_rng(seed)
    hosts = [
        graph.name_of(int(i))
        for i in rng.choice(graph.num_nodes, size=256, replace=False)
    ]
    failures = []
    root = Path(tempfile.mkdtemp(prefix="bench-serving-"))
    daemon = ScoringDaemon(
        graph,
        core,
        estimates,
        wal=DeltaWAL(root / "wal"),
        config=DaemonConfig(),
    )
    server = ScoringServer(
        daemon, root / "bench.sock", max_queue=max(64, threads * 4),
        workers=2,
    )
    server.start()
    try:
        preset = {
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        }

        # 1. sequential latency per op, one warm client
        with ServeClient(server.socket_path) as client:
            client.health()  # connection + first-dispatch warmup
            latency = {}
            for op in LATENCY_OPS:
                samples = []
                for i in range(requests):
                    start = time.perf_counter()
                    if op == "score":
                        response = client.score(hosts[i % len(hosts)])
                    elif op == "top":
                        response = client.top(10)
                    else:
                        response = client.health()
                    samples.append(time.perf_counter() - start)
                    if not response.get("ok"):
                        failures.append(f"{op}: {response!r}")
                latency[op] = _percentiles_ms(samples)
            preset["latency"] = latency

        # 2. sustained QPS, many clients
        counts = [0] * threads
        stop = threading.Event()

        def _hammer(idx):
            with ServeClient(server.socket_path) as c:
                i = 0
                while not stop.is_set():
                    response = c.score(hosts[(idx + i) % len(hosts)])
                    if not response.get("ok"):
                        failures.append(f"qps: {response!r}")
                        return
                    counts[idx] += 1
                    i += 1

        pool = [
            threading.Thread(target=_hammer, args=(i,), daemon=True)
            for i in range(threads)
        ]
        started = time.perf_counter()
        for t in pool:
            t.start()
        time.sleep(duration)
        stop.set()
        for t in pool:
            t.join(timeout=30.0)
        elapsed = time.perf_counter() - started
        preset["throughput"] = {
            "threads": threads,
            "duration_seconds": round(elapsed, 3),
            "requests": sum(counts),
            "qps": round(sum(counts) / elapsed, 1),
        }

        # 3. read availability while a churn delta re-estimates
        delta = churn_delta(graph, churn=churn, rng=rng)
        with ServeClient(server.socket_path) as client:
            before_epoch = client.health()["epoch"]
            ack = client.ingest(
                [[int(u), int(v)] for u, v in delta.insertions]
            )
            if not ack.get("ok"):
                failures.append(f"ingest: {ack!r}")
            apply_started = time.perf_counter()
            reads, stale_reads, max_staleness = [], 0, 0
            epoch = before_epoch
            deadline = apply_started + 120.0
            while epoch == before_epoch:
                start = time.perf_counter()
                response = client.score(hosts[len(reads) % len(hosts)])
                reads.append(time.perf_counter() - start)
                if not response.get("ok"):
                    failures.append(f"read during apply: {response!r}")
                    break
                epoch = response["epoch"]
                stale_reads += response["staleness"] > 0
                max_staleness = max(max_staleness, response["staleness"])
                if time.perf_counter() > deadline:
                    failures.append("apply never finished within 120s")
                    break
            apply_seconds = time.perf_counter() - apply_started
            answered = len(reads) - sum(
                1 for f in failures if f.startswith("read during apply")
            )
            preset["ingest"] = {
                "delta_insertions": int(delta.num_insertions),
                "apply_seconds": round(apply_seconds, 4),
                "reads_during_apply": len(reads),
                "availability": round(answered / max(1, len(reads)), 6),
                "stale_reads": stale_reads,
                "max_staleness_seen": max_staleness,
                "read_latency": _percentiles_ms(reads),
            }
    finally:
        server.stop()
    # 4. the replicated topology, after the single-process server is
    # fully drained so the two QPS numbers never contend
    if replicas > 0:
        preset["replicated"] = bench_replicated(
            graph, core, estimates, hosts, root,
            threads=threads, duration=duration, replicas=replicas,
        )
        failures.extend(preset["replicated"].pop("failures"))
    preset["failures"] = failures
    return preset


def verify(report):
    """Correctness failures (an unavailable read path, failed requests)."""
    problems = []
    for name, preset in report["presets"].items():
        for failure in preset.get("failures", ()):
            problems.append(f"{name}: {failure}")
        ingest = preset.get("ingest", {})
        if ingest and ingest["availability"] < 1.0:
            problems.append(
                f"{name}: read availability during apply was "
                f"{ingest['availability']:.4f}, not 1.0 — the degraded "
                "read path went down during an in-flight re-estimate"
            )
        if ingest and ingest["reads_during_apply"] < 1:
            problems.append(
                f"{name}: no reads landed during the apply window"
            )
        replicated = preset.get("replicated", {})
        if replicated:
            kill = replicated["kill"]
            if kill["availability"] < 1.0:
                problems.append(
                    f"{name}: replicated read availability during a "
                    f"replica kill was {kill['availability']:.4f}, not "
                    "1.0 — route-around / writer fallback went down"
                )
            if kill["reads_during_kill"] < 1:
                problems.append(
                    f"{name}: no reads landed during the kill window"
                )
            served = replicated["throughput"]["replica_served_fraction"]
            if served <= 0.0:
                problems.append(
                    f"{name}: no replicated read was served by a "
                    "replica — the router routed nothing"
                )
    return problems


def check_regression(report, baseline_path, factor):
    """Latency/QPS regression vs the committed baseline (empty = pass)."""
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        base = baseline.get("presets", {}).get(name)
        if base is None:
            continue
        for op in LATENCY_OPS:
            current = preset["latency"][op]["p99_ms"]
            reference = base["latency"][op]["p99_ms"]
            if reference > 0 and current > factor * reference:
                failures.append(
                    f"{name}/{op}: p99 {current:.3f}ms is more than "
                    f"{factor:g}x the baseline {reference:.3f}ms"
                )
        current_qps = preset["throughput"]["qps"]
        reference_qps = base["throughput"]["qps"]
        if reference_qps > 0 and current_qps < reference_qps / factor:
            failures.append(
                f"{name}: sustained {current_qps:.0f} qps is less than "
                f"1/{factor:g} of the baseline {reference_qps:.0f} qps"
            )
        replicated = preset.get("replicated")
        base_replicated = base.get("replicated")
        if replicated and base_replicated:
            current_r = replicated["throughput"]["qps"]
            reference_r = base_replicated["throughput"]["qps"]
            if reference_r > 0 and current_r < reference_r / factor:
                failures.append(
                    f"{name}: replicated {current_r:.0f} qps is less "
                    f"than 1/{factor:g} of the baseline "
                    f"{reference_r:.0f} qps"
                )
            current_kill = replicated["kill"]["read_latency"]["p99_ms"]
            reference_kill = (
                base_replicated["kill"]["read_latency"]["p99_ms"]
            )
            if reference_kill > 0 and current_kill > (
                factor * reference_kill
            ):
                failures.append(
                    f"{name}: p99 read latency during a replica kill "
                    f"{current_kill:.3f}ms is more than {factor:g}x "
                    f"the baseline {reference_kill:.3f}ms"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--presets",
        default="medium",
        help="comma-separated subset of small,medium,large",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=2000,
        help="sequential requests per op in the latency section",
    )
    parser.add_argument(
        "--threads", type=int, default=4, help="QPS client threads"
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=3.0,
        help="seconds of sustained QPS load",
    )
    parser.add_argument(
        "--churn",
        type=float,
        default=0.01,
        help="churn fraction for the availability delta (default 1%%)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=2,
        help="read replicas for the replicated section (0 skips it; "
        "default 2)",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed")
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_serving.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="max allowed p99/QPS regression vs the baseline "
        "(default 4.0)",
    )
    args = parser.parse_args(argv)

    from repro.synth.scenario import WorldConfig

    factories = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "large": WorldConfig.large,
    }
    names = split_csv(args.presets)
    unknown = sorted(set(names) - set(factories))
    if unknown:
        parser.error(f"unknown presets: {', '.join(unknown)}")

    report = new_report(
        "serving",
        {
            "seed": args.seed,
            "requests": args.requests,
            "threads": args.threads,
            "duration": args.duration,
            "churn": args.churn,
            "replicas": args.replicas,
            "gamma": 0.85,
        },
    )
    for name in names:
        print(f"benchmarking preset {name} ...", file=sys.stderr, flush=True)
        report["presets"][name] = bench_preset(
            factories[name](args.seed),
            requests=args.requests,
            threads=args.threads,
            duration=args.duration,
            churn=args.churn,
            seed=args.seed,
            replicas=args.replicas,
        )

    emit_report(report, args.out)

    for name, preset in report["presets"].items():
        lat = preset["latency"]["score"]
        thr = preset["throughput"]
        ing = preset["ingest"]
        print(
            f"{name}: score p50 {lat['p50_ms']}ms / p99 {lat['p99_ms']}ms"
            f", {thr['qps']} qps over {thr['threads']} clients, "
            f"availability {ing['availability']} during a "
            f"{ing['apply_seconds']}s apply "
            f"({ing['reads_during_apply']} reads)",
            file=sys.stderr,
        )
        replicated = preset.get("replicated")
        if replicated:
            rthr, kill = replicated["throughput"], replicated["kill"]
            print(
                f"{name}: replicated x{replicated['replicas']}: "
                f"{rthr['qps']} qps "
                f"({rthr['replica_served_fraction']:.0%} replica-"
                f"served), availability {kill['availability']} through "
                f"a replica kill ({kill['reads_during_kill']} reads, "
                f"{kill['restarts']} restarts)",
                file=sys.stderr,
            )

    problems = verify(report)
    if args.check:
        problems.extend(check_regression(report, args.check, args.factor))
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    if args.check:
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
