#!/usr/bin/env python
"""Benchmark: stream ingestion throughput, detection latency, recovery.

The streaming front door (``repro-spam stream``, :mod:`repro.serve.stream`)
turns a crawler's timestamped edge-event feed into committed scoring
epochs: events are validated, windowed by event time, compacted and
applied through the daemon's WAL, with poison quarantined to a DLQ.
This bench measures the three numbers an operator sizes the pipeline
by:

1. **Ingest throughput** — events/sec over a churn-only stream, file
   to final flush, best of ``--repeats`` runs on fresh state.  This is
   the end-to-end number: validation, journaling, window compaction
   and the incremental re-estimate per window all included.
2. **Detection latency** — the three scripted temporal attacks
   (expired-domain takeover, sub-threshold gradual farm, stale good-
   core member) replayed across ``--seeds`` worlds; reported as the
   median number of events between attack onset and the spam-mass
   gates catching the target.  An attack that is never caught is a
   correctness failure, not a regression.
3. **Recovery after a crash** — the full chaos battery (torn lines
   with retransmits, duplicates, bounded reordering, late stragglers,
   one poisoned window) is ingested to ~60% of the bytes and the
   process dies without a flush; the bench times the second
   incarnation (journal resume + re-ingest to EOF) and verifies the
   scores are bitwise-identical to a clean single-pass run.

Typical usage::

    PYTHONPATH=src python benchmarks/perf/bench_stream.py \
        --out benchmarks/perf/BENCH_stream.json

    # CI gate: no >4x throughput / latency / recovery regression
    PYTHONPATH=src python benchmarks/perf/bench_stream.py \
        --check benchmarks/perf/BENCH_stream.json --factor 4.0

This is a plain script, not a pytest module — ``benchmarks/`` is
excluded from test collection and the bench must run standalone in CI.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _harness import emit_report, median, new_report, split_csv  # noqa: E402

#: The attack world recipe the detection section replays.  Small on
#: purpose: detection latency is a property of the gates, not of graph
#: scale, and the committed numbers must be cheap to re-measure in CI.
N, ACTIVE = 100, 40
GAMMA = 0.85
RHO, TAU = 1.5, 0.9
ATTACK_EVENTS, BOOSTERS, STRIDE = 400, 12, 3


def build_world(root, *, n=N, active=ACTIVE, num_edges=200, core_size=10):
    """A reference world: ``num_edges`` live edges among the first
    ``active`` hosts, the rest dormant for the attack scripts to
    claim, a ``core_size``-host good core, and a solved checkpoint
    template to copy per run."""
    from repro.core import estimate_spam_mass
    from repro.graph import WebGraph, write_graph_bundle, write_host_list
    from repro.runtime.checkpoint import save_solution

    rng = np.random.default_rng(7)
    edges = set()
    while len(edges) < num_edges:
        u, v = rng.integers(0, active, 2)
        if u != v:
            edges.add((int(u), int(v)))
    graph = WebGraph.from_edges(n, sorted(edges))
    core = np.arange(0, core_size, dtype=np.int64)
    estimates = estimate_spam_mass(graph, core, gamma=GAMMA)
    world_dir = root / "world"
    write_graph_bundle(graph, world_dir)
    write_host_list(
        [graph.name_of(int(i)) for i in core], world_dir / "core.hosts"
    )
    template = root / "ckpt-template"
    save_solution(
        template,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=graph.structural_fingerprint(),
        extra={"damping": 0.85, "gamma": GAMMA,
               "labels": ["pagerank", "core"]},
    )
    return graph, core, sorted(edges), world_dir, template


def _spawn(world_dir, template, run_dir, **stream_kw):
    """A daemon + ingestor pair on a fresh checkpoint copy."""
    from repro.serve import (
        DaemonConfig,
        ScoringDaemon,
        StreamConfig,
        StreamIngestor,
    )

    ckpt = run_dir / "ckpt"
    shutil.copytree(template, ckpt)
    daemon = ScoringDaemon.load(
        world_dir, ckpt, config=DaemonConfig(max_staleness=16)
    )
    ingestor = StreamIngestor(
        daemon,
        run_dir / "state",
        config=StreamConfig(window=16, max_lateness=8),
        **stream_kw,
    )
    return daemon, ingestor


def bench_throughput(root, *, events, repeats):
    """Events/sec over a churn-only stream, best of ``repeats``.

    Measured on its own, larger world (the tiny attack world's 40
    active hosts cannot absorb thousands of churn inserts), so the
    per-window incremental re-estimate pays a realistic graph size.
    """
    from repro.synth import synthesize_stream

    world_root = root / "throughput-world"
    world_root.mkdir()
    graph, core, _, world_dir, template = build_world(
        world_root, n=1000, active=600, num_edges=3000, core_size=50
    )
    stream = synthesize_stream(
        graph, core=core, seed=13, num_events=events, attacks=()
    )
    path = root / "churn.jsonl"
    stream.write(path)
    runs = []
    for i in range(repeats):
        run_dir = root / f"throughput-{i}"
        run_dir.mkdir()
        daemon, ingestor = _spawn(world_dir, template, run_dir)
        started = time.perf_counter()
        ingestor.ingest_file(path)
        ingestor.flush()
        runs.append(time.perf_counter() - started)
        stats = ingestor.stats()
        del daemon, ingestor
    best = min(runs)
    return {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
        "events": events,
        "windows_committed": stats["windows_committed"],
        "repeats": repeats,
        "best_seconds": round(best, 4),
        "median_seconds": round(median(runs), 4),
        "events_per_sec": round(events / best, 1),
    }


def bench_detection(graph, core, world_dir, template, root, *, seeds):
    """Median events-to-catch per scripted attack across seeds."""
    from repro.eval import LatencyProbe
    from repro.synth import synthesize_stream

    failures = []
    per_kind = {}
    for seed in seeds:
        stream = synthesize_stream(
            graph,
            core=core,
            seed=seed,
            num_events=ATTACK_EVENTS,
            boosters_per_attack=BOOSTERS,
            attack_stride=STRIDE,
        )
        probe = LatencyProbe(stream.attacks, rho=RHO, tau=TAU)
        run_dir = root / f"detect-{seed}"
        run_dir.mkdir()
        daemon, ingestor = _spawn(
            world_dir, template, run_dir, on_commit=probe.observe
        )
        path = run_dir / "events.jsonl"
        stream.write(path)
        ingestor.ingest_file(path)
        ingestor.flush()
        del daemon, ingestor
        for verdict in probe.report():
            kind = verdict["kind"]
            bucket = per_kind.setdefault(
                kind, {"events": [], "windows": [], "missed": 0}
            )
            if verdict["caught"]:
                bucket["events"].append(verdict["events_until_caught"])
                bucket["windows"].append(verdict["windows_until_caught"])
            else:
                bucket["missed"] += 1
                failures.append(
                    f"seed {seed}: {kind} attack on host "
                    f"{verdict['target']} was never caught"
                )
    result = {
        "seeds": list(seeds),
        "rho": RHO,
        "tau": TAU,
        "events_per_stream": ATTACK_EVENTS,
        "attacks": {},
    }
    for kind, bucket in sorted(per_kind.items()):
        caught = len(bucket["events"])
        result["attacks"][kind] = {
            "caught": caught,
            "missed": bucket["missed"],
            "catch_rate": round(caught / (caught + bucket["missed"]), 4),
            "median_events_to_catch": (
                round(median(bucket["events"]), 1) if caught else None
            ),
            "median_windows_to_catch": (
                round(median(bucket["windows"]), 1) if caught else None
            ),
        }
    return result, failures


def _chaos_lines(graph, core, edges):
    """The full injector battery over a fresh attack stream's lines."""
    from repro.runtime.chaos import (
        duplicate_stream_events,
        late_straggler_events,
        poison_stream_window,
        reorder_stream_events,
        torn_resend_stream,
    )
    from repro.synth import synthesize_stream

    stream = synthesize_stream(
        graph,
        core=core,
        seed=3,
        num_events=300,
        boosters_per_attack=8,
        attack_stride=3,
    )
    touched = {(e.src, e.dst) for e in stream.events}
    surviving = [e for e in edges if e not in touched]
    lines = stream.lines()
    lines = torn_resend_stream(lines, seed=1, count=3, displacement=2)
    lines = duplicate_stream_events(lines, seed=2, count=4, displacement=3)
    lines = reorder_stream_events(lines, seed=3, count=6, max_shift=2)
    last_ts = max(e.ts for e in stream.events)
    lines = late_straggler_events(
        lines, seed=4, count=2, num_nodes=N, next_id=1000, ts=0
    )
    lines = poison_stream_window(
        lines, surviving, next_id=1100, ts=last_ts + 16 + 8 + 2, count=3
    )
    return stream, lines


def bench_recovery(graph, core, edges, world_dir, template, root):
    """Wall clock of a crash-resume over the chaos battery, with a
    bitwise check of the recovered scores against a clean pass."""
    from repro.serve import ScoringDaemon, StreamConfig, StreamIngestor
    from repro.serve import DaemonConfig

    failures = []
    stream, lines = _chaos_lines(graph, core, edges)
    chaos_path = root / "chaos.jsonl"
    chaos_path.write_text("\n".join(lines) + "\n")

    # the clean reference: the untouched stream, one pass
    clean_dir = root / "recovery-clean"
    clean_dir.mkdir()
    clean_path = clean_dir / "events.jsonl"
    stream.write(clean_path)
    daemon, ingestor = _spawn(world_dir, template, clean_dir)
    ingestor.ingest_file(clean_path)
    ingestor.flush()
    clean_epoch = daemon.store.current
    clean_fingerprint = clean_epoch.graph.structural_fingerprint()
    clean_pagerank = clean_epoch.estimates.pagerank.copy()
    del daemon, ingestor

    # first incarnation: ~60% of the bytes, then the process dies
    run_dir = root / "recovery"
    run_dir.mkdir()
    daemon, ingestor = _spawn(world_dir, template, run_dir)
    raw = chaos_path.read_bytes()
    cut = len(raw) * 6 // 10
    consumed_before_crash = 0
    with open(chaos_path, "rb") as fh:
        while fh.tell() < cut:
            start = fh.tell()
            line = fh.readline()
            if not line:
                break
            ingestor._position = fh.tell()
            ingestor.ingest_line(line.decode(), offset=start)
    consumed_before_crash = ingestor.stats()["events_consumed"]
    del daemon, ingestor  # no flush, no close: the crash

    # second incarnation: load, resume from the journal, run to EOF
    started = time.perf_counter()
    daemon = ScoringDaemon.load(
        world_dir, run_dir / "ckpt", config=DaemonConfig(max_staleness=16)
    )
    ingestor = StreamIngestor(
        daemon, run_dir / "state",
        config=StreamConfig(window=16, max_lateness=8),
    )
    ingestor.ingest_file(chaos_path)
    ingestor.flush()
    recovery_seconds = time.perf_counter() - started

    epoch = daemon.store.current
    if epoch.graph.structural_fingerprint() != clean_fingerprint:
        failures.append(
            "recovered graph fingerprint differs from the clean run"
        )
    if not np.array_equal(epoch.estimates.pagerank, clean_pagerank):
        failures.append(
            "recovered scores are not bitwise-identical to the clean run"
        )
    stats = ingestor.stats()
    if stats["windows_quarantined"] != 1:
        failures.append(
            f"expected exactly 1 quarantined window, saw "
            f"{stats['windows_quarantined']}"
        )
    return {
        "stream_events": len(stream.events),
        "consumed_before_crash": consumed_before_crash,
        "recovery_seconds": round(recovery_seconds, 4),
        "windows_committed": stats["windows_committed"],
        "windows_quarantined": stats["windows_quarantined"],
        "dlq_entries": stats["dlq_entries"],
        "bitwise_identical": not failures,
    }, failures


def bench_preset(*, events, repeats, seeds):
    root = Path(tempfile.mkdtemp(prefix="bench-stream-"))
    graph, core, edges, world_dir, template = build_world(root)
    preset = {
        "num_nodes": graph.num_nodes,
        "num_edges": graph.num_edges,
    }
    failures = []
    preset["throughput"] = bench_throughput(
        root, events=events, repeats=repeats
    )
    preset["detection"], detect_failures = bench_detection(
        graph, core, world_dir, template, root, seeds=seeds
    )
    failures.extend(detect_failures)
    preset["recovery"], recovery_failures = bench_recovery(
        graph, core, edges, world_dir, template, root
    )
    failures.extend(recovery_failures)
    preset["failures"] = failures
    return preset


def verify(report):
    """Correctness failures (a missed attack, a non-bitwise recovery)."""
    problems = []
    for name, preset in report["presets"].items():
        for failure in preset.get("failures", ()):
            problems.append(f"{name}: {failure}")
        for kind, attack in preset["detection"]["attacks"].items():
            if attack["catch_rate"] < 1.0:
                problems.append(
                    f"{name}: {kind} catch rate "
                    f"{attack['catch_rate']:.2f} is below 1.0 — the "
                    "gates missed a scripted attack"
                )
        if not preset["recovery"]["bitwise_identical"]:
            problems.append(
                f"{name}: crash recovery did not reproduce the clean "
                "run bitwise"
            )
    return problems


def check_regression(report, baseline_path, factor):
    """Throughput/latency regression vs the baseline (empty = pass)."""
    failures = []
    baseline = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    for name, preset in report["presets"].items():
        base = baseline.get("presets", {}).get(name)
        if base is None:
            continue
        current_eps = preset["throughput"]["events_per_sec"]
        reference_eps = base["throughput"]["events_per_sec"]
        if reference_eps > 0 and current_eps < reference_eps / factor:
            failures.append(
                f"{name}: ingest throughput {current_eps:.0f} events/s "
                f"is less than 1/{factor:g} of the baseline "
                f"{reference_eps:.0f} events/s"
            )
        for kind, attack in preset["detection"]["attacks"].items():
            base_attack = base["detection"]["attacks"].get(kind)
            if base_attack is None:
                continue
            current_med = attack["median_events_to_catch"]
            reference_med = base_attack["median_events_to_catch"]
            if (
                current_med is not None
                and reference_med
                and current_med > factor * reference_med
            ):
                failures.append(
                    f"{name}: {kind} median detection latency "
                    f"{current_med:.0f} events is more than {factor:g}x "
                    f"the baseline {reference_med:.0f} events"
                )
        current_rec = preset["recovery"]["recovery_seconds"]
        # tiny wall clocks are noisy; gate against a 50ms floor
        reference_rec = max(base["recovery"]["recovery_seconds"], 0.05)
        if current_rec > factor * reference_rec:
            failures.append(
                f"{name}: crash recovery took {current_rec:.3f}s, more "
                f"than {factor:g}x the baseline {reference_rec:.3f}s"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--events",
        type=int,
        default=2000,
        help="churn events in the throughput section (default 2000)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="throughput repeats on fresh state; best is reported",
    )
    parser.add_argument(
        "--seeds",
        default="3,4,5,6,7",
        help="comma-separated attack-world seeds for the detection "
        "section (default 3,4,5,6,7)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="write the JSON report here (default: print to stdout)",
    )
    parser.add_argument(
        "--check",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline BENCH_stream.json and exit "
        "non-zero on regression",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=4.0,
        help="max allowed throughput/latency regression vs the "
        "baseline (default 4.0)",
    )
    args = parser.parse_args(argv)

    seeds = [int(s) for s in split_csv(args.seeds)]
    report = new_report(
        "stream",
        {
            "events": args.events,
            "repeats": args.repeats,
            "seeds": seeds,
            "gamma": GAMMA,
            "rho": RHO,
            "tau": TAU,
            "window": 16,
            "max_lateness": 8,
        },
    )
    print("benchmarking stream ingestion ...", file=sys.stderr, flush=True)
    report["presets"]["default"] = bench_preset(
        events=args.events, repeats=args.repeats, seeds=seeds
    )

    emit_report(report, args.out)

    for name, preset in report["presets"].items():
        thr = preset["throughput"]
        rec = preset["recovery"]
        print(
            f"{name}: {thr['events_per_sec']} events/s "
            f"({thr['windows_committed']} windows), crash recovery "
            f"{rec['recovery_seconds']}s "
            f"(bitwise: {rec['bitwise_identical']})",
            file=sys.stderr,
        )
        for kind, attack in preset["detection"]["attacks"].items():
            print(
                f"{name}: {kind}: caught {attack['caught']}/"
                f"{attack['caught'] + attack['missed']}, median "
                f"{attack['median_events_to_catch']} events / "
                f"{attack['median_windows_to_catch']} windows to catch",
                file=sys.stderr,
            )

    problems = verify(report)
    if args.check:
        problems.extend(check_regression(report, args.check, args.factor))
    if problems:
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        return 1
    if args.check:
        print("regression check passed", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
