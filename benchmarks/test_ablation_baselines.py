"""A4 — Ablation: detector comparison on one world.

Benchmarks each detector family — mass-based (Algorithm 2), the
TrustRank read-out, the naive in-neighbour schemes (with oracle
labels), degree outliers and supporter-distribution deviation — and
regenerates the head-to-head table.  The paper's qualitative claims
checked: mass detection beats the realistic competitors on precision
over the high-PageRank population, and the link-pattern detectors
catch only regular machine-generated structures (demonstrated on a
dedicated regular farm, where the degree detector *does* fire).
"""

import numpy as np

from repro.baselines import (
    SupporterDeviationDetector,
    degree_outlier_mask,
    scheme1_mask,
    trustrank,
)
from repro.core import MassDetector
from repro.eval import run_baseline_comparison
from repro.synth import (
    BaseWebConfig,
    WorldAssembler,
    add_spam_farm,
    generate_base_web,
)


def test_mass_detector_bench(benchmark, ctx):
    detector = MassDetector(tau=0.98, rho=ctx.rho)
    benchmark(detector.detect, ctx.estimates)


def test_trustrank_bench(benchmark, ctx):
    spam_mask = ctx.world.spam_mask
    benchmark(
        trustrank,
        ctx.graph,
        lambda node: not spam_mask[node],
        seed_budget=max(len(ctx.core) // 20, 20),
    )


def test_scheme1_bench(benchmark, ctx):
    benchmark(scheme1_mask, ctx.graph, ctx.world.spam_nodes())


def test_degree_outlier_bench(benchmark, ctx):
    benchmark(degree_outlier_mask, ctx.graph)


def test_supporter_deviation_bench(benchmark, ctx):
    detector = SupporterDeviationDetector(threshold=0.85)
    benchmark(detector.detect, ctx.graph, ctx.estimates.pagerank)


def test_baseline_comparison_table(benchmark, ctx, save_artifact):
    result = benchmark.pedantic(run_baseline_comparison, args=(ctx,), rounds=1, iterations=1)
    save_artifact(result)
    rows = {row[0]: row for row in result.rows}
    # mass detection beats the TrustRank read-out on eligible precision
    assert rows["mass (tau=0.98)"][3] > rows["trustrank read-out"][3]


def test_degree_outliers_catch_regular_farms_only(benchmark, save_artifact):
    """The Fetterly-style detector fires on a machine-generated farm
    whose boosters share one exact out-degree, and stays silent on the
    organically varied farms of the main world — the gap the paper
    describes for this family of methods."""
    rng = np.random.default_rng(3)
    assembler = WorldAssembler()
    base = generate_base_web(
        assembler, rng, BaseWebConfig(10_000, mean_outdegree=8.0)
    )
    farm = add_spam_farm(
        assembler,
        rng,
        base,
        1_500,
        tag="farm:auto",
        target_links_back=False,
        booster_interlinks=6,
    )
    world = assembler.build()
    mask = benchmark(degree_outlier_mask, world.graph, "out")
    assert mask[farm.boosters].mean() > 0.95
    assert world.spam_mask[mask].mean() > 0.8
