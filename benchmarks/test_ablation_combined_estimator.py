"""A3 — Ablation: combined white-list + black-list estimation
(Section 3.4).

Benchmarks the black-list estimate ``M̂ = PR(v^{Ṽ⁻})`` and regenerates
the comparison of the paper's ``(M̃ + M̂)/2`` average and the
size-weighted variant against the white-list-only estimator, for
partial black lists of increasing coverage.
"""

import numpy as np

from repro.core import blacklist_mass
from repro.eval import run_combined_ablation


def test_blacklist_mass_bench(benchmark, ctx):
    rng = np.random.default_rng(17)
    spam_nodes = ctx.world.spam_nodes()
    blacklist = rng.choice(spam_nodes, size=len(spam_nodes) // 4, replace=False)
    benchmark(blacklist_mass, ctx.graph, blacklist, gamma=ctx.gamma)


def test_combined_ablation_table(benchmark, ctx, save_artifact):
    result = benchmark(run_combined_ablation, ctx)
    save_artifact(result)
    assert result.rows[0][0] == "white-list only"
    separations = result.column("separation")
    assert all(s > 0.2 for s in separations)
    # with a substantial black list the combined estimator holds or
    # improves recall at the shared operating point
    recalls = result.column("recall")
    assert max(recalls[1:]) >= recalls[0] - 0.05
