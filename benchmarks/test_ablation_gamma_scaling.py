"""A1 — Ablation: γ-scaling of the core jump vector (Section 3.5).

Benchmarks mass estimation under the unscaled core jump ``v^{Ṽ⁺}``
versus the γ-scaled ``w``, and regenerates the comparison table: the
unscaled variant collapses (``‖p′‖ ≪ ‖p‖``, estimates ≈ PageRank, no
good/spam separation), while scaling restores the separation the
detector needs — the paper's reason for introducing γ.
"""

import pytest

from repro.core import estimate_spam_mass
from repro.eval import run_gamma_ablation


@pytest.mark.parametrize("gamma", [None, 0.85], ids=["unscaled", "scaled"])
def test_gamma_variants_bench(benchmark, ctx, gamma):
    benchmark(estimate_spam_mass, ctx.graph, ctx.core, gamma=gamma)


def test_gamma_ablation_table(benchmark, ctx, save_artifact):
    result = benchmark(run_gamma_ablation, ctx)
    save_artifact(result)
    unscaled, scaled = result.rows
    assert unscaled[1] < 0.2  # ||p'|| << ||p||
    assert unscaled[2] > 50.0  # most estimates collapse onto PageRank
    assert scaled[1] > 0.5
    assert scaled[5] > unscaled[5] + 0.3  # separation restored
