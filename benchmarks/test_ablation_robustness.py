"""A5 — Adversarial robustness (the Section 6 claims, quantified).

The paper argues that (a) evading mass detection by harvesting good
links means genuinely shifting the target's rank onto good hosts —
i.e. paying for the rank honestly — and (b) "effective tampering with
the proposed spam detection method would require non-obvious
manipulations of the good graph", which are impossible without knowing
the actual core.  This bench sweeps both attack families and saves the
trade-off table; the timed kernel is one full attack + re-estimation
cycle.
"""

import numpy as np

from repro.core import estimate_spam_mass
from repro.eval import attack_good_link_harvest, run_robustness_experiment


def test_ablation_robustness(benchmark, ctx, save_artifact):
    rng = np.random.default_rng(71)
    targets = ctx.world.group("spam:targets")

    def attack_and_estimate():
        attacked = attack_good_link_harvest(ctx.world, targets, 10, rng)
        return estimate_spam_mass(attacked, ctx.core, gamma=ctx.gamma)

    benchmark.pedantic(attack_and_estimate, rounds=2, iterations=1)
    # a fixed mole count dilutes with world size; scale it so the
    # infiltration pressure per farm is comparable across scales
    heavy_moles = max(len(targets) // 2, 20)
    result = run_robustness_experiment(
        ctx, mole_levels=(1, heavy_moles // 4, heavy_moles)
    )
    save_artifact(result)
    rows = {row[0]: row for row in result.rows}
    baseline = rows["baseline (no attack)"]
    # harvest: estimated and true mass fall together
    strongest_harvest = rows["harvest 1x boosters in good links"]
    assert strongest_harvest[1] < baseline[1]
    assert strongest_harvest[2] < baseline[2] - 0.2
    # infiltration: estimate falls, truth holds — only works with core
    # knowledge
    informed = rows[f"core infiltration, {heavy_moles} moles"]
    blind = rows[f"blind moles ({heavy_moles}, core unknown)"]
    few_moles = rows["core infiltration, 1 moles"]
    # more informed moles launder more mass; the identical attack graph
    # without core knowledge launders essentially nothing
    assert informed[1] < few_moles[1] - 0.05
    assert informed[1] < blind[1] - 0.05
    assert abs(blind[1] - baseline[1]) < 0.05
    # the targets' true spam support stays high under infiltration —
    # only the *estimate* was fooled
    assert informed[2] > 0.8
