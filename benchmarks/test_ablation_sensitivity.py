"""A8 — Sensitivity to the auxiliary parameters γ and ρ.

The paper sets γ = 0.85 from a "conservative estimate" and ρ = 10
"arbitrarily"; a deployable method must be forgiving to both.  This
bench sweeps each knob and saves the two tables: precision is flat
across a wide γ band (only the negative-mass share of the good web
moves), and tightening ρ trades candidate volume for precision, never
the other way around.
"""

from repro.core import estimate_spam_mass
from repro.eval import run_gamma_sensitivity, run_rho_sensitivity


def test_ablation_gamma_sensitivity(benchmark, ctx, save_artifact):
    benchmark.pedantic(
        run_gamma_sensitivity,
        args=(ctx,),
        kwargs={"gammas": (0.7, 0.85, 0.95)},
        rounds=1,
        iterations=1,
    )
    result = run_gamma_sensitivity(ctx)
    save_artifact(result)
    gammas = result.column("gamma")
    precisions = result.column("precision (elig.)")
    # within the realistic band (gamma >= 0.7) precision barely moves;
    # even halving the good-fraction estimate costs < 0.2
    realistic = [p for g, p in zip(gammas, precisions) if g >= 0.7]
    assert max(realistic) - min(realistic) < 0.1
    assert max(precisions) - min(precisions) < 0.2
    negatives = result.column("frac good w/ negative m~")
    assert negatives == sorted(negatives)


def test_ablation_rho_sensitivity(benchmark, ctx, save_artifact):
    result = benchmark.pedantic(
        run_rho_sensitivity, args=(ctx,), rounds=1, iterations=1
    )
    save_artifact(result)
    eligible = result.column("|T| eligible")
    assert eligible == sorted(eligible, reverse=True)
    by_rho = {row[0]: row for row in result.rows}
    # the paper's operating point beats the permissive filter
    assert by_rho[10.0][3] >= by_rho[2.0][3]
