"""A2 — Ablation: PageRank solver comparison (Section 2.2).

Benchmarks each linear-system solver on the synthetic host graph and
regenerates the comparison table.  Checks the paper's remarks: all
formulations agree on the solution (the power method's fixed point is
the normalized linear solution), and Gauss–Seidel needs fewer sweeps
than Jacobi (each sweep is one sparse triangular solve, so the
in-place update costs roughly one extra mat-vec of work).
"""

import pytest

from repro.core import pagerank
from repro.eval import run_solver_ablation

ALL_METHODS = ("jacobi", "gauss_seidel", "power", "bicgstab")


@pytest.mark.parametrize("method", ALL_METHODS)
def test_solver_bench(benchmark, ctx, method):
    result = benchmark(pagerank, ctx.graph, method=method, tol=1e-10)
    assert result.converged


def test_solver_ablation_table(benchmark, ctx, save_artifact):
    result = benchmark(run_solver_ablation, ctx, methods=ALL_METHODS)
    save_artifact(result)
    assert all(result.column("converged"))
    deviations = [float(d) for d in result.column(result.columns[-1])]
    assert max(deviations) < 1e-6


def test_gauss_seidel_beats_jacobi_in_iterations(benchmark, ctx):
    def compare():
        jacobi_iters = pagerank(
            ctx.graph, method="jacobi", tol=1e-10
        ).iterations
        gs_iters = pagerank(
            ctx.graph, method="gauss_seidel", tol=1e-10
        ).iterations
        return jacobi_iters, gs_iters

    jacobi_iters, gs_iters = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    assert gs_iters < jacobi_iters


def test_montecarlo_bench(benchmark, ctx):
    """Monte-Carlo PageRank (the random-surfer reading, constructively)
    as an independent cross-check: unbiased, error ~ 1/sqrt(walks)."""
    import numpy as np

    from repro.core import pagerank_montecarlo

    # the per-node standard error scales as sqrt(n / walks), so the
    # walk budget scales with graph size
    num_walks = max(200_000, 10 * ctx.graph.num_nodes)
    result = benchmark.pedantic(
        pagerank_montecarlo,
        args=(ctx.graph,),
        kwargs={
            "num_walks": num_walks,
            "rng": np.random.default_rng(0),
        },
        rounds=2,
        iterations=1,
    )
    exact = ctx.estimates.pagerank
    # total variation between estimate and exact solution stays small
    tv = 0.5 * float(np.abs(result.scores - exact).sum())
    assert tv < 0.06
