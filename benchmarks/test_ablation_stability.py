"""A6 — Temporal stability of white-lists vs black-lists (Section 3.4).

The paper's justification for anchoring the method to a *good* core —
"one can expect the good core to be more stable over time than Ṽ⁻, as
spam nodes come and go on the web" — quantified: an epoch-0 good core
keeps resolving and detecting across epochs of spam churn, while an
epoch-0 black-list evaporates along with the hosts it listed.  The
timed kernel is one epoch re-generation (the dominant cost of the
sweep).
"""

from repro.eval import run_stability_experiment, world_at_epoch

from conftest import bench_config


def test_ablation_stability(benchmark, save_artifact):
    config = bench_config()
    benchmark.pedantic(
        world_at_epoch, args=(config, 1), rounds=2, iterations=1
    )
    result = run_stability_experiment(config, epochs=3)
    save_artifact(result)
    core_resolved = result.column("core resolved %")
    black_resolved = result.column("blacklist resolved %")
    white_prec = result.column("white prec")
    black_recall = result.column("blacklist recall")
    assert all(v == 100.0 for v in core_resolved)
    assert all(v < 10.0 for v in black_resolved[1:])
    assert max(white_prec) - min(white_prec) < 0.25
    assert all(v < 0.15 for v in black_recall[1:])
