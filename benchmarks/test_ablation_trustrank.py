"""A7 — TrustRank vs spam mass: demotion vs detection (Section 5).

The paper distinguishes its contribution from TrustRank: "While spam
is demoted, it is not detected — this is a gap that we strive to fill".
This bench sweeps TrustRank seed budgets on the shared world and saves
the two-axis comparison (spam share of the top ranking = demotion;
precision/recall of thresholding = detection), with the mass detector
alongside.  The timed kernel is one full TrustRank run (inverse
PageRank + seed selection + trust propagation).
"""

from repro.baselines import trustrank
from repro.eval import run_trustrank_study


def test_ablation_trustrank(benchmark, ctx, save_artifact):
    spam_mask = ctx.world.spam_mask
    benchmark.pedantic(
        trustrank,
        args=(ctx.graph, lambda node: not spam_mask[node]),
        kwargs={"seed_budget": 200},
        rounds=2,
        iterations=1,
    )
    result = run_trustrank_study(ctx)
    save_artifact(result)
    rows = {row[0]: row for row in result.rows}
    baseline = rows["PageRank (no defense)"]
    best_trust_demotion = min(
        row[2]
        for name, row in rows.items()
        if name.startswith("TrustRank")
    )
    # TrustRank demotes hard even with small seeds
    assert best_trust_demotion < baseline[2] / 2
    # post-repair mass detection is near-perfect on precision
    repaired = rows[
        [name for name in rows if "anomalies repaired" in name][0]
    ]
    assert repaired[3] >= 0.9
