"""F1 — Figure 1: the naive labeling schemes on the k-booster farm.

Regenerates the Figure 1 analysis over a sweep of k: x's PageRank
matches the closed form ``(1 + 3c + kc²)(1−c)/n``, scheme 1 is fooled
for every k, scheme 2 flips to spam at ``k ≥ ⌈1/c⌉ = 2``.
"""

from repro.eval import run_figure1

K_VALUES = (1, 2, 3, 5, 10, 20, 50)


def test_fig1_naive_schemes(benchmark, save_artifact):
    result = benchmark(run_figure1, K_VALUES)
    save_artifact(result)
    assert result.column("scheme1") == ["good"] * len(K_VALUES)
    assert result.column("scheme2") == ["good"] + ["spam"] * (len(K_VALUES) - 1)
    computed = result.column("p_x (computed)")
    analytic = result.column("p_x (analytic)")
    assert all(abs(a - b) < 1e-6 for a, b in zip(computed, analytic))
    # the spam share of x's PageRank grows monotonically with k
    shares = result.column("spam share")
    assert shares == sorted(shares)
