"""F2 — Figure 2: PageRank contributions that defeat both naive schemes.

Regenerates the Section 3.3 contribution analysis: the seven spam nodes
contribute 1.65x what the four good nodes contribute to x's PageRank
(at c = 0.85), yet scheme 2 still calls x good — the observation that
motivates whole-graph spam mass.
"""

from repro.core import contribution_vector
from repro.datasets import figure2_graph
from repro.eval import run_figure2_contributions


def test_fig2_contributions(benchmark, save_artifact):
    example = figure2_graph()
    spam_only = [s for s in example.spam if s != example.id_of("x")]
    benchmark(contribution_vector, example.graph, spam_only)
    result = run_figure2_contributions()
    save_artifact(result)
    good_row, spam_row, ratio_row = result.rows
    assert abs(good_row[1] - good_row[2]) < 1e-6
    assert abs(spam_row[1] - spam_row[2]) < 1e-6
    assert abs(ratio_row[1] - 1.6486) < 0.001
    assert "good" in result.notes[0]  # scheme 2's recorded failure
