"""F3 — Figure 3: good/anomalous/spam composition of the sample groups.

Regenerates the stacked-bar data of Figure 3 (and renders it as ASCII
bars): spam prevalence rises toward the high-mass groups, and the gray
anomalous hosts — good members of under-covered communities — cluster
in the upper-middle groups exactly as the paper found for the
Alibaba/Brazilian-blog/Polish hosts.
"""

from repro.eval import render_stacked_bars, run_figure3, split_into_groups


def test_fig3_sample_composition(benchmark, ctx, save_artifact):
    result = benchmark(run_figure3, ctx, 20)
    bars = render_stacked_bars(
        [str(g) for g in result.column("group")],
        {
            "good": result.column("good"),
            "anomalous": result.column("anomalous"),
            "spam": result.column("spam"),
        },
        symbols={"good": ".", "anomalous": "+", "spam": "#"},
    )
    save_artifact(result, extra=bars)
    spam = result.column("spam")
    usable = result.column("usable")
    anomalous = result.column("anomalous")
    # spam share of the top 3 groups dwarfs that of the bottom 3
    top_share = sum(spam[-3:]) / max(sum(usable[-3:]), 1)
    bottom_share = sum(spam[:3]) / max(sum(usable[:3]), 1)
    assert top_share > bottom_share + 0.3
    # anomalous hosts concentrate in the upper half
    assert sum(anomalous[10:]) >= 0.9 * sum(anomalous)
    assert sum(anomalous) > 0
