"""F4 — Figure 4: precision of mass-based detection vs threshold τ.

Regenerates both Figure 4 curves (anomalous hosts counted as false
positives / excluded) over the paper's τ grid, along with the
hosts-above-threshold annotation row.  Shape assertions follow the
paper: near-perfect precision at τ = 0.98 with anomalies excluded,
monotone-ish decay toward the positive-mass spam base rate at τ = 0.
"""

import math

from repro.eval import (
    PAPER_THRESHOLDS,
    precision_curve,
    render_curves,
    run_figure4,
)


def test_fig4_precision_curves(benchmark, ctx, save_artifact):
    benchmark(
        precision_curve, ctx.sample, ctx.estimates.relative, PAPER_THRESHOLDS
    )
    result = run_figure4(ctx)
    chart = render_curves(
        result.column("tau"),
        {
            "anomalous incl.": result.column("prec (anom. incl.)"),
            "anomalous excl.": result.column("prec (anom. excl.)"),
        },
        y_range=(0.0, 1.0),
    )
    save_artifact(result, extra=chart)
    incl = result.column("prec (anom. incl.)")
    excl = result.column("prec (anom. excl.)")
    totals = result.column("|T| above")
    assert excl[0] >= 0.9  # paper: virtually 100% at tau = 0.98
    assert excl[0] > excl[-1]  # decay toward the base rate
    assert totals == sorted(totals)  # more hosts clear looser thresholds
    for i, e in zip(incl, excl):
        if not (math.isnan(i) or math.isnan(e)):
            assert e >= i - 1e-9  # excluding anomalies never hurts
