"""F5 — Figure 5: detection precision for cores of different size and
breadth.

Regenerates the core sweep: the full core, uniform 10% / 1% / 0.5%
subsamples, and the narrow single-country (.it-style) core.  The timed
kernel is one full mass estimation against the 10% core.  Shape
assertions follow the paper: graceful degradation with core size, and
the narrow national core performing worst despite not being the
smallest — breadth of coverage matters more than size.
"""

import math

import numpy as np

from repro.core import estimate_spam_mass
from repro.eval import render_curves, run_figure5
from repro.synth import subsample_core


def test_fig5_core_size(benchmark, ctx, save_artifact):
    small_core = subsample_core(ctx.core, 0.1, np.random.default_rng(5))
    benchmark(estimate_spam_mass, ctx.graph, small_core, gamma=ctx.gamma)
    result = run_figure5(ctx)
    labels = result.columns[1:]
    chart = render_curves(
        result.column("tau"),
        {label: result.column(label) for label in labels},
        y_range=(0.0, 1.0),
    )
    save_artifact(result, extra=chart)

    def mean_precision(label):
        values = [v for v in result.column(label) if not math.isnan(v)]
        return sum(values) / len(values)

    means = {label: mean_precision(label) for label in labels}
    # graceful decline with core size
    assert means["100% core"] >= means["1% core"] - 0.02
    assert means["10% core"] >= means["0.5% core"] - 0.02
    # the narrow country core does worst (the paper's headline finding)
    country = [label for label in labels if label.startswith(".")][0]
    for label in labels:
        if label != country:
            assert means[country] <= means[label] + 0.02
