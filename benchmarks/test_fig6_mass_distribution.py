"""F6 — Figure 6: the distribution of estimated absolute mass.

Regenerates both panels of Figure 6 on a log-log scale: the positive
side must follow a decaying power law (paper exponent −2.31), and the
negative side must superpose two curves — the natural distribution of
ordinary hosts and the core-biased distribution of ``Ṽ⁺`` members
pushed far negative by the γ-scaled jump.
"""

from repro.analysis import mass_distribution, negative_mass_decomposition
from repro.eval import render_loglog, run_figure6


def test_fig6_mass_distribution(benchmark, ctx, save_artifact):
    scaled_mass = ctx.estimates.scaled_absolute()
    dist = benchmark(mass_distribution, scaled_mass)
    result = run_figure6(ctx)
    positive_panel = render_loglog(
        dist.positive_bins,
        dist.positive_fractions,
        title="positive mass (log-log)",
    )
    noncore, core = negative_mass_decomposition(scaled_mass, ctx.core)
    negative_panel = render_loglog(
        noncore[0], noncore[1], title="negative mass, non-core hosts"
    ) + "\n" + render_loglog(
        core[0], core[1], title="negative mass, core-biased hosts"
    )
    save_artifact(result, extra=positive_panel + "\n" + negative_panel)

    by_metric = {row[0]: row for row in result.rows}
    assert by_metric["min mass"][1] < 0 < by_metric["max mass"][1]
    exponent = float(by_metric["positive power-law exponent"][1])
    assert -4.0 < exponent < -1.2  # paper: -2.31
    med = by_metric["negative curves (non-core / core median |mass|)"][1]
    noncore_med, core_med = (float(x) for x in med.split(" / "))
    assert core_med > noncore_med  # the two superimposed curves
