"""FW1 — Future work (Section 6): content analysis of false positives.

The paper closes with the conjecture that "many false positives could
be eliminated by complementary (textual) content analysis".  This
bench regenerates that experiment on the synthetic world with a
simulated content classifier (anomalous good communities read clean;
machine-generated spam reads spammy; honeypots, paid-link customers
and content-mimicking sophisticated farms are the modelled blind
spots): the AND-combination removes the anomalous false positives and
lifts precision; the OR-combination shows the two signals are
complementary on recall.
"""

from repro.extensions import ContentModel, run_content_filter_experiment


def test_future_work_content(benchmark, ctx, save_artifact):
    model = ContentModel()
    benchmark(model.score, ctx.world)
    result = run_content_filter_experiment(ctx)
    save_artifact(result)
    rows = {row[0]: row for row in result.rows}
    mass_row = rows["mass only (tau=0.75)"]
    and_row = rows["mass AND content"]
    or_row = rows["mass OR content"]
    # the filter clears most anomalous false positives ...
    assert and_row[3] <= mass_row[3] // 2
    # ... lifting precision, at some recall cost
    assert and_row[4] > mass_row[4]
    # the union dominates each single signal on recall
    assert or_row[5] >= mass_row[5]
    assert or_row[5] >= rows["content only (eligible)"][5]
