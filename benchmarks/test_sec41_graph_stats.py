"""S41 — Section 4.1: host-graph composition statistics.

Times full synthetic-world generation and regenerates the data-set
statistics table: the base web must match the Yahoo! 2004 fractions
(35% no inlinks, 66.4% no outlinks, 25.8% isolated); the full world is
reported alongside to document the dilution by link-active spam and
community layers.
"""

from repro.eval import run_graph_stats
from repro.synth import build_world

from conftest import bench_config


def test_sec41_graph_stats(benchmark, save_artifact):
    config = bench_config()
    benchmark(build_world, config)
    result = run_graph_stats(config)
    save_artifact(result)
    by_metric = {row[0]: row for row in result.rows}
    assert abs(by_metric["% no inlinks"][2] - 35.0) < 2.0
    assert abs(by_metric["% no outlinks"][2] - 66.4) < 2.0
    assert abs(by_metric["% isolated"][2] - 25.8) < 2.0
    assert by_metric["edges"][3] > by_metric["edges"][2]
