"""S43 — Section 4.3: the PageRank score distribution.

Times the regular PageRank computation on the synthetic host graph and
regenerates the distribution facts the paper reports: the overwhelming
majority of hosts sit near the minimum score, hosts at 100x the minimum
are rare, and the tail is power-law distributed.
"""

from repro.core import pagerank
from repro.eval import run_pagerank_distribution


def test_sec43_pagerank_distribution(benchmark, ctx, save_artifact):
    benchmark(pagerank, ctx.graph)
    result = run_pagerank_distribution(ctx)
    save_artifact(result)
    by_metric = {row[0]: row for row in result.rows}
    assert by_metric["% scaled PR < 2"][2] > 50.0
    assert by_metric["% scaled PR >= 100"][2] < 2.0
    exponent = by_metric["power-law exponent (tail)"][2]
    assert 1.5 < exponent < 4.0
