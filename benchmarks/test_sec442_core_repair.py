"""S442 — Section 4.4.2: eliminating an anomaly by core repair.

Regenerates the Alibaba repair experiment: a handful of hub hosts of
the isolated portal community are added to the good core, the
core-based PageRank is recomputed, and (a) the portal members' relative
mass collapses while (b) everyone else's estimates barely move (the
paper measured a mean absolute change of 0.0298).
"""

from repro.core import estimate_spam_mass
from repro.eval import run_core_repair
from repro.synth import repair_core


def test_sec442_core_repair(benchmark, ctx, save_artifact):
    hubs = ctx.world.group("portal:megaportal.com:hubs")
    repaired = repair_core(ctx.core, hubs)
    benchmark(estimate_spam_mass, ctx.graph, repaired, gamma=ctx.gamma)
    result = run_core_repair(ctx)
    save_artifact(result)
    by_metric = {row[0]: row for row in result.rows}
    assert by_metric["hub hosts added to core"][1] <= 16
    before = by_metric["portal mean m~ before"][1]
    after = by_metric["portal mean m~ after"][1]
    assert before > 0.9
    # the drop's magnitude scales with the per-core-host jump weight
    # (gamma * n / |core|); our synthetic core is a larger fraction of
    # the web than the paper's 504k/73.3M, so the collapse is softer —
    # the direction and the isolation of the side effect are the claims
    assert after < before - 0.08
    assert by_metric["mean |change| elsewhere (positive m~)"][1] < 0.05
