"""S46 — Section 4.6: absolute mass alone is unusable for detection.

Regenerates the top-of-the-ranking inspection: sorting hosts by
estimated absolute mass intermixes reputable high-PageRank hosts with
spam (the paper found www.macromedia.com at #3), so no mass value
separates good from spam — unlike the relative-mass ranking that
Algorithm 2 uses.
"""

import numpy as np

from repro.eval import run_absolute_mass_ranking


def rank_by_absolute_mass(estimates):
    return np.argsort(-estimates.scaled_absolute(), kind="stable")


def test_sec46_absolute_mass(benchmark, ctx, save_artifact):
    benchmark(rank_by_absolute_mass, ctx.estimates)
    result = run_absolute_mass_ranking(ctx, top=20)
    save_artifact(result)
    truths = result.column("truth")
    # good and spam intermix in the top of the absolute ranking
    assert "good" in truths
    assert "spam" in truths
    # and the intermixing is interleaved, not a clean prefix: some good
    # host ranks above some spam host and vice versa
    first_good = truths.index("good")
    first_spam = truths.index("spam")
    assert first_good < len(truths) - 1 and first_spam < len(truths) - 1
