"""T1 — Table 1: node features of the paper's Figure 2 example.

Regenerates every cell of Table 1 (PageRank, core-based PageRank,
actual/estimated absolute and relative mass, scaled by ``n/(1−c)``) and
checks them against the closed forms; the timed kernel is the pair of
PageRank solves behind a mass estimation on the example graph.
"""

from repro.core import estimate_spam_mass
from repro.datasets import figure2_graph
from repro.eval import run_table1


def test_table1_paper_example(benchmark, save_artifact):
    example = figure2_graph()
    benchmark(
        estimate_spam_mass, example.graph, example.good_core, gamma=None
    )
    result = run_table1()
    save_artifact(result)
    deviation_note = [n for n in result.notes if "max" in n][0]
    assert float(deviation_note.split("=")[-1]) < 1e-9
    # spot-check the printed headline numbers
    x_row = result.rows[0]
    assert abs(x_row[1] - 9.33) < 0.005   # p
    assert abs(x_row[2] - 2.295) < 1e-6   # p'
    assert abs(x_row[3] - 6.185) < 1e-6   # M
    assert abs(x_row[4] - 7.035) < 1e-6   # M~
