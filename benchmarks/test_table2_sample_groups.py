"""T2 — Table 2: relative-mass boundaries of the 20 sorted sample groups.

Times the grouping step and regenerates the table: monotone group
boundaries running from strongly negative (core-biased hosts) up to the
saturated 1.00 of pure farm targets, with near-equal group sizes.
"""

from repro.eval import run_table2, split_into_groups


def test_table2_sample_groups(benchmark, ctx, save_artifact):
    benchmark(split_into_groups, ctx.sample, ctx.estimates.relative, 20)
    result = run_table2(ctx, num_groups=20)
    save_artifact(result)
    smallest = result.column("smallest m~")
    largest = result.column("largest m~")
    sizes = result.column("size")
    assert len(result.rows) == 20
    assert smallest == sorted(smallest)
    assert smallest[0] < 0  # paper: group 1 starts at -67.90
    assert abs(largest[-1] - 1.0) < 0.01  # paper: group 20 ends at 1.00
    assert max(sizes) - min(sizes) <= 1  # near-equal sizes
    assert sum(sizes) == len(ctx.sample)
