"""TA1 — detection latency of streamed temporal attacks (Section 6).

The paper's threat model is static: a farm either exists in the crawl
or it does not.  The streaming front door (docs/streaming.md) makes
the *temporal* version measurable — an attack is a script of
timestamped edge events, and detection latency is the number of
events between the attack's onset and the Algorithm 2 gates (or the
core-audit gate, for a rotting core member) first firing on the
target.  Three scripts are replayed across several world seeds:

* ``expired-takeover`` — a reputable host changes hands and is
  re-pointed at a spam target that inherits its clean PageRank;
* ``gradual-farm`` — a dormant host accretes boosters a few links per
  window, staying under the relative-mass radar as long as possible;
* ``stale-core`` — a good-core member rots, contaminating p' itself;
  caught by the core-audit gate rather than the spam gate.

The timed kernel is one full stream replay (validation, windowing,
per-window incremental re-estimates, probe observation).  Every
scripted attack must be caught in every seed — a miss is a
correctness failure, not a slow number.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np

from repro.core import estimate_spam_mass
from repro.eval import LatencyProbe, TableResult
from repro.graph import WebGraph, write_graph_bundle, write_host_list
from repro.runtime.checkpoint import save_solution
from repro.serve import (
    DaemonConfig,
    ScoringDaemon,
    StreamConfig,
    StreamIngestor,
)
from repro.synth import ATTACK_KINDS, synthesize_stream

from conftest import bench_config  # noqa: F401  (scale parity with peers)

#: The attack-world recipe: 40 active hosts carrying 200 live edges,
#: 60 dormant hosts for the scripts to claim, a 10-host good core.
#: Detection latency is a property of the gates, not of graph scale,
#: so the committed numbers stay cheap to regenerate.
N, ACTIVE = 100, 40
GAMMA = 0.85
RHO, TAU = 1.5, 0.9
EVENTS, BOOSTERS, STRIDE = 400, 12, 3
SEEDS = (3, 4, 5, 6, 7)


def _build_world(root):
    rng = np.random.default_rng(7)
    edges = set()
    while len(edges) < 200:
        u, v = rng.integers(0, ACTIVE, 2)
        if u != v:
            edges.add((int(u), int(v)))
    graph = WebGraph.from_edges(N, sorted(edges))
    core = np.arange(0, 10, dtype=np.int64)
    estimates = estimate_spam_mass(graph, core, gamma=GAMMA)
    world_dir = root / "world"
    write_graph_bundle(graph, world_dir)
    write_host_list(
        [graph.name_of(int(i)) for i in core], world_dir / "core.hosts"
    )
    template = root / "ckpt-template"
    save_solution(
        template,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=graph.structural_fingerprint(),
        extra={"damping": 0.85, "gamma": GAMMA,
               "labels": ["pagerank", "core"]},
    )
    return graph, core, world_dir, template


def _replay(graph, core, world_dir, template, scratch, seed):
    """One full stream replay with the latency probe attached."""
    stream = synthesize_stream(
        graph,
        core=core,
        seed=seed,
        num_events=EVENTS,
        boosters_per_attack=BOOSTERS,
        attack_stride=STRIDE,
    )
    probe = LatencyProbe(stream.attacks, rho=RHO, tau=TAU)
    run_dir = Path(tempfile.mkdtemp(prefix=f"ta1-{seed}-", dir=scratch))
    ckpt = run_dir / "ckpt"
    shutil.copytree(template, ckpt)
    daemon = ScoringDaemon.load(
        world_dir, ckpt, config=DaemonConfig(max_staleness=16)
    )
    ingestor = StreamIngestor(
        daemon,
        run_dir / "state",
        config=StreamConfig(window=16, max_lateness=8),
        on_commit=probe.observe,
    )
    path = run_dir / "events.jsonl"
    stream.write(path)
    ingestor.ingest_file(path)
    ingestor.flush()
    return probe.report()


def test_temporal_attack_latency(benchmark, tmp_path, save_artifact):
    graph, core, world_dir, template = _build_world(tmp_path)
    benchmark.pedantic(
        _replay,
        args=(graph, core, world_dir, template, tmp_path, SEEDS[0]),
        rounds=2,
        iterations=1,
    )

    per_kind = {kind: [] for kind in ATTACK_KINDS}
    for seed in SEEDS:
        for verdict in _replay(
            graph, core, world_dir, template, tmp_path, seed
        ):
            per_kind[verdict["kind"]].append(verdict)

    rows = []
    for kind in ATTACK_KINDS:
        verdicts = per_kind[kind]
        caught = [v for v in verdicts if v["caught"]]
        events = [v["events_until_caught"] for v in caught]
        windows = [v["windows_until_caught"] for v in caught]
        rows.append(
            (
                kind,
                len(verdicts),
                len(caught),
                float(np.median(events)) if events else float("nan"),
                min(events) if events else "n/a",
                max(events) if events else "n/a",
                float(np.median(windows)) if windows else float("nan"),
            )
        )
    result = TableResult(
        "TA1",
        "Detection latency of streamed temporal attacks "
        f"(ρ={RHO}, τ={TAU}, window=16)",
        [
            "attack",
            "runs",
            "caught",
            "median events",
            "min events",
            "max events",
            "median windows",
        ],
        rows,
        notes=[
            f"each run streams {EVENTS} events over seeds "
            f"{', '.join(str(s) for s in SEEDS)}; "
            f"{BOOSTERS} boosters per attack, one script step every "
            f"{STRIDE} churn events",
            "latency counts events from attack onset to the first "
            "window commit whose gates flag the target",
            "expired-takeover and gradual-farm trip the Algorithm 2 "
            "gates (scaled PR >= rho and relative mass >= tau); "
            "stale-core trips the core-audit gate (m̃ >= 0.5) "
            "on a good-core member",
        ],
    )
    save_artifact(result)

    assert result.column("caught") == result.column("runs"), (
        "a scripted attack went undetected"
    )
    by_kind = {row[0]: row for row in rows}
    # the gradual farm must actually be gradual: never caught in its
    # onset window
    assert all(
        v["windows_until_caught"] >= 1 for v in per_kind["gradual-farm"]
    )
    # the takeover inherits real PageRank, so it is the fastest catch
    assert by_kind["expired-takeover"][3] <= by_kind["stale-core"][3]
