#!/usr/bin/env python3
"""Candidate review: explaining *why* a host was flagged.

Algorithm 2 outputs a candidate set; a production anti-spam team then
reviews candidates by hand (the paper's authors manually inspected 892
hosts).  The contribution formalism of Section 3.2 lets the tooling do
most of that work: for any host, one linear solve yields every node's
exact contribution to its PageRank (Theorem 1 guarantees they sum to
it), which the library renders as a review sheet — how much of the
rank comes from the known-good core, how much from suspected spam, and
which individual sources matter most.

This example flags candidates on a synthetic world, then prints review
sheets for three instructive cases:

* a farm target (boosters dominate the sheet — clear-cut takedown);
* an anomalous good host (no spam sources at all: the mass came from
  a core coverage gap — whitelist/repair material, not a takedown);
* an expired-domain spam host (good sources on top, which is exactly
  why mass-based detection leaves it to other methods).

Run:  python examples/candidate_review.py
"""

import numpy as np

from repro.core import MassDetector, explain_mass
from repro.eval import ReproductionContext
from repro.synth import WorldConfig


def main() -> None:
    print("Building the synthetic world ...")
    ctx = ReproductionContext.build(WorldConfig.small())
    detector = MassDetector(tau=0.9, rho=ctx.rho)
    result = detector.detect(ctx.estimates)
    print(
        f"{result.num_candidates} candidates at tau=0.9 "
        f"(of {result.num_eligible} eligible hosts)\n"
    )

    world = ctx.world
    candidates = set(result.candidates.tolist())
    anomalous = set(world.anomalous_nodes().tolist())

    farm_target = next(
        int(t) for t in world.group("spam:targets") if int(t) in candidates
    )
    anomalous_fp = next(
        (int(c) for c in result.candidates if int(c) in anomalous), None
    )
    expired = int(world.group("expired:targets")[0])

    cases = [("a detected farm target", farm_target)]
    if anomalous_fp is not None:
        cases.append(("an anomalous-community false positive", anomalous_fp))
    cases.append(("an expired-domain spam host (not a candidate)", expired))

    for title, node in cases:
        # in production `suspected_spam` would be the team's running
        # black-list; here the world's ground truth stands in for it
        sheet = explain_mass(
            ctx.graph,
            node,
            ctx.core,
            suspected_spam=world.spam_nodes(),
            top=6,
        )
        print(f"--- {title} ---")
        print(sheet.render(ctx.graph))
        truth = "spam" if world.spam_mask[node] else "good"
        flagged = node in candidates
        print(
            f"  ground truth: {truth}; flagged: {flagged}; "
            f"m~ = {ctx.estimates.relative[node]:.3f}\n"
        )

    print(
        "Reading the sheets: the farm target's top sources are its own\n"
        "boosters; the anomalous host's sources are fellow community\n"
        "members (no spam anywhere — fix the core, not the host); the\n"
        "expired domain is fed by genuinely good hosts, the blind spot\n"
        "the paper assigns to complementary detection methods."
    )


if __name__ == "__main__":
    main()
