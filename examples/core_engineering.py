#!/usr/bin/env python3
"""Good-core engineering: the search-engine operator's workflow.

The paper's practical message is that detection quality is governed by
the good core's size and, above all, its *breadth of coverage*
(Sections 4.4.2 and 4.5).  This example plays the operator:

1. assemble the default core and measure detection precision;
2. sweep core size (100% / 10% / 1% / 0.5%) and a narrow
   single-country core — Figure 5;
3. diagnose the anomalies: which good communities show high relative
   mass purely because the core misses them;
4. repair the cheapest anomaly (add the portal's few hub hosts, like
   the paper's 12 alibaba.com hosts) and re-measure — Section 4.4.2.

Run:  python examples/core_engineering.py
"""

import numpy as np

from repro.core import estimate_spam_mass
from repro.eval import (
    ReproductionContext,
    precision_curve,
    run_core_repair,
    run_figure5,
)
from repro.synth import WorldConfig, core_coverage, repair_core


def main() -> None:
    print("Building the synthetic world ...")
    ctx = ReproductionContext.build(WorldConfig.small())
    coverage = core_coverage(ctx.world, ctx.core)
    print(
        f"  default core: {len(ctx.core):,} hosts "
        f"({coverage:.1%} of the good web)\n"
    )

    # --- step 2: the Figure 5 sweep --------------------------------
    print(run_figure5(ctx).to_ascii(), "\n")

    # --- step 3: diagnose the anomalies ----------------------------
    print("High-mass GOOD communities (core coverage gaps):")
    rel = ctx.estimates.relative
    eligible = ctx.eligible_mask
    for group_name in ("portal:megaportal.com", "blogs", "country:pl",
                       "country:cz"):
        members = ctx.world.group(group_name)
        mask = np.zeros(ctx.world.num_nodes, dtype=bool)
        mask[members] = True
        chosen = mask & eligible
        if not chosen.any():
            continue
        print(
            f"  {group_name:<25} eligible={int(chosen.sum()):>4} "
            f"mean m~ = {rel[chosen].mean():>6.3f}"
        )
    print(
        "  (country:cz is the control: its educational hosts ARE in the "
        "core,\n   so its mass stays low — coverage, not nationality, "
        "drives the anomaly)\n"
    )

    # --- step 4: repair the portal anomaly -------------------------
    print(run_core_repair(ctx).to_ascii(), "\n")

    hubs = ctx.world.group("portal:megaportal.com:hubs")
    repaired = repair_core(ctx.core, hubs)
    after = estimate_spam_mass(ctx.graph, repaired, gamma=ctx.gamma)
    tau = 0.98
    before_point = precision_curve(ctx.sample, rel, (tau,))[0]
    after_point = precision_curve(ctx.sample, after.relative, (tau,))[0]
    print(
        f"precision at tau={tau} with anomalous hosts counted as false "
        f"positives:\n"
        f"  before repair: {before_point.precision:.3f} "
        f"({before_point.num_spam}/{before_point.num_total})\n"
        f"  after adding {len(hubs)} hub hosts: "
        f"{after_point.precision:.3f} "
        f"({after_point.num_spam}/{after_point.num_total})"
    )


if __name__ == "__main__":
    main()
