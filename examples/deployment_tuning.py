#!/usr/bin/env python3
"""Deployment tuning: choosing τ from a labeled sample, with honest
error bars — and planning the spammer's side of the arms race.

The paper derives its precision numbers from a manually labeled 0.1%
sample and leaves "the selection of the threshold τ" as the key open
knob.  This example shows the operator's workflow on top of the
library's tooling:

1. label a small uniform sample of the filtered set (simulated
   inspection, including the paper's unknown/non-existent exclusions);
2. pick the loosest τ that meets a precision target on the sample
   (maximizing catch volume at that quality bar);
3. bootstrap a confidence interval for the sample precision and check
   it against the full-population value (which the synthetic world,
   unlike the real web, lets us compute);
4. flip sides: use the closed-form farm analysis to ask how many
   boosters a spammer needs to reach a given rank — and observe that
   the resulting farm lands straight in the detector's saturation
   zone.

Run:  python examples/deployment_tuning.py
"""

import numpy as np

from repro.analysis import boosters_needed, optimal_farm_target
from repro.eval import (
    ReproductionContext,
    bootstrap_precision,
    build_evaluation_sample,
    choose_tau,
    detection_volume,
    precision_at,
)
from repro.synth import WorldConfig


def main() -> None:
    print("Building the synthetic world ...")
    ctx = ReproductionContext.build(WorldConfig.medium())
    rel = ctx.estimates.relative
    rng = np.random.default_rng(99)

    # -- 1. a 25% labeled sample of the filtered set -----------------
    eligible_nodes = np.flatnonzero(ctx.eligible_mask)
    sample = build_evaluation_sample(
        ctx.world, eligible_nodes, rng, fraction=0.25
    )
    composition = sample.composition()
    print(
        f"labeled sample: {len(sample)} of {len(eligible_nodes)} filtered "
        f"hosts — {composition['good']} good, {composition['spam']} spam, "
        f"{composition['unknown']} unknown, "
        f"{composition['nonexistent']} non-existent\n"
    )

    # -- 2. choose tau for a precision target ------------------------
    for target in (0.7, 0.9, 0.95):
        chosen = choose_tau(sample, rel, target_precision=target)
        if chosen is None:
            print(f"target {target:.0%}: unreachable on this sample")
            continue
        tau, point = chosen
        volume = detection_volume(rel, ctx.eligible_mask, tau)
        print(
            f"target {target:.0%}: tau = {tau:.2f} "
            f"(sample precision {point.precision:.3f} on "
            f"{point.num_total} hosts; would label {volume} hosts)"
        )

    # the unreachable high targets are caused by the anomalous good
    # communities counting as false positives; once the operator has
    # repaired/whitelisted them (Section 4.4.2), the bar moves:
    print("\nwith anomalous communities repaired (excluded as FPs):")
    for target in (0.9, 0.95):
        chosen = choose_tau(
            sample, rel, target_precision=target, exclude_anomalous=True
        )
        if chosen is None:
            print(f"target {target:.0%}: still unreachable")
            continue
        tau, point = chosen
        print(
            f"target {target:.0%}: tau = {tau:.2f} "
            f"(sample precision {point.precision:.3f} on "
            f"{point.num_total} hosts)"
        )

    # -- 3. error bars vs the (here knowable) population value -------
    tau = 0.91
    interval = bootstrap_precision(
        sample, rel, tau, num_resamples=2_000, rng=rng
    )
    population = precision_at(ctx.sample, rel, tau).precision
    print(
        f"\nbootstrap at tau = {tau}: sample precision "
        f"{interval.point:.3f}, 95% CI "
        f"[{interval.lower:.3f}, {interval.upper:.3f}] — "
        f"population value {population:.3f} "
        f"({'covered' if interval.contains(population) else 'MISSED'})\n"
    )

    # -- 4. the spammer's planning problem ---------------------------
    print("The arms race, from the spammer's desk (closed forms):")
    for target_rank in (10.0, 100.0, 1000.0):
        k = boosters_needed(target_rank, recycling=True)
        print(
            f"  to reach scaled PageRank {target_rank:>6g}: "
            f"{k:>5d} boosters (rank-recycling farm, reaches "
            f"{optimal_farm_target(max(k, 1)):.1f})"
        )
    print(
        "  ... and a pure farm of any such size has relative mass ~1.0 — "
        "squarely\n  inside the tau >= 0.98 detection zone, which is the "
        "paper's point: the\n  boosting that makes a farm effective is "
        "exactly what makes it detectable."
    )


if __name__ == "__main__":
    main()
