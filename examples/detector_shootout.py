#!/usr/bin/env python3
"""Detector shoot-out: spam mass vs the related-work baselines.

Runs every implemented detector on the same synthetic world and prints
the head-to-head comparison of Section 5's landscape:

* mass-based detection (this paper, Algorithm 2);
* a detection read-out of TrustRank (the paper's own prior work, which
  demotes rather than detects);
* the two naive in-neighbour schemes of Section 3.1, given oracle
  labels they could never have in practice;
* Fetterly-style degree outliers and a Benczúr-style
  supporter-distribution detector, which catch regular machine-made
  farms but miss sophisticated ones.

Also demonstrates the combined white-list + black-list estimator of
Section 3.4 and the built-in blind spot: expired-domain spam.

Run:  python examples/detector_shootout.py
"""

import numpy as np

from repro.core import MassDetector
from repro.eval import (
    ReproductionContext,
    run_baseline_comparison,
    run_combined_ablation,
)
from repro.synth import WorldConfig


def main() -> None:
    print("Building the synthetic world ...")
    ctx = ReproductionContext.build(WorldConfig.small())
    print(
        f"  {ctx.graph.num_nodes:,} hosts, "
        f"{int(ctx.world.spam_mask.sum()):,} ground-truth spam\n"
    )

    print(run_baseline_comparison(ctx).to_ascii(), "\n")
    print(run_combined_ablation(ctx).to_ascii(), "\n")

    # the known blind spot: expired domains
    detector = MassDetector(tau=0.5, rho=ctx.rho)
    result = detector.detect(ctx.estimates)
    expired = ctx.world.group("expired:targets")
    caught = int(result.candidate_mask[expired].sum())
    rel = ctx.estimates.relative[expired]
    print(
        "Expired-domain spam (PageRank genuinely inherited from good "
        "hosts):\n"
        f"  targets: {len(expired)}, detected even at tau=0.5: {caught}\n"
        f"  their relative mass: "
        f"{np.array2string(np.sort(rel), precision=2)}\n"
        "  — negative/low, exactly the miss the paper predicts for "
        "mass-based detection\n    (Section 4.4.3, observation 2)."
    )


if __name__ == "__main__":
    main()
