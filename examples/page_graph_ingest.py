#!/usr/bin/env python3
"""Ingesting a page-level crawl, the way the paper built its data set.

Section 4.1: the Yahoo! host graph was "obtained by collapsing all
hyperlinks between any pair of pages on two different hosts into a
single directed edge", hosts being the URL part before the first `/`.
This example runs that pipeline on a small page-level crawl:

1. build a synthetic page-level crawl (pages expanded from a host
   world, so we know the right answer);
2. collapse it to host granularity with `collapse_page_graph` —
   dropping broken URLs and intra-host navigation links exactly like
   the paper's cleaning step;
3. run the spam-mass pipeline on the collapsed graph;
4. collapse the same crawl to *domain* granularity and observe how the
   coarser view merges each farm's throwaway subdomains.

Run:  python examples/page_graph_ingest.py
"""

import numpy as np

from repro.core import detect_spam
from repro.graph import collapse_page_graph
from repro.synth import WorldConfig, build_world, default_good_core


def expand_to_pages(world, rng):
    """Turn the host world into a page-level crawl (1-4 pages/host)."""
    pages, page_of_host = [], {}
    for host in range(world.num_nodes):
        page_of_host[host] = []
        for p in range(int(rng.integers(1, 5))):
            page_of_host[host].append(len(pages))
            pages.append(f"http://{world.graph.name_of(host)}/page{p}.html")
    page_edges = []
    for u, v in world.graph.edges():
        for _ in range(int(rng.integers(1, 3))):
            page_edges.append(
                (
                    int(rng.choice(page_of_host[u])),
                    int(rng.choice(page_of_host[v])),
                )
            )
        # intra-host navigation (must vanish in the collapse)
        if len(page_of_host[u]) > 1:
            page_edges.append((page_of_host[u][0], page_of_host[u][1]))
    # a few broken URLs, like any real crawl
    pages.append("not a url")
    page_edges.append((0, len(pages) - 1))
    return pages, page_edges


def main() -> None:
    rng = np.random.default_rng(17)
    print("Building a host world and expanding it to a page crawl ...")
    world = build_world(WorldConfig.small())
    pages, page_edges = expand_to_pages(world, rng)
    print(f"  crawl: {len(pages):,} pages, {len(page_edges):,} hyperlinks")

    result = collapse_page_graph(pages, page_edges, granularity="host")
    g = result.graph
    print(
        f"  collapsed: {g.num_nodes:,} hosts, {g.num_edges:,} host edges "
        f"({result.num_intra_edges:,} intra-host links and "
        f"{result.num_dropped_pages} broken URLs discarded)\n"
    )

    # the collapsed graph is the original host graph (same names), so
    # the world's core carries over by name
    lookup = {name: i for i, name in enumerate(g.names)}
    core = [
        lookup[world.graph.name_of(int(i))]
        for i in default_good_core(world)
    ]
    detection = detect_spam(g, core, tau=0.98, rho=10.0)
    spam_by_name = {
        world.graph.name_of(int(i)) for i in world.spam_nodes()
    }
    hits = sum(
        1
        for c in detection.candidates
        if g.name_of(int(c)) in spam_by_name
    )
    print(
        f"Algorithm 2 on the ingested graph: {detection.num_candidates} "
        f"candidates, {hits} ground-truth spam "
        f"({hits / max(detection.num_candidates, 1):.0%})\n"
    )

    domains = collapse_page_graph(pages, page_edges, granularity="domain")
    print(
        f"Domain-granularity view: {domains.graph.num_nodes:,} domains "
        f"(vs {g.num_nodes:,} hosts) — each spam farm's throwaway "
        "domains stay separate\n(farms deliberately spread across "
        "domains; Section 1 notes farms spanning thousands of them)."
    )


if __name__ == "__main__":
    main()
