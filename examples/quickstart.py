#!/usr/bin/env python3
"""Quickstart: spam mass on the paper's own 12-node example.

Walks the worked example of Sections 3.3–3.6 end to end:

1. build the Figure 2 graph;
2. compute regular and core-based PageRank;
3. derive absolute and relative spam-mass estimates (Table 1);
4. run the mass-based detector (Algorithm 2) with the paper's example
   thresholds and recover its exact candidate set {x, s0, g2} — g2
   being the expected false positive caused by the incomplete core.

Run:  python examples/quickstart.py
"""

from repro import detect_spam, figure2_graph
from repro.core import estimate_spam_mass, scale_scores, true_spam_mass


def main() -> None:
    example = figure2_graph()
    graph = example.graph
    n = graph.num_nodes

    print("The Figure 2 web graph:")
    for u, v in graph.edges():
        print(f"  {graph.name_of(u):>3} -> {graph.name_of(v)}")

    # Mass estimation from the good core {g0, g1, g3} (g2 is good but
    # unknown to us — exactly the situation the paper studies).
    estimates = estimate_spam_mass(graph, example.good_core, gamma=None)
    actual = scale_scores(true_spam_mass(graph, example.spam), n)

    print("\nTable 1 (scores scaled by n/(1-c); minimum PageRank = 1):")
    header = f"{'node':>5} {'p':>7} {'p_core':>7} {'M':>7} {'M_est':>7} {'m_est':>7}"
    print(header)
    print("-" * len(header))
    scaled_p = estimates.scaled_pagerank()
    scaled_core = estimates.scaled_core_pagerank()
    scaled_abs = estimates.scaled_absolute()
    for name in example.names_in_order():
        i = example.id_of(name)
        print(
            f"{name:>5} {scaled_p[i]:>7.3f} {scaled_core[i]:>7.3f} "
            f"{actual[i]:>7.3f} {scaled_abs[i]:>7.3f} "
            f"{estimates.relative[i]:>7.3f}"
        )

    # Algorithm 2 with the thresholds of the Section 3.6 walk-through.
    result = detect_spam(
        graph, example.good_core, tau=0.5, rho=1.5, gamma=None
    )
    candidates = sorted(graph.name_of(int(c)) for c in result.candidates)
    print(f"\nAlgorithm 2 (tau=0.5, rho=1.5) labels as spam: {candidates}")
    print(
        "x and s0 are true positives; g2 is the false positive the paper "
        "predicts,\nbecause the good core does not cover it."
    )


if __name__ == "__main__":
    main()
