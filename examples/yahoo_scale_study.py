#!/usr/bin/env python3
"""Full Section 4 reproduction on the synthetic Yahoo!-like host graph.

Builds the synthetic world (base web with the paper's degree-class
fractions, directory/gov/edu core families, the three anomaly
communities, and a spam layer of farms/alliances/expired domains),
then regenerates every evaluation artifact:

* data-set statistics (Section 4.1) and PageRank distribution (4.3);
* the sorted sample groups (Table 2) and their composition (Figure 3);
* precision curves with anomalies included/excluded (Figure 4);
* the absolute-mass distribution (Figure 6) and why absolute mass
  fails for detection (Section 4.6).

Run:  python examples/yahoo_scale_study.py [small|medium|large]
"""

import sys
import time

from repro.eval import (
    ReproductionContext,
    render_curves,
    render_stacked_bars,
    run_absolute_mass_ranking,
    run_figure3,
    run_figure4,
    run_figure6,
    run_graph_stats,
    run_pagerank_distribution,
    run_table2,
)
from repro.synth import WorldConfig


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "small"
    config = {
        "small": WorldConfig.small,
        "medium": WorldConfig.medium,
        "large": WorldConfig.large,
    }[scale]()

    print(f"Building the {scale} synthetic world and mass estimates ...")
    start = time.perf_counter()
    ctx = ReproductionContext.build(config)
    elapsed = time.perf_counter() - start
    print(
        f"  {ctx.graph.num_nodes:,} hosts, {ctx.graph.num_edges:,} edges, "
        f"|T| = {ctx.num_eligible():,} hosts with scaled PageRank >= "
        f"{ctx.rho:g}  ({elapsed:.1f}s)\n"
    )

    print(run_graph_stats(config).to_ascii(), "\n")
    print(run_pagerank_distribution(ctx).to_ascii(), "\n")
    print(run_table2(ctx).to_ascii(), "\n")

    fig3 = run_figure3(ctx)
    print(fig3.to_ascii())
    print(
        render_stacked_bars(
            [str(g) for g in fig3.column("group")],
            {
                "good": fig3.column("good"),
                "anomalous": fig3.column("anomalous"),
                "spam": fig3.column("spam"),
            },
            symbols={"good": ".", "anomalous": "+", "spam": "#"},
        ),
        "\n",
    )

    fig4 = run_figure4(ctx)
    print(fig4.to_ascii())
    print(
        render_curves(
            fig4.column("tau"),
            {
                "anomalous incl.": fig4.column("prec (anom. incl.)"),
                "anomalous excl.": fig4.column("prec (anom. excl.)"),
            },
            y_range=(0.0, 1.0),
        ),
        "\n",
    )

    print(run_figure6(ctx).to_ascii(), "\n")
    print(run_absolute_mass_ranking(ctx).to_ascii())


if __name__ == "__main__":
    main()
