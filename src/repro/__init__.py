"""repro — reproduction of *Link Spam Detection Based on Mass Estimation*
(Gyöngyi, Berkhin, Garcia-Molina, Pedersen; VLDB 2006).

The library implements the paper's full stack:

* :mod:`repro.graph` — the host-level web-graph substrate;
* :mod:`repro.core` — linear PageRank, PageRank contributions, spam-mass
  estimation and the mass-based detector (Algorithm 2);
* :mod:`repro.baselines` — TrustRank, the naive labeling schemes and
  related-work detectors used for comparison;
* :mod:`repro.synth` — the synthetic Yahoo!-like world (host graph, spam
  farms, good-core assembly) standing in for the proprietary data set;
* :mod:`repro.eval` — sampling, grouping, precision curves and the
  experiment harness behind every table and figure;
* :mod:`repro.analysis` — power-law fitting and mass distributions;
* :mod:`repro.datasets` — the paper's worked example graphs;
* :mod:`repro.runtime` — the resilient execution layer: solver
  checkpoint/resume, fallback chains with structured run reports,
  wall-time budgets and deterministic fault injection (see
  ``docs/runtime.md``).

Quickstart::

    from repro import detect_spam, figure2_graph

    example = figure2_graph()
    result = detect_spam(
        example.graph, example.good_core, tau=0.5, rho=1.5, gamma=None
    )
    print(sorted(result.candidates))
"""

from .core import (
    DEFAULT_DAMPING,
    DEFAULT_GAMMA,
    DetectionResult,
    MassDetector,
    MassEstimates,
    blacklist_mass,
    detect_spam,
    estimate_combined_mass,
    estimate_spam_mass,
    pagerank,
    scale_scores,
    true_relative_mass,
    true_spam_mass,
)
from .datasets import figure1_graph, figure2_graph
from .errors import (
    CheckpointError,
    ConvergenceError,
    GraphFormatError,
    GraphIOWarning,
    ReproError,
    TruncatedFileError,
)
from .graph import GraphBuilder, WebGraph

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "ConvergenceError",
    "CheckpointError",
    "GraphFormatError",
    "TruncatedFileError",
    "GraphIOWarning",
    "DEFAULT_DAMPING",
    "DEFAULT_GAMMA",
    "WebGraph",
    "GraphBuilder",
    "pagerank",
    "scale_scores",
    "estimate_spam_mass",
    "blacklist_mass",
    "estimate_combined_mass",
    "true_spam_mass",
    "true_relative_mass",
    "MassEstimates",
    "MassDetector",
    "DetectionResult",
    "detect_spam",
    "figure1_graph",
    "figure2_graph",
]
