"""Distribution analyses: power-law fitting and spam-mass histograms."""

from .farm_theory import (
    boosters_needed,
    hijacked_boost,
    optimal_farm_booster,
    optimal_farm_target,
    relay_farm_target,
    star_farm_target,
)
from .distribution import (
    MassDistribution,
    mass_distribution,
    negative_mass_decomposition,
)
from .powerlaw import (
    PowerLawFit,
    ccdf,
    fit_continuous_powerlaw,
    fit_discrete_powerlaw,
    log_binned_histogram,
)

__all__ = [
    "PowerLawFit",
    "fit_discrete_powerlaw",
    "fit_continuous_powerlaw",
    "ccdf",
    "log_binned_histogram",
    "MassDistribution",
    "mass_distribution",
    "negative_mass_decomposition",
    "star_farm_target",
    "optimal_farm_target",
    "optimal_farm_booster",
    "hijacked_boost",
    "relay_farm_target",
    "boosters_needed",
]
