"""Spam-mass value distributions (Section 4.6 / Figure 6).

Figure 6 of the paper plots the distribution of estimated absolute mass
on a log-log scale, split into a negative and a positive panel because a
single log axis cannot span both signs.  Two findings are encoded here
as first-class analyses:

* the **positive** side follows a power law (exponent −2.31 on the
  Yahoo! data) — :func:`mass_distribution` returns the log-binned
  histogram and the fitted exponent;
* the **negative** side is a superposition of two curves: the "natural"
  distribution of ordinary hosts and the biased distribution of
  good-core members (plus hosts heavily supported by the core), whose
  mass is pushed far negative by the γ-scaled jump —
  :func:`negative_mass_decomposition` splits the negative panel by core
  membership to exhibit the two components.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from .powerlaw import PowerLawFit, fit_continuous_powerlaw, log_binned_histogram

__all__ = [
    "MassDistribution",
    "mass_distribution",
    "negative_mass_decomposition",
]


class MassDistribution:
    """Summary of an absolute-mass distribution (Figure 6 analogue).

    Attributes
    ----------
    positive_bins, positive_fractions:
        Log-binned histogram of the positive mass values (fractions of
        *all* nodes, as in the paper's vertical axis).
    negative_bins, negative_fractions:
        Same for the magnitudes of the negative mass values.
    positive_fit:
        Power-law fit of the positive side (``None`` if too few points).
    min_mass, max_mass:
        The extreme mass values observed.
    frac_positive, frac_negative, frac_zero:
        Sign composition of the input.
    """

    __slots__ = (
        "positive_bins",
        "positive_fractions",
        "negative_bins",
        "negative_fractions",
        "positive_fit",
        "min_mass",
        "max_mass",
        "frac_positive",
        "frac_negative",
        "frac_zero",
    )

    def __init__(
        self,
        positive_bins: np.ndarray,
        positive_fractions: np.ndarray,
        negative_bins: np.ndarray,
        negative_fractions: np.ndarray,
        positive_fit: Optional[PowerLawFit],
        min_mass: float,
        max_mass: float,
        frac_positive: float,
        frac_negative: float,
        frac_zero: float,
    ) -> None:
        self.positive_bins = positive_bins
        self.positive_fractions = positive_fractions
        self.negative_bins = negative_bins
        self.negative_fractions = negative_fractions
        self.positive_fit = positive_fit
        self.min_mass = min_mass
        self.max_mass = max_mass
        self.frac_positive = frac_positive
        self.frac_negative = frac_negative
        self.frac_zero = frac_zero

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alpha = (
            f"{self.positive_fit.alpha:.2f}" if self.positive_fit else "n/a"
        )
        return (
            f"MassDistribution(range=[{self.min_mass:.1f}, "
            f"{self.max_mass:.1f}], alpha={alpha})"
        )


def mass_distribution(
    mass: np.ndarray,
    *,
    bins_per_decade: int = 5,
    fit_xmin: Optional[float] = None,
) -> MassDistribution:
    """Build the Figure 6 analysis for an absolute-mass vector.

    ``mass`` should already be scaled by ``n/(1 − c)`` if paper-style
    axis values are desired (the shape is scale-invariant either way).
    ``fit_xmin`` controls the power-law fit cutoff; by default the fit
    starts one decade above the smallest positive value, which skips
    the curved low-mass head the paper's plot also shows.
    """
    mass = np.asarray(mass, dtype=np.float64)
    if mass.size == 0:
        raise ValueError("mass vector must not be empty")
    positive = mass[mass > 0]
    negative = -mass[mass < 0]
    pos_bins, pos_frac = log_binned_histogram(mass, bins_per_decade)
    # histogram of negative magnitudes, fractions relative to all nodes
    if negative.size:
        neg_bins, neg_frac = log_binned_histogram(negative, bins_per_decade)
        neg_frac = neg_frac * (negative.size / mass.size)
    else:
        neg_bins, neg_frac = np.empty(0), np.empty(0)
    fit: Optional[PowerLawFit] = None
    if positive.size >= 10:
        if fit_xmin is None:
            fit_xmin = float(positive.min()) * 10.0
            if fit_xmin >= float(positive.max()):
                fit_xmin = float(positive.min())
        try:
            fit = fit_continuous_powerlaw(positive, xmin=fit_xmin)
        except ValueError:
            fit = None
    return MassDistribution(
        pos_bins,
        pos_frac,
        neg_bins,
        neg_frac,
        fit,
        float(mass.min()),
        float(mass.max()),
        float((mass > 0).sum() / mass.size),
        float((mass < 0).sum() / mass.size),
        float((mass == 0).sum() / mass.size),
    )


def negative_mass_decomposition(
    mass: np.ndarray,
    core: Iterable[int],
    *,
    bins_per_decade: int = 5,
) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    """Split the negative-mass panel into its two superimposed curves.

    Returns ``((bins, fractions) for non-core nodes,
    (bins, fractions) for core nodes)`` over the *magnitudes* of
    negative mass, fractions relative to all nodes.  The paper's reading:
    the right (small-magnitude) curve is the natural distribution of
    ordinary hosts; the left (large-magnitude) curve is the biased
    distribution of ``Ṽ⁺`` members and their heavy beneficiaries.
    """
    mass = np.asarray(mass, dtype=np.float64)
    core_mask = np.zeros(mass.size, dtype=bool)
    core_idx = np.asarray(list(core), dtype=np.int64)
    if core_idx.size:
        core_mask[core_idx] = True
    total = mass.size

    def panel(selector: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        magnitudes = -mass[selector & (mass < 0)]
        if magnitudes.size == 0:
            return np.empty(0), np.empty(0)
        bins, frac = log_binned_histogram(magnitudes, bins_per_decade)
        # log_binned_histogram normalizes by its own input size; rescale
        # so fractions are relative to the full node population
        return bins, frac * (magnitudes.size / total)

    return panel(~core_mask), panel(core_mask)
