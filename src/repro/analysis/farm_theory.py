"""Closed-form PageRank of spam-farm structures.

Section 2.3 of the paper describes the spam-farm model and cites the
authors' companion work on link-spam alliances for the quantitative
analysis.  This module derives the closed forms for the structures the
synthetic generator builds, giving the test suite analytic oracles far
beyond the Figure 1/2 examples:

* **star farm** (boosters → target, no links back): the target simply
  collects ``k`` leaf contributions,

  .. math:: \\hat p_t = 1 + kc  \\qquad\\text{(scaled by } n/(1-c)\\text{)};

* **optimal farm** (boosters → target → boosters, the rank-recycling
  structure shown optimal in the alliances analysis): target and
  boosters form a closed loop, solving the 2×2 system

  .. math::

     \\hat p_t = \\frac{1 + kc + kc^2}{1 - c^2}, \\qquad
     \\hat p_b = 1 + \\frac{c\\,\\hat p_t}{k};

* **hijacked links**: each stray link from a good host ``y`` with
  out-degree ``d_y`` adds ``c\\,\\hat p_y/d_y`` to the target (by
  PageRank linearity, on top of the farm's own closed form — exact
  when the farm does not feed back into ``y``);

* **two-tier (relay) farm**: ``f`` feeders split evenly over ``r``
  relays which alone link the target.

All formulas assume the farm is *closed* (no inlinks from outside
except those modelled) and expressed in the paper's scaled units where
a node with no inlinks scores exactly 1.
"""

from __future__ import annotations


__all__ = [
    "star_farm_target",
    "optimal_farm_target",
    "optimal_farm_booster",
    "hijacked_boost",
    "relay_farm_target",
    "boosters_needed",
]


def _check(c: float, k: float) -> None:
    if not (0.0 < c < 1.0):
        raise ValueError(f"damping factor must be in (0, 1), got {c}")
    if k < 1:
        raise ValueError(f"farm needs at least one booster, got {k}")


def star_farm_target(k: int, c: float = 0.85) -> float:
    """Scaled PageRank of a star-farm target (no link back).

    Each of the ``k`` boosters is a leaf (scaled score 1) with a single
    outlink, contributing ``c`` to the target.
    """
    _check(c, k)
    return 1.0 + k * c


def optimal_farm_target(k: int, c: float = 0.85) -> float:
    """Scaled PageRank of a rank-recycling farm target.

    Boosters link only the target (out-degree 1 each); the target
    links all ``k`` boosters back (out-degree ``k``), so no rank
    leaks — the "optimal farm" of the alliances analysis.  The
    coupled equations ``p_t = 1 + k·c·p_b`` and
    ``p_b = 1 + c·p_t/k`` give ``p_t = 1 + kc + c²·p_t``, hence

    .. math:: p_t = \\frac{1 + kc}{1 - c^2}.
    """
    _check(c, k)
    return (1.0 + k * c) / (1.0 - c * c)


def optimal_farm_booster(k: int, c: float = 0.85) -> float:
    """Scaled PageRank of one booster in a rank-recycling farm:
    ``p_b = 1 + c·p_t/k``."""
    _check(c, k)
    return 1.0 + c * optimal_farm_target(k, c) / k


def hijacked_boost(
    source_score: float, source_outdegree: int, c: float = 0.85
) -> float:
    """Scaled PageRank added to a target by one stray link.

    ``source_score`` is the hijacked host's scaled PageRank *including*
    the new link in its out-degree count (adding the link dilutes the
    host's other contributions).  Exact by linearity when the target
    does not link back into the source's neighbourhood.
    """
    if source_outdegree < 1:
        raise ValueError("hijacked source must have at least the new link")
    if source_score <= 0:
        raise ValueError("source score must be positive")
    _check(c, 1)
    return c * source_score / source_outdegree


def relay_farm_target(
    feeders: int, relays: int, c: float = 0.85
) -> float:
    """Scaled PageRank of a two-tier farm target (no links back).

    ``feeders`` leaf boosters each link exactly one of ``relays`` relay
    nodes (assumed evenly split), and each relay has a single outlink
    to the target:

    ``p_relay = 1 + (feeders/relays)·c``,
    ``p_t = 1 + relays·c·p_relay = 1 + relays·c + feeders·c²``.

    Note the full booster count ``feeders + relays`` yields *less*
    target PageRank than the flat star farm — the camouflage of a
    majority-good immediate in-neighbourhood costs a factor ``c`` on
    the feeders.
    """
    if relays < 1:
        raise ValueError("need at least one relay")
    if feeders < 0:
        raise ValueError("feeders must be non-negative")
    _check(c, 1)
    return 1.0 + relays * c + feeders * c * c


def boosters_needed(
    target_score: float, c: float = 0.85, *, recycling: bool = True
) -> int:
    """Minimum boosters for a farm target to reach ``target_score``
    (scaled), the spammer's planning problem.

    With ``recycling`` (the optimal farm): invert
    ``p_t = (1 + kc)/(1 − c²)`` → ``k = (p_t(1 − c²) − 1)/c``;
    without: invert ``p_t = 1 + kc``.
    """
    if target_score <= 1.0:
        return 0
    _check(c, 1)
    if recycling:
        k = (target_score * (1.0 - c * c) - 1.0) / c
    else:
        k = (target_score - 1.0) / c
    import math

    return max(int(math.ceil(k - 1e-12)), 0)
