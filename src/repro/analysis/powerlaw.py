"""Power-law fitting utilities.

Power laws thread through the whole paper: PageRank scores follow one
(Section 4.3), positive absolute spam mass follows one with exponent
≈ −2.31 (Section 4.6 / Figure 6), and two of the related-work baselines
(Fetterly et al. degree outliers, Benczúr et al. SpamRank) are built on
detecting *deviations* from power-law behaviour.

We implement the standard maximum-likelihood estimators (Clauset,
Shalizi & Newman):

* discrete data (degrees): ``α̂ = 1 + n · [Σ ln(xᵢ / (x_min − ½))]⁻¹``
* continuous data (scores, mass): ``α̂ = 1 + n · [Σ ln(xᵢ / x_min)]⁻¹``

plus CCDF extraction and logarithmic binning for plotting/benching.
Fitted exponents are reported in the ``p(x) ∝ x^(−α)`` convention, so
the paper's "-2.31" corresponds to ``α = 2.31`` here.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "PowerLawFit",
    "fit_discrete_powerlaw",
    "fit_continuous_powerlaw",
    "ccdf",
    "log_binned_histogram",
]


class PowerLawFit:
    """Result of a power-law fit ``p(x) ∝ x^(−α)`` for ``x ≥ x_min``.

    Attributes
    ----------
    alpha:
        The fitted exponent ``α > 1``.
    xmin:
        The lower cutoff the fit applies from.
    num_tail:
        The number of observations at or above ``xmin``.
    discrete:
        Whether the discrete or continuous estimator produced the fit.
    """

    __slots__ = ("alpha", "xmin", "num_tail", "discrete")

    def __init__(
        self, alpha: float, xmin: float, num_tail: int, discrete: bool
    ) -> None:
        self.alpha = alpha
        self.xmin = xmin
        self.num_tail = num_tail
        self.discrete = discrete

    def pdf(self, x: np.ndarray) -> np.ndarray:
        """(Approximately normalized) density at ``x ≥ xmin``.

        Uses the continuous normalization
        ``(α − 1)/x_min · (x/x_min)^(−α)``, which is the standard
        large-``x_min`` approximation in the discrete case too.
        """
        x = np.asarray(x, dtype=np.float64)
        return (
            (self.alpha - 1.0)
            / self.xmin
            * np.power(x / self.xmin, -self.alpha)
        )

    def expected_counts(self, values: np.ndarray, total: int) -> np.ndarray:
        """Expected histogram counts at integer ``values`` for a sample
        of ``total`` tail observations (used by the degree-outlier
        baseline to spot over-represented degree values)."""
        return total * self.pdf(values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "discrete" if self.discrete else "continuous"
        return (
            f"PowerLawFit(alpha={self.alpha:.3f}, xmin={self.xmin}, "
            f"n={self.num_tail}, {kind})"
        )


def _tail(values: np.ndarray, xmin: float) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    tail = values[values >= xmin]
    if tail.size < 2:
        raise ValueError(
            f"need at least 2 observations >= xmin={xmin}, got {tail.size}"
        )
    return tail


def fit_discrete_powerlaw(values: np.ndarray, xmin: int = 1) -> PowerLawFit:
    """Discrete MLE for integer-valued data (degrees).

    ``α̂ = 1 + n / Σ ln(xᵢ / (x_min − 0.5))``.
    """
    if xmin < 1:
        raise ValueError("xmin must be at least 1 for discrete data")
    tail = _tail(values, xmin)
    denom = float(np.log(tail / (xmin - 0.5)).sum())
    if denom <= 0:
        raise ValueError("degenerate sample: all values equal xmin - 0.5?")
    alpha = 1.0 + tail.size / denom
    return PowerLawFit(alpha, float(xmin), tail.size, discrete=True)


def fit_continuous_powerlaw(
    values: np.ndarray, xmin: Optional[float] = None
) -> PowerLawFit:
    """Continuous MLE for positive real-valued data (scores, mass).

    ``α̂ = 1 + n / Σ ln(xᵢ / x_min)``.  When ``xmin`` is omitted the
    smallest positive observation is used.
    """
    values = np.asarray(values, dtype=np.float64)
    positive = values[values > 0]
    if positive.size < 2:
        raise ValueError("need at least 2 positive observations")
    if xmin is None:
        xmin = float(positive.min())
    if xmin <= 0:
        raise ValueError("xmin must be positive for continuous data")
    tail = _tail(positive, xmin)
    denom = float(np.log(tail / xmin).sum())
    if denom <= 0:
        raise ValueError("degenerate sample: all tail values equal xmin")
    alpha = 1.0 + tail.size / denom
    return PowerLawFit(alpha, xmin, tail.size, discrete=False)


def ccdf(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical complementary CDF ``P(X ≥ x)`` over the sorted support.

    Returns ``(xs, probabilities)``; handy for log-log inspection of
    heavy tails without binning artifacts.
    """
    values = np.sort(np.asarray(values, dtype=np.float64))
    if values.size == 0:
        return np.empty(0), np.empty(0)
    xs, first_index = np.unique(values, return_index=True)
    prob = 1.0 - first_index / values.size
    return xs, prob


def log_binned_histogram(
    values: np.ndarray,
    bins_per_decade: int = 5,
    *,
    density: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram positive values into logarithmically spaced bins.

    Returns ``(bin_centers, fractions)`` where fractions sum to the
    fraction of inputs that were positive; with ``density=True`` each
    fraction is divided by its bin width.  Used for the Figure 6 style
    log-log mass plots, where linear bins would starve the tail.
    """
    if bins_per_decade < 1:
        raise ValueError("bins_per_decade must be at least 1")
    values = np.asarray(values, dtype=np.float64)
    positive = values[values > 0]
    if positive.size == 0:
        return np.empty(0), np.empty(0)
    lo = np.floor(np.log10(positive.min()))
    hi = np.ceil(np.log10(positive.max())) + 1e-9
    num_bins = max(int(np.ceil((hi - lo) * bins_per_decade)), 1)
    edges = np.logspace(lo, hi, num_bins + 1)
    counts, _ = np.histogram(positive, bins=edges)
    fractions = counts / values.size
    if density:
        widths = np.diff(edges)
        fractions = fractions / widths
    centers = np.sqrt(edges[:-1] * edges[1:])
    keep = counts > 0
    return centers[keep], fractions[keep]
