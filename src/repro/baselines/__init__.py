"""Baseline spam-detection methods the paper compares against or builds
on: TrustRank, the naive labeling schemes of Section 3.1, and the
related-work detectors of Section 5."""

from .degree_outlier import DegreeOutlierDetector, degree_outlier_mask
from .naive import scheme1_label, scheme1_mask, scheme2_label, scheme2_mask
from .spamrank import SupporterDeviationDetector, supporter_deviation_scores
from .trustrank import (
    TrustRankResult,
    inverse_pagerank,
    select_seed,
    trustrank,
    trustrank_detector,
)

__all__ = [
    "trustrank",
    "TrustRankResult",
    "inverse_pagerank",
    "select_seed",
    "trustrank_detector",
    "scheme1_label",
    "scheme2_label",
    "scheme1_mask",
    "scheme2_mask",
    "DegreeOutlierDetector",
    "degree_outlier_mask",
    "SupporterDeviationDetector",
    "supporter_deviation_scores",
]
