"""Degree-distribution outlier detection (Fetterly, Manasse, Najork —
"Spam, damn spam, and statistics", WebDB 2004).

Related-work baseline (Section 5 of the paper): most web nodes have in-
and out-degrees following a power law, but machine-generated spam farms
often produce *substantially more nodes with the exact same degree* than
the distribution predicts.  The detector:

1. builds the degree histogram (in-, out-, or both);
2. fits a discrete power law to it;
3. flags every degree value whose observed count exceeds the predicted
   count by a factor ``overrepresentation`` (and a minimum absolute
   count, to avoid flagging noise in the sparse tail);
4. labels all nodes carrying a flagged degree as spam candidates.

As the paper notes, this catches large auto-generated farms with
"unnatural" link patterns but misses sophisticated spam that mimics
organic structure — the comparison bench shows exactly that gap against
mass-based detection.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..analysis.powerlaw import fit_discrete_powerlaw
from ..graph.webgraph import WebGraph

__all__ = ["DegreeOutlierDetector", "degree_outlier_mask"]

DegreeKind = Literal["in", "out", "both"]


class DegreeOutlierDetector:
    """Flags nodes whose exact degree value is over-represented.

    Parameters
    ----------
    kind:
        Which degree to analyse: ``"in"``, ``"out"`` or ``"both"``
        (a node is flagged if either of its degrees is anomalous).
    overrepresentation:
        Flag a degree value when ``observed > factor · predicted``.
    min_count:
        Never flag degree values carried by fewer nodes than this (the
        power-law tail is noisy).
    min_degree:
        Ignore degrees below this when fitting and flagging (degree-0
        and degree-1 nodes dominate and carry no farm signal).
    """

    def __init__(
        self,
        kind: DegreeKind = "both",
        *,
        overrepresentation: float = 5.0,
        min_count: int = 10,
        min_degree: int = 2,
    ) -> None:
        if kind not in ("in", "out", "both"):
            raise ValueError(f"unknown degree kind {kind!r}")
        if overrepresentation <= 1.0:
            raise ValueError("overrepresentation factor must exceed 1")
        if min_count < 1:
            raise ValueError("min_count must be at least 1")
        self.kind = kind
        self.overrepresentation = overrepresentation
        self.min_count = min_count
        self.min_degree = min_degree

    def flag_degrees(self, degrees: np.ndarray) -> np.ndarray:
        """Return the set of anomalous degree values for one vector."""
        degrees = np.asarray(degrees)
        usable = degrees[degrees >= self.min_degree]
        if usable.size < 3 or len(np.unique(usable)) < 3:
            return np.empty(0, dtype=np.int64)
        fit = fit_discrete_powerlaw(usable, xmin=self.min_degree)
        values, counts = np.unique(usable, return_counts=True)
        predicted = fit.expected_counts(values, usable.size)
        flagged = values[
            (counts > self.overrepresentation * predicted)
            & (counts >= self.min_count)
        ]
        return flagged.astype(np.int64)

    def detect(self, graph: WebGraph) -> np.ndarray:
        """Boolean spam-candidate mask over all nodes."""
        mask = np.zeros(graph.num_nodes, dtype=bool)
        if self.kind in ("in", "both"):
            flagged = set(self.flag_degrees(graph.in_degree()).tolist())
            if flagged:
                in_deg = graph.in_degree()
                mask |= np.isin(in_deg, list(flagged))
        if self.kind in ("out", "both"):
            flagged = set(self.flag_degrees(graph.out_degree()).tolist())
            if flagged:
                out_deg = graph.out_degree()
                mask |= np.isin(out_deg, list(flagged))
        return mask


def degree_outlier_mask(
    graph: WebGraph,
    kind: DegreeKind = "both",
    *,
    overrepresentation: float = 5.0,
    min_count: int = 10,
    min_degree: int = 2,
) -> np.ndarray:
    """One-call convenience wrapper around :class:`DegreeOutlierDetector`."""
    detector = DegreeOutlierDetector(
        kind,
        overrepresentation=overrepresentation,
        min_count=min_count,
        min_degree=min_degree,
    )
    return detector.detect(graph)
