"""The two naive labeling schemes of Section 3.1.

Both schemes label a node ``x`` from its *immediate in-neighbours* only,
assuming their good/spam labels are known:

* **Scheme 1** (:func:`scheme1_label`): majority vote over in-links —
  ``x`` is spam iff more than half of its in-links come from spam nodes.
  Fails on Figure 1, where a single spam link carries more PageRank
  than the two good ones combined.
* **Scheme 2** (:func:`scheme2_label`): weigh each in-link by its
  PageRank contribution (the change in ``p_x`` caused by removing the
  link) and compare the total spam-link weight to the good-link weight.
  Fixes Figure 1 but still fails on Figure 2, where spam reaches ``x``
  *through* good nodes.

These exist to make the paper's motivating argument executable — the
bench ``fig1_naive_schemes`` demonstrates both failure modes — and to
serve as weak baselines in the detector comparison.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

import numpy as np

from ..core.contribution import (
    link_contribution_exact,
    link_contribution_first_order,
)
from ..core.pagerank import DEFAULT_DAMPING, pagerank
from ..graph.webgraph import WebGraph

__all__ = [
    "scheme1_label",
    "scheme2_label",
    "scheme1_mask",
    "scheme2_mask",
]

GOOD = "good"
SPAM = "spam"


def _spam_set(spam_nodes: Iterable[int]) -> Set[int]:
    return {int(s) for s in spam_nodes}


def scheme1_label(
    graph: WebGraph, node: int, spam_nodes: Iterable[int]
) -> str:
    """First naive scheme: in-link majority vote.

    Returns ``"spam"`` when the majority of ``node``'s in-links come
    from known spam nodes, ``"good"`` otherwise (ties and nodes without
    inlinks count as good — the scheme has no evidence against them).
    """
    spam = _spam_set(spam_nodes)
    in_neighbors = graph.in_neighbors(node)
    if len(in_neighbors) == 0:
        return GOOD
    spam_links = sum(1 for y in in_neighbors if int(y) in spam)
    return SPAM if 2 * spam_links > len(in_neighbors) else GOOD


def scheme2_label(
    graph: WebGraph,
    node: int,
    spam_nodes: Iterable[int],
    *,
    damping: float = DEFAULT_DAMPING,
    exact: bool = True,
    scores: Optional[np.ndarray] = None,
    tol: float = 1e-12,
) -> str:
    """Second naive scheme: PageRank-contribution-weighted vote.

    Each in-link's weight is its PageRank contribution to ``node`` —
    exactly, by removing the link and recomputing PageRank
    (``exact=True``, one solve per in-link), or by the first-order
    approximation ``c·p_y/out(y)`` (``exact=False``; supply ``scores``
    to reuse a precomputed PageRank vector).

    Returns ``"spam"`` when spam links contribute strictly more than
    good links.
    """
    spam = _spam_set(spam_nodes)
    in_neighbors = graph.in_neighbors(node)
    if len(in_neighbors) == 0:
        return GOOD
    if not exact and scores is None:
        scores = pagerank(graph, damping=damping, tol=tol).scores
    spam_weight = 0.0
    good_weight = 0.0
    for y in in_neighbors:
        y = int(y)
        if exact:
            weight = link_contribution_exact(
                graph, y, node, damping=damping, tol=tol
            )
        else:
            weight = link_contribution_first_order(
                graph, y, node, scores, damping
            )
        if y in spam:
            spam_weight += weight
        else:
            good_weight += weight
    return SPAM if spam_weight > good_weight else GOOD


def scheme1_mask(
    graph: WebGraph, spam_nodes: Iterable[int]
) -> np.ndarray:
    """Scheme-1 labels for every node, as a boolean spam mask."""
    spam = _spam_set(spam_nodes)
    mask = np.zeros(graph.num_nodes, dtype=bool)
    for x in range(graph.num_nodes):
        in_neighbors = graph.in_neighbors(x)
        if len(in_neighbors) == 0:
            continue
        spam_links = sum(1 for y in in_neighbors if int(y) in spam)
        mask[x] = 2 * spam_links > len(in_neighbors)
    return mask


def scheme2_mask(
    graph: WebGraph,
    spam_nodes: Iterable[int],
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
) -> np.ndarray:
    """Scheme-2 labels for every node (first-order contributions —
    the exact removal-based variant is O(|E|) PageRank solves and is
    only exposed per node via :func:`scheme2_label`)."""
    spam = _spam_set(spam_nodes)
    scores = pagerank(graph, damping=damping, tol=tol).scores
    mask = np.zeros(graph.num_nodes, dtype=bool)
    for x in range(graph.num_nodes):
        in_neighbors = graph.in_neighbors(x)
        if len(in_neighbors) == 0:
            continue
        spam_weight = 0.0
        good_weight = 0.0
        for y in in_neighbors:
            y = int(y)
            weight = damping * scores[y] / graph.out_degree(y)
            if y in spam:
                spam_weight += weight
            else:
                good_weight += weight
        mask[x] = spam_weight > good_weight
    return mask
