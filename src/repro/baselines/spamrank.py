"""SpamRank-style baseline (Benczúr, Csalogány, Sarlós, Uher — AIRWeb
2005), as characterised in Section 5 of the paper.

The idea: for each node ``x``, examine the PageRank scores of the nodes
*pointing to* ``x``.  Over the honest web these supporter scores follow
the global power law; a spam farm instead supplies a target with many
supporters of nearly identical (low) PageRank, a major deviation from
the power-law shape.  Nodes whose in-neighbour PageRank histogram
deviates strongly are penalized.

This implementation follows the spirit of SpamRank's first phase:

1. compute PageRank;
2. for each node with at least ``min_supporters`` in-neighbours, build
   the histogram of supporter scores over logarithmic buckets;
3. score the deviation between the node's supporter histogram and the
   expectation under the global supporter distribution (the same
   buckets filled by all edges' sources), using total-variation
   distance plus a concentration penalty for single-bucket pile-ups;
4. flag nodes whose deviation exceeds ``threshold``.

As the paper notes for this family of methods, it detects large
regular/auto-generated farms but is blind to farms that mimic organic
supporter diversity; and reputable-but-clubby communities can false
positive.  The baseline bench demonstrates both behaviours.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.pagerank import DEFAULT_DAMPING, pagerank
from ..graph.webgraph import WebGraph

__all__ = ["SupporterDeviationDetector", "supporter_deviation_scores"]


def _log_bucket(scores: np.ndarray, num_buckets: int) -> np.ndarray:
    """Assign each positive score a logarithmic bucket id in
    ``[0, num_buckets)``; non-positive scores go to bucket 0."""
    floor = scores[scores > 0].min() if np.any(scores > 0) else 1.0
    safe = np.maximum(scores, floor)
    logs = np.log10(safe / floor)
    span = max(float(logs.max()), 1e-12)
    buckets = np.minimum(
        (logs / span * num_buckets).astype(np.int64), num_buckets - 1
    )
    return buckets


def supporter_deviation_scores(
    graph: WebGraph,
    scores: Optional[np.ndarray] = None,
    *,
    num_buckets: int = 12,
    min_supporters: int = 8,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
) -> np.ndarray:
    """Per-node deviation of the in-neighbour PageRank distribution.

    Returns a float vector in ``[0, 2]``: total-variation distance from
    the global supporter distribution plus a ``[0, 1]`` concentration
    penalty (fraction of supporters in the node's single fullest bucket
    beyond the global baseline).  Nodes with fewer than
    ``min_supporters`` in-neighbours score 0 — there is not enough
    evidence to judge them, mirroring the paper's argument for its own
    PageRank threshold ``ρ``.
    """
    if num_buckets < 2:
        raise ValueError("num_buckets must be at least 2")
    if scores is None:
        scores = pagerank(graph, damping=damping, tol=tol).scores
    if scores.shape != (graph.num_nodes,):
        raise ValueError("scores vector has the wrong length")
    buckets = _log_bucket(scores, num_buckets)
    # global supporter distribution: bucket of the source of every edge
    t_graph = graph.transpose()
    global_counts = np.zeros(num_buckets, dtype=np.float64)
    for x in range(graph.num_nodes):
        for y in t_graph.out_neighbors(x):
            global_counts[buckets[y]] += 1.0
    total_edges = global_counts.sum()
    if total_edges == 0:
        return np.zeros(graph.num_nodes, dtype=np.float64)
    global_dist = global_counts / total_edges

    deviation = np.zeros(graph.num_nodes, dtype=np.float64)
    for x in range(graph.num_nodes):
        supporters = t_graph.out_neighbors(x)
        if len(supporters) < min_supporters:
            continue
        local_counts = np.bincount(
            buckets[supporters], minlength=num_buckets
        ).astype(np.float64)
        local_dist = local_counts / local_counts.sum()
        tv_distance = 0.5 * float(np.abs(local_dist - global_dist).sum())
        concentration = float(local_dist.max() - global_dist.max())
        deviation[x] = tv_distance + max(concentration, 0.0)
    return deviation


class SupporterDeviationDetector:
    """Threshold-based detector over supporter-distribution deviation.

    Parameters
    ----------
    threshold:
        Flag nodes with deviation above this value (range roughly
        ``[0, 2]``; ~0.8+ indicates near-total concentration).
    num_buckets, min_supporters:
        See :func:`supporter_deviation_scores`.
    """

    def __init__(
        self,
        threshold: float = 0.85,
        *,
        num_buckets: int = 12,
        min_supporters: int = 8,
    ) -> None:
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.num_buckets = num_buckets
        self.min_supporters = min_supporters

    def detect(
        self,
        graph: WebGraph,
        scores: Optional[np.ndarray] = None,
        *,
        damping: float = DEFAULT_DAMPING,
    ) -> np.ndarray:
        """Boolean spam-candidate mask over all nodes."""
        deviation = supporter_deviation_scores(
            graph,
            scores,
            num_buckets=self.num_buckets,
            min_supporters=self.min_supporters,
            damping=damping,
        )
        return deviation > self.threshold
