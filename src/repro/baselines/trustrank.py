"""TrustRank (Gyöngyi, Garcia-Molina, Pedersen; VLDB 2004).

The paper's own prior work, reimplemented here because Section 3.4 and
Section 5 position spam mass *against* it: TrustRank biases the random
jump to a **small, highly selective seed** of superior-quality good
pages and *demotes* spam (good pages float up), whereas mass estimation
uses a core that is orders of magnitude larger and *detects* spam.

The full TrustRank pipeline:

1. **Seed selection** by inverse PageRank — PageRank on the transposed
   graph ranks nodes by how many nodes they (transitively) reach, i.e.
   by how useful their trust would be;
2. an **oracle** (here: ground-truth labels) inspects the top-``L``
   candidates and keeps the good ones as the seed ``S⁺``;
3. **trust propagation**: ``t = PR(v^{S⁺})`` with the jump uniform over
   the seed and normalized to 1 (the classical TrustRank uses a
   normalized distribution, unlike the deliberately unnormalized core
   vector of mass estimation).

For the baseline comparison we also provide a *detection* adaptation
(TrustRank itself only demotes): flag high-PageRank nodes whose
trust-to-PageRank ratio falls below a threshold.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from ..core.pagerank import DEFAULT_DAMPING, pagerank, scale_scores
from ..graph.webgraph import WebGraph

__all__ = [
    "inverse_pagerank",
    "select_seed",
    "trustrank",
    "TrustRankResult",
    "trustrank_detector",
]


class TrustRankResult:
    """Outcome of a TrustRank computation.

    Attributes
    ----------
    trust:
        The trust score vector ``t`` (unscaled, sums to ≤ 1).
    seed:
        The node ids of the good seed ``S⁺`` actually used.
    inspected:
        The ids the oracle inspected (top-``L`` by inverse PageRank).
    """

    __slots__ = ("trust", "seed", "inspected")

    def __init__(
        self, trust: np.ndarray, seed: np.ndarray, inspected: np.ndarray
    ) -> None:
        self.trust = trust
        self.seed = seed
        self.inspected = inspected

    def ranked(self) -> np.ndarray:
        """Node ids sorted by decreasing trust."""
        return np.argsort(-self.trust, kind="stable")


def inverse_pagerank(
    graph: WebGraph,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    method: str = "jacobi",
) -> np.ndarray:
    """PageRank of the transposed graph (seed-desirability score).

    High inverse PageRank means trust placed on the node would flow to
    many other nodes quickly.
    """
    return pagerank(
        graph.transpose(), damping=damping, tol=tol, method=method
    ).scores


def select_seed(
    graph: WebGraph,
    oracle: Callable[[int], bool],
    seed_budget: int,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
) -> TrustRankResult:
    """Run seed selection only (steps 1–2); trust vector is left empty.

    ``oracle(node) -> bool`` answers "is this node good?" — in the
    synthetic worlds this is ground truth; in the paper it was a human
    editor.  ``seed_budget`` is ``L``, the number of oracle invocations.
    """
    if seed_budget <= 0:
        raise ValueError("seed_budget must be positive")
    desirability = inverse_pagerank(graph, damping=damping, tol=tol)
    order = np.argsort(-desirability, kind="stable")
    inspected = order[:seed_budget]
    seed = np.asarray(
        [node for node in inspected if oracle(int(node))], dtype=np.int64
    )
    return TrustRankResult(
        np.zeros(graph.num_nodes), seed, np.asarray(inspected, dtype=np.int64)
    )


def trustrank(
    graph: WebGraph,
    oracle: Callable[[int], bool],
    seed_budget: int = 200,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    method: str = "jacobi",
    seed: Optional[Sequence[int]] = None,
) -> TrustRankResult:
    """Full TrustRank: seed selection + trust propagation.

    Pass an explicit ``seed`` to skip selection (then ``oracle`` and
    ``seed_budget`` are ignored).
    """
    if seed is not None:
        seed_arr = np.unique(np.asarray(list(seed), dtype=np.int64))
        inspected = seed_arr
    else:
        selection = select_seed(
            graph, oracle, seed_budget, damping=damping, tol=tol
        )
        seed_arr = selection.seed
        inspected = selection.inspected
    if len(seed_arr) == 0:
        raise ValueError("TrustRank seed is empty (oracle rejected all)")
    n = graph.num_nodes
    v = np.zeros(n, dtype=np.float64)
    v[seed_arr] = 1.0 / len(seed_arr)  # normalized, unlike the mass core
    trust = pagerank(graph, v, damping=damping, tol=tol, method=method).scores
    return TrustRankResult(trust, seed_arr, inspected)


def trustrank_detector(
    graph: WebGraph,
    trust: np.ndarray,
    scores: np.ndarray,
    *,
    rho: float = 10.0,
    trust_ratio_threshold: float = 0.02,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Detection adaptation of TrustRank for the baseline comparison.

    Flags nodes with scaled PageRank ≥ ``rho`` whose trust-to-PageRank
    ratio is below ``trust_ratio_threshold`` — i.e. high-ranking nodes
    the seed's trust conspicuously fails to reach.  (TrustRank proper
    performs demotion, not detection; the paper stresses this gap.
    This adaptation is the natural detection read-out, included so the
    methods can be compared on equal footing.)

    Returns a boolean candidate mask.
    """
    if trust.shape != scores.shape:
        raise ValueError("trust and scores must have identical shapes")
    scaled = scale_scores(scores, graph.num_nodes, damping)
    eligible = scaled >= rho
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = trust / scores
    ratio[~np.isfinite(ratio)] = 0.0
    return eligible & (ratio < trust_ratio_threshold)
