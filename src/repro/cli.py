"""Command-line interface: the spam-mass pipeline as shell commands.

The paper's deployment story is a pipeline a search engine runs over
its index: build/refresh the host graph, assemble a good core, compute
the two PageRank vectors, threshold the relative mass, review the
candidates.  ``repro-spam`` exposes exactly those steps over the
on-disk formats of :mod:`repro.graph.io`:

``repro-spam generate``
    Build a synthetic world, write it as a graph bundle (edge list or
    ``.npz``, host names, ground-truth labels, metadata) plus the
    assembled good core as a host list.
``repro-spam stats``
    Print the Section 4.1-style statistics of a stored graph.
``repro-spam estimate``
    Compute ``p``, ``p′`` and the mass estimates for a stored graph
    and core; write them as score files.
``repro-spam detect``
    Apply Algorithm 2's thresholds to stored scores and list the spam
    candidates (with ground-truth annotation when labels are present).
``repro-spam stream``
    Synthesize timestamped crawl-event streams (with scripted temporal
    attack worlds) and feed them through the windowed, WAL-backed
    ingestor with dead-letter quarantine; inspect the DLQ.
``repro-spam audit-core``
    Re-estimate mass for a stored graph and core, then audit the core
    for Section 4.4-style anomalies (spam-labeled members, members the
    estimates refuse to support); exit 5 when the core is dirty.
``repro-spam reproduce``
    Re-run one of the paper's experiments (by DESIGN.md id) and print
    the reproduced table.

Every command is deterministic given ``--seed``.

Failure behavior
----------------
User-facing errors print a one-line message to stderr and exit with a
distinct code (see the ``EXIT_*`` constants): 3 for missing/corrupt
input files, 4 for solver non-convergence, 5 for a dirty good core,
130 for interruption, 1 for anything unexpected.  ``--traceback`` opts back into the raw Python
traceback for debugging.  Long solves accept ``--checkpoint-dir`` /
``--resume`` (kill-and-resume), ``--time-budget`` (best-effort
degradation) and ``--lenient`` (skip-and-warn on malformed input);
see ``docs/runtime.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from . import __version__
from .core import estimate_spam_mass, scale_scores
from .errors import (
    CheckpointError,
    ConvergenceError,
    DeltaError,
    GraphFormatError,
    GraphIOError,
    ReproError,
)
from .graph import (
    ShardedWebGraph,
    partition_graph,
    read_graph_bundle,
    read_host_list,
    read_scores,
    verify_store,
    write_graph_bundle,
    write_host_list,
    write_scores,
)
from .perf.engine import PRECISIONS
from .synth import WorldConfig, build_world, default_good_core

__all__ = ["main", "build_parser", "run"]

#: Distinct exit codes for the failure classes a pipeline operator
#: scripts against (argparse itself uses 2 for usage errors).
EXIT_OK = 0
EXIT_ERROR = 1
EXIT_USAGE = 2
EXIT_DATA = 3
EXIT_CONVERGENCE = 4
EXIT_AUDIT = 5
EXIT_INTERRUPTED = 130

#: Node count at which ``estimate``/``update`` switch to the adaptive
#: mixed-precision kernel when ``--precision`` is left unset.  Below
#: it the float32/float64 split is pure overhead; above it the float32
#: sweeps buy real memory bandwidth (see docs/perf.md).
AUTO_PRECISION_NODES = 250_000

_SCALES = {
    "small": WorldConfig.small,
    "medium": WorldConfig.medium,
    "large": WorldConfig.large,
}


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer.

    Guards the knobs where zero or a negative value is never meaningful
    (cache bounds, worker counts, walk counts, checkpoint cadence) so a
    fat-fingered ``--workers 0`` fails at parse time with a usage error
    (exit code 2) instead of surfacing later as an obscure solver or
    multiprocessing failure.  Note argparse only applies ``type=`` to
    strings, so non-string defaults (``None``, ``0``) are unaffected.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _nonnegative_int(text: str) -> int:
    """argparse type: an integer >= 0 (retry budgets, where 0 means
    "no retries" and is a legitimate hardening choice)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive finite float (deadlines,
    thresholds)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if not np.isfinite(value) or value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {text}"
        )
    return value


def _config_for(scale: str, seed: int) -> WorldConfig:
    try:
        factory = _SCALES[scale]
    except KeyError:
        raise SystemExit(
            f"unknown scale {scale!r}; choose from {sorted(_SCALES)}"
        )
    return factory(seed)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    """Build a synthetic world and persist it."""
    config = _config_for(args.scale, args.seed)
    world = build_world(config)
    core = default_good_core(world)
    out = Path(args.out)
    labels = {
        int(i): ("spam" if world.spam_mask[i] else "good")
        for i in range(world.num_nodes)
    }
    write_graph_bundle(
        world.graph,
        out,
        labels=labels,
        metadata={
            "scale": args.scale,
            "seed": args.seed,
            "num_nodes": world.num_nodes,
            "num_edges": world.graph.num_edges,
            "core_size": int(len(core)),
        },
        compress=args.compress,
    )
    core_names = [world.graph.name_of(int(i)) for i in core]
    write_host_list(core_names, out / "core.hosts")
    print(
        f"wrote {world.num_nodes:,} hosts / {world.graph.num_edges:,} "
        f"edges and a {len(core):,}-host good core to {out}"
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """Print graph statistics for a stored bundle."""
    graph, labels, metadata = read_graph_bundle(
        args.world, strict=not args.lenient
    )
    stats = graph.stats()
    print(f"hosts:        {stats.num_nodes:,}")
    print(f"edges:        {stats.num_edges:,}")
    print(f"no inlinks:   {stats.frac_no_inlinks:.1%}")
    print(f"no outlinks:  {stats.frac_no_outlinks:.1%}")
    print(f"isolated:     {stats.frac_isolated:.1%}")
    print(f"max indegree: {stats.max_indegree:,}")
    if labels is not None:
        spam = sum(1 for v in labels.values() if v == "spam")
        print(f"labeled spam: {spam:,} ({spam / stats.num_nodes:.1%})")
    if metadata:
        print(f"metadata:     {metadata}")
    return 0


def _parse_boundaries(text: str) -> List[int]:
    """argparse type: comma-separated non-decreasing shard boundaries."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"boundaries must be comma-separated integers, got {text!r}"
        )
    if len(values) < 2:
        raise argparse.ArgumentTypeError(
            "boundaries need at least two values (0,...,num_nodes)"
        )
    return values


def cmd_shard_partition(args: argparse.Namespace) -> int:
    """Partition a stored graph bundle into a sharded store."""
    graph, _labels, _metadata = read_graph_bundle(
        args.world, strict=not args.lenient
    )
    store = partition_graph(
        graph,
        args.out,
        num_shards=None if args.boundaries else args.shards,
        boundaries=args.boundaries,
        chunk_edges=args.chunk_edges,
    )
    print(
        f"partitioned {store.num_nodes:,} hosts / "
        f"{store.num_edges:,} edges into {store.num_shards} shard(s) "
        f"at {args.out}"
    )
    print(f"fingerprint: {store.structural_fingerprint()}")
    return EXIT_OK


def cmd_shard_inspect(args: argparse.Namespace) -> int:
    """Print a sharded store's manifest summary."""
    store = ShardedWebGraph.open(args.store, verify=False)
    if args.json:
        payload = {
            "directory": str(args.store),
            "num_nodes": store.num_nodes,
            "num_edges": store.num_edges,
            "num_shards": store.num_shards,
            "fingerprint": store.structural_fingerprint(),
            "shards": [
                store.shard_meta(k).as_dict()
                for k in range(store.num_shards)
            ],
        }
        print(json.dumps(payload, indent=2))
        return EXIT_OK
    print(f"store:        {args.store}")
    print(f"hosts:        {store.num_nodes:,}")
    print(f"edges:        {store.num_edges:,}")
    print(f"shards:       {store.num_shards}")
    print(f"fingerprint:  {store.structural_fingerprint()}")
    for k in range(store.num_shards):
        meta = store.shard_meta(k)
        print(
            f"  shard {k:>4}: [{meta.start:>9,}, {meta.stop:>9,})  "
            f"{meta.num_edges:>10,} out / {meta.num_in_edges:>10,} in  "
            f"digest {meta.digest:016x}  {meta.file}"
        )
    return EXIT_OK


def cmd_shard_verify(args: argparse.Namespace) -> int:
    """Re-check a sharded store's digests and structure end to end."""
    report = verify_store(args.store, deep=args.deep)
    if args.json:
        print(json.dumps(report, indent=2))
        return EXIT_OK if report["ok"] else EXIT_DATA
    mode = "deep" if args.deep else "shallow"
    if report["ok"]:
        print(
            f"ok: {report['num_nodes']:,} hosts / "
            f"{report['num_edges']:,} edges in "
            f"{len(report['shards'])} shard(s) ({mode} check)"
        )
        print(f"fingerprint: {report['fingerprint']}")
        return EXIT_OK
    for problem in report["problems"]:
        print(f"repro-spam: {problem}", file=sys.stderr)
    print(
        f"store at {args.store} FAILED verification "
        f"({len(report['problems'])} problem(s), {mode} check)",
        file=sys.stderr,
    )
    return EXIT_DATA


def _core_ids(graph, core_path: Path) -> np.ndarray:
    names = read_host_list(core_path)
    if graph.names is None:
        raise SystemExit("graph has no host names; cannot resolve the core")
    lookup = {name: i for i, name in enumerate(graph.names)}
    missing = [name for name in names if name not in lookup]
    if missing:
        raise SystemExit(
            f"{len(missing)} core hosts not present in the graph "
            f"(first: {missing[0]!r})"
        )
    return np.asarray([lookup[name] for name in names], dtype=np.int64)


def _runtime_policy(args: argparse.Namespace):
    """Build a RuntimePolicy from the estimate flags (or ``None``)."""
    wants_runtime = (
        args.checkpoint_dir is not None
        or args.resume
        or args.time_budget is not None
    )
    if not wants_runtime:
        return None
    if args.resume and args.checkpoint_dir is None:
        raise SystemExit("--resume requires --checkpoint-dir")
    from .runtime.resilient import RuntimePolicy

    return RuntimePolicy(
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        time_budget=args.time_budget,
    )


def _build_engine(args: argparse.Namespace):
    """A :class:`~repro.perf.PagerankEngine` per the perf flags."""
    from .perf import PagerankEngine

    return PagerankEngine(
        args.cache_size,
        workers=args.workers,
        precision=getattr(args, "precision", "float64"),
    )


def _resolve_precision(args: argparse.Namespace, num_nodes: int) -> str:
    """Fill in ``args.precision`` when the flag was left at auto.

    An explicit ``--precision`` always wins.  Otherwise graphs at or
    above :data:`AUTO_PRECISION_NODES` nodes get ``"adaptive"`` and
    smaller graphs ``"float64"``.  The choice (and why) is printed so
    an operator can audit it from logs.
    """
    if args.precision is not None:
        choice = args.precision
        why = "explicit --precision"
    elif num_nodes >= AUTO_PRECISION_NODES:
        choice = "adaptive"
        why = (
            f"auto: {num_nodes:,} nodes >= {AUTO_PRECISION_NODES:,}"
        )
    else:
        choice = "float64"
        why = f"auto: {num_nodes:,} nodes < {AUTO_PRECISION_NODES:,}"
    print(f"precision: {choice} ({why})")
    args.precision = choice
    return choice


def _supervisor_policy(args: argparse.Namespace):
    """Build a SupervisorPolicy from the supervision flags (or ``None``).

    ``None`` lets the supervised call sites use their defaults, so the
    flags only override behavior when the operator actually sets them.
    """
    wants_supervision = (
        getattr(args, "max_task_retries", None) is not None
        or getattr(args, "task_timeout", None) is not None
        or getattr(args, "no_degrade", False)
    )
    if not wants_supervision:
        return None
    from .runtime.supervisor import SupervisorPolicy

    defaults = SupervisorPolicy()
    retries = (
        defaults.max_task_retries
        if args.max_task_retries is None
        else args.max_task_retries
    )
    return SupervisorPolicy(
        max_task_retries=retries,
        task_timeout=args.task_timeout,
        allow_degrade=not args.no_degrade,
    )


def _ingest_policy(args: argparse.Namespace):
    """Build an IngestPolicy from the supervision flags (or ``None``).

    Mirrors :func:`_supervisor_policy` for the single-task ingest path
    (``update`` and the daemon's apply worker): ``None`` keeps the
    historical direct-call behavior, so the guarded wrapper only
    engages when the operator asked for it.
    """
    wants = (
        getattr(args, "max_task_retries", None) is not None
        or getattr(args, "task_timeout", None) is not None
        or getattr(args, "no_degrade", False)
    )
    if not wants:
        return None
    from .serve.ingest import IngestPolicy

    return IngestPolicy(
        max_retries=(
            1 if args.max_task_retries is None else args.max_task_retries
        ),
        deadline=args.task_timeout,
        allow_degrade=not args.no_degrade,
    )


def cmd_estimate(args: argparse.Namespace) -> int:
    """Compute PageRank, core PageRank and mass estimates."""
    graph, _, _ = read_graph_bundle(args.world, strict=not args.lenient)
    core_path = (
        Path(args.core) if args.core else Path(args.world) / "core.hosts"
    )
    core = _core_ids(graph, core_path)
    gamma = None if args.gamma <= 0 else args.gamma
    policy = _runtime_policy(args)
    # under a runtime policy the contract is graceful degradation: a
    # budget that runs out yields best-effort vectors, reported below,
    # instead of an exception
    if args.engine == "legacy":
        # pre-engine behavior: build the operator here, solve the two
        # vectors sequentially (an explicit transition_t opts out of
        # the batched kernel and the operator cache)
        from .graph.ops import transition_matrix

        estimates = estimate_spam_mass(
            graph,
            core,
            gamma=gamma,
            policy=policy,
            check=policy is None,
            transition_t=transition_matrix(graph).T.tocsr(),
        )
    else:
        _resolve_precision(args, graph.num_nodes)
        estimates = estimate_spam_mass(
            graph,
            core,
            gamma=gamma,
            policy=policy,
            check=policy is None,
            engine=_build_engine(args),
        )
    if args.mc_walks > 0:
        from .perf import pagerank_montecarlo_parallel

        mc = pagerank_montecarlo_parallel(
            graph,
            num_walks=args.mc_walks,
            workers=args.workers,
            seed=args.seed,
            supervisor=_supervisor_policy(args),
        )
        deviation = float(np.abs(mc.scores - estimates.pagerank).sum())
        print(
            f"Monte-Carlo cross-check ({args.mc_walks:,} walks, "
            f"workers={args.workers or 1}): L1 deviation from the "
            f"linear PageRank {deviation:.3e}"
        )
    exit_code = EXIT_OK
    if estimates.reports:
        for label, report in sorted(estimates.reports.items()):
            if report is None:
                continue
            if report.resumed_from is not None:
                print(
                    f"[{label}] resumed from checkpoint at iteration "
                    f"{report.resumed_from}"
                )
            escalations = report.escalations()
            if len(escalations) > 1:
                print(
                    f"[{label}] solver escalated: {' -> '.join(escalations)}"
                )
            if report.outcome != "converged":
                print(
                    f"warning: [{label}] solve did not converge "
                    f"(best-effort vector; {report.outcome})",
                    file=sys.stderr,
                )
                exit_code = EXIT_CONVERGENCE
    prefix = Path(args.out_prefix)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    write_scores(estimates.pagerank, f"{prefix}.pagerank.scores")
    write_scores(estimates.core_pagerank, f"{prefix}.core.scores")
    write_scores(estimates.relative, f"{prefix}.relative.scores")
    if args.checkpoint_dir is not None and exit_code == EXIT_OK:
        # persist the converged pair so a later `repro-spam update` can
        # warm-start the incremental engine instead of solving cold (a
        # best-effort vector is deliberately not saved: the push update
        # assumes the stored scores solve the base graph exactly)
        from .runtime.checkpoint import save_solution

        save_solution(
            args.checkpoint_dir,
            np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
            fingerprint=graph.structural_fingerprint(),
            extra={
                "damping": estimates.damping,
                "gamma": gamma,
                "labels": ["pagerank", "core"],
            },
        )
        print(f"saved converged solution to {args.checkpoint_dir}")
    eligible = int(
        (estimates.scaled_pagerank() >= args.rho).sum()
    )
    print(
        f"estimated mass for {graph.num_nodes:,} hosts "
        f"(core {len(core):,}, gamma {gamma}); "
        f"{eligible:,} hosts pass scaled PageRank >= {args.rho:g}"
    )
    print(f"wrote {prefix}.{{pagerank,core,relative}}.scores")
    return exit_code


def cmd_update(args: argparse.Namespace) -> int:
    """Incrementally re-estimate mass after an edge delta.

    Consumes the graph a previous ``estimate --checkpoint-dir`` run was
    computed on, the converged solution it saved, and an edge-delta
    file; applies the delta, warm-starts the push solver at the stored
    solution, and writes the same three score files ``estimate`` would
    have produced for the mutated graph — typically orders of magnitude
    faster than a cold re-solve (see ``docs/perf.md``).
    """
    from .core import MassEstimates
    from .graph import compose_applications, read_delta
    from .runtime.checkpoint import load_solution, save_solution

    graph, labels, metadata = read_graph_bundle(
        args.world, strict=not args.lenient
    )
    core_path = (
        Path(args.core) if args.core else Path(args.world) / "core.hosts"
    )
    core = _core_ids(graph, core_path)
    gamma = None if args.gamma <= 0 else args.gamma
    deltas = [read_delta(path) for path in args.delta]
    snapshot = load_solution(
        args.checkpoint_dir, fingerprint=graph.structural_fingerprint()
    )
    stored_gamma = snapshot.meta.get("gamma")
    if stored_gamma != gamma:
        raise SystemExit(
            f"stored solution used gamma={stored_gamma}, requested "
            f"gamma={gamma}; re-run the cold estimate"
        )
    damping = float(snapshot.meta.get("damping", 0.85))
    previous = MassEstimates(
        snapshot.scores[:, 0].copy(),
        snapshot.scores[:, 1].copy(),
        damping,
        gamma,
    )
    applications = []
    tip = graph
    for delta in deltas:
        app = delta.apply(tip)
        applications.append(app)
        tip = app.after
    batch = args.batch_deltas or len(applications)
    groups = [
        compose_applications(applications[i:i + batch])
        for i in range(0, len(applications), batch)
    ]
    _resolve_precision(args, graph.num_nodes)
    engine = _build_engine(args)
    policy = _ingest_policy(args)

    def _solve_group(application, previous):
        def _warm():
            return estimate_spam_mass(
                application,
                core,
                damping=damping,
                gamma=gamma,
                previous=previous,
                engine=engine,
            )

        if policy is None:
            return _warm()
        from .serve.ingest import guarded_call

        def _cold():
            return estimate_spam_mass(
                application.after,
                core,
                damping=damping,
                gamma=gamma,
                engine=engine,
            )

        estimates, degraded = guarded_call(
            _warm, _cold, policy, label="update"
        )
        if degraded:
            print(
                "warm push update failed; degraded to a cold re-solve "
                "of the mutated graph (same scores, slower path)"
            )
        return estimates

    estimates = previous
    for group in groups:
        estimates = _solve_group(group, estimates)
    application = compose_applications(applications)
    delta = application.delta
    prefix = Path(args.out_prefix)
    prefix.parent.mkdir(parents=True, exist_ok=True)
    write_scores(estimates.pagerank, f"{prefix}.pagerank.scores")
    write_scores(estimates.core_pagerank, f"{prefix}.core.scores")
    write_scores(estimates.relative, f"{prefix}.relative.scores")
    save_solution(
        args.checkpoint_dir,
        np.stack([estimates.pagerank, estimates.core_pagerank], axis=1),
        fingerprint=application.after.structural_fingerprint(),
        extra={
            "damping": damping,
            "gamma": gamma,
            "labels": ["pagerank", "core"],
        },
    )
    if args.write_world:
        out_world = Path(args.write_world)
        write_graph_bundle(
            application.after,
            out_world,
            labels=labels,
            metadata=metadata,
        )
        # carry the good core over so the mutated directory is a
        # complete world (estimate/update default --core to it)
        write_host_list(
            [application.after.name_of(int(i)) for i in core],
            out_world / "core.hosts",
        )
        print(f"wrote the mutated graph bundle to {out_world}")
    eligible = int((estimates.scaled_pagerank() >= args.rho).sum())
    print(
        f"applied {delta.num_insertions:,}+/{delta.num_deletions:,}- net "
        f"edge delta ({len(deltas)} file(s) in {len(groups)} batch(es)) "
        f"touching {len(application.touched_nodes):,} hosts; "
        f"{eligible:,} hosts pass scaled PageRank >= {args.rho:g}"
    )
    print(f"wrote {prefix}.{{pagerank,core,relative}}.scores")
    print(f"saved updated solution to {args.checkpoint_dir}")
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on scoring daemon on a unix socket.

    Loads the world bundle and the converged solution a previous
    ``estimate --checkpoint-dir`` saved, replays any write-ahead log
    left by a crashed instance, and serves spam-mass queries while
    ingesting edge deltas in the background.  With ``--replicas N``
    the process becomes the WAL-owning writer of a replicated
    deployment: epochs are shipped as snapshots to ``--ship-dir`` and
    reads are routed across N replicas (plus an optional pinned
    ``--explain-replica``).  Runs until SIGTERM/SIGINT (clean drain)
    or ``--max-requests``.  See docs/serving.md.
    """
    from .serve import (
        DaemonConfig,
        ReplicaRouter,
        ReplicaSet,
        ReplicatedWriter,
        ScoringDaemon,
        ScoringServer,
    )

    if args.explain_replica and args.replicas < 1:
        print(
            "repro-spam serve: error: --explain-replica requires "
            "--replicas >= 1",
            file=sys.stderr,
        )
        return EXIT_USAGE

    config = DaemonConfig(
        rho=args.rho,
        tau=args.tau,
        max_staleness=args.max_staleness,
        ingest_retries=(
            1 if args.max_task_retries is None else args.max_task_retries
        ),
        ingest_deadline=args.task_timeout,
        allow_degrade=not args.no_degrade,
        batch_deltas=args.batch_deltas,
    )
    daemon = ScoringDaemon.load(
        args.world,
        args.checkpoint_dir,
        core_path=args.core,
        wal_dir=args.wal_dir,
        config=config,
        engine=_build_engine(args),
    )
    router = None
    writer = None
    if args.replicas > 0:
        ship_dir = (
            Path(args.ship_dir)
            if args.ship_dir is not None
            else Path(args.checkpoint_dir) / "ship"
        )
        writer = ReplicatedWriter(daemon, ship_dir)
        # replicas bootstrap from the daemon's *current* graph (not the
        # bundle on disk): after a WAL replay the shipped chain starts
        # at the replayed tip, which only the live epoch matches
        base_graph = daemon.store.current.graph
        replica_set = ReplicaSet(ship_dir, base_graph, core=daemon.core)
        replicas = replica_set.spawn(args.replicas)
        explain_replica = None
        if args.explain_replica:
            explain_replica = replica_set.spawn(
                1, names=["replica-explain"], with_core=True
            )[0]
        router = ReplicaRouter(
            replicas,
            explain_replica=explain_replica,
            boundaries=getattr(base_graph, "boundaries", None),
            replica_set=replica_set,
            max_lag=args.max_lag,
        )
    server = ScoringServer(
        daemon,
        args.socket,
        max_queue=args.max_queue,
        request_timeout=args.request_timeout,
        workers=args.serve_workers,
        max_requests=args.max_requests,
        router=router,
        writer=writer,
        replica_poll=args.replica_poll,
    )
    server.install_signal_handlers()
    server.start()
    epoch = daemon.store.current
    replicated = (
        f", {args.replicas} replicas"
        + (" + explain" if args.explain_replica else "")
        + f" shipping to {writer.ship_dir}"
        if writer is not None
        else ""
    )
    print(
        f"serving {epoch.graph.num_nodes:,} hosts on {args.socket} "
        f"(pid {os.getpid()}); epoch {epoch.seq}, "
        f"staleness {daemon.staleness}{replicated}; SIGTERM drains"
    )
    server.wait()
    stats = server.stats()
    print(
        f"drained after {stats['requests']:,} requests "
        f"({stats['shed']:,} shed, {stats['applies']:,} deltas applied, "
        f"epoch {stats['epoch']})"
    )
    return EXIT_OK


def cmd_stream_synth(args: argparse.Namespace) -> int:
    """Synthesize a timestamped crawl-event stream over a world."""
    from .synth import ATTACK_KINDS, synthesize_stream
    from .synth.crawler import attacks_path

    if args.attacks.strip().lower() == "none":
        kinds: tuple = ()
    else:
        kinds = tuple(
            k.strip() for k in args.attacks.split(",") if k.strip()
        )
        unknown = [k for k in kinds if k not in ATTACK_KINDS]
        if unknown:
            print(
                "repro-spam stream synth: error: unknown attack "
                f"kind(s) {', '.join(unknown)}; choose from "
                f"{', '.join(ATTACK_KINDS)} or 'none'",
                file=sys.stderr,
            )
            return EXIT_USAGE
    graph, labels, _ = read_graph_bundle(
        args.world, strict=not args.lenient
    )
    core_path = (
        Path(args.core) if args.core else Path(args.world) / "core.hosts"
    )
    core = _core_ids(graph, core_path) if core_path.exists() else None
    spam_mask = None
    if labels:
        spam_mask = np.zeros(graph.num_nodes, dtype=bool)
        for node, label in labels.items():
            if label == "spam":
                spam_mask[int(node)] = True
    stream = synthesize_stream(
        graph,
        spam_mask=spam_mask,
        core=core,
        seed=args.seed,
        num_events=args.events,
        attacks=kinds,
        boosters_per_attack=args.boosters,
        attack_stride=args.stride,
        ts_increment=args.ts_increment,
    )
    out = stream.write(args.out)
    print(
        f"wrote {len(stream.events):,} crawl events over "
        f"{graph.num_nodes:,} hosts to {out}"
    )
    if stream.attacks:
        print(f"scripted attacks (ground truth in {attacks_path(out)}):")
        for attack in stream.attacks:
            print(
                f"  {attack.name:<24} {attack.kind:<18} "
                f"target {graph.name_of(int(attack.target))} "
                f"onset id {attack.onset_id}"
            )
    return EXIT_OK


def cmd_stream_ingest(args: argparse.Namespace) -> int:
    """Ingest a crawl-event stream into a served scoring state.

    Loads the daemon exactly like ``serve`` (bundle + converged
    snapshot + WAL replay) but drives it synchronously from a stream
    file instead of a socket: events are validated, windowed,
    compacted and applied through the WAL, with malformed/late/poison
    records quarantined to the DLQ.  Re-running the command on the
    same state directory resumes from the journaled offset, so a
    crashed or interrupted ingest just gets re-invoked.
    """
    from .serve import (
        DaemonConfig,
        ScoringDaemon,
        StreamConfig,
        StreamIngestor,
    )

    if args.min_window > args.window:
        print(
            "repro-spam stream ingest: error: --min-window must not "
            "exceed --window",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.apply_every > args.max_pending_windows:
        print(
            "repro-spam stream ingest: error: --apply-every must not "
            "exceed --max-pending-windows",
            file=sys.stderr,
        )
        return EXIT_USAGE
    events_path = Path(args.events)
    probe = None
    if args.probe:
        from .eval import LatencyProbe
        from .synth.crawler import TemporalAttack, attacks_path

        sidecar = attacks_path(events_path)
        if not sidecar.exists():
            print(
                "repro-spam stream ingest: error: --probe needs the "
                f"stream's attack sidecar ({sidecar.name}, written by "
                "'stream synth')",
                file=sys.stderr,
            )
            return EXIT_USAGE
        # only the sidecar is trusted — the events file itself may be
        # arbitrarily mangled (that is what the DLQ is for)
        data = json.loads(sidecar.read_text(encoding="utf-8"))
        attacks = [
            TemporalAttack.from_dict(a) for a in data.get("attacks", [])
        ]
        probe = LatencyProbe(attacks, rho=args.rho, tau=args.tau)
    config = DaemonConfig(
        gamma=None if args.gamma <= 0 else args.gamma,
        rho=args.rho,
        tau=args.tau,
        max_staleness=args.max_staleness,
        batch_deltas=args.batch_deltas,
    )
    daemon = ScoringDaemon.load(
        args.world,
        args.checkpoint_dir,
        core_path=args.core,
        wal_dir=args.wal_dir,
        config=config,
        engine=_build_engine(args),
    )
    state_dir = (
        Path(args.state_dir)
        if args.state_dir
        else Path(args.checkpoint_dir) / "stream"
    )
    ingestor = StreamIngestor(
        daemon,
        state_dir,
        config=StreamConfig(
            window=args.window,
            max_lateness=args.max_lateness,
            min_window=args.min_window,
            max_pending_windows=args.max_pending_windows,
            flood_threshold=args.flood_threshold,
            apply_every=args.apply_every,
        ),
        dlq_dir=args.dlq_dir,
        on_commit=probe.observe if probe is not None else None,
    )
    ingestor.ingest_file(events_path)
    ingestor.flush()
    stats = ingestor.stats()
    if args.json:
        payload = {"stats": stats}
        if probe is not None:
            payload["attacks"] = probe.report()
        print(json.dumps(payload, indent=2))
        return EXIT_OK
    print(
        f"consumed {stats['events_consumed']:,} events: "
        f"{stats['windows_committed']:,} windows committed, "
        f"{stats['windows_quarantined']:,} quarantined; "
        f"{stats['duplicates']:,} duplicates skipped, "
        f"{stats['late']:,} late + {stats['malformed']:,} malformed "
        f"-> DLQ ({stats['dlq_entries']:,} entries)"
    )
    print(
        f"serving epoch {stats['epoch']} "
        f"(state {state_dir}, resume offset {ingestor.resume_offset})"
    )
    if probe is not None:
        print("detection latency (events from onset to first catch):")
        for verdict in probe.report():
            if verdict["caught"]:
                outcome = (
                    f"caught after {verdict['events_until_caught']} "
                    f"events ({verdict['windows_until_caught']} windows)"
                )
            else:
                outcome = "NOT caught"
            print(
                f"  {verdict['name']:<24} {verdict['kind']:<18} "
                f"{outcome}"
            )
    return EXIT_OK


def cmd_stream_dlq(args: argparse.Namespace) -> int:
    """Inspect a stream ingestor's dead-letter queue."""
    from .serve import DeadLetterQueue

    dlq = DeadLetterQueue(args.dlq_dir)
    entries = dlq.entries()
    if args.json:
        print(json.dumps(entries, indent=2))
        return EXIT_OK
    if not entries:
        print(f"dead-letter queue is empty ({dlq.path})")
        return EXIT_OK
    shown = entries if args.limit <= 0 else entries[-args.limit:]
    print(f"{len(entries)} quarantined entries in {dlq.path}:")
    for entry in shown:
        scope = ""
        if "window" in entry:
            lo, hi = entry["window"]
            count = len(entry.get("ids", ()))
            scope = f" window [{lo},{hi}) ({count} events)"
        elif "offset" in entry:
            scope = f" at offset {entry['offset']}"
        detail = entry.get("detail", "")
        if detail:
            detail = f": {detail}"
        print(f"  #{entry.get('n', '?')} {entry['reason']}{scope}{detail}")
    if len(entries) > len(shown):
        print(f"  ... and {len(entries) - len(shown)} older entries")
    return EXIT_OK


def cmd_detect(args: argparse.Namespace) -> int:
    """Apply Algorithm 2 thresholds to stored scores."""
    strict = not args.lenient
    graph, labels, _ = read_graph_bundle(args.world, strict=strict)
    prefix = args.scores_prefix
    pagerank_scores = read_scores(f"{prefix}.pagerank.scores", strict=strict)
    relative = read_scores(f"{prefix}.relative.scores", strict=strict)
    if len(pagerank_scores) != graph.num_nodes:
        raise SystemExit("score files do not match the graph size")
    scaled = scale_scores(pagerank_scores, graph.num_nodes)
    candidate = (scaled >= args.rho) & (relative >= args.tau)
    candidates = np.flatnonzero(candidate)
    order = candidates[np.argsort(-relative[candidates], kind="stable")]
    print(
        f"{len(order)} spam candidates at tau={args.tau:g}, "
        f"rho={args.rho:g}:"
    )
    shown = order if args.limit <= 0 else order[: args.limit]
    for node in shown:
        node = int(node)
        truth = ""
        if labels is not None:
            truth = f"  [{labels.get(node, '?')}]"
        print(
            f"  {graph.name_of(node):<42} m~={relative[node]:.3f} "
            f"p={scaled[node]:.1f}{truth}"
        )
    if len(order) > len(shown):
        print(f"  ... and {len(order) - len(shown)} more")
    if labels is not None and len(order):
        spam_hits = sum(
            1 for node in order if labels.get(int(node)) == "spam"
        )
        print(f"precision against stored labels: {spam_hits / len(order):.3f}")
    if args.explain > 0 and len(order):
        from .core.explain import explain_mass

        core_path = Path(args.world) / "core.hosts"
        core = (
            _core_ids(graph, core_path) if core_path.exists() else []
        )
        print("\nreview sheets for the top candidates:")
        for node in order[: args.explain]:
            explanation = explain_mass(
                graph, int(node), core, suspected_spam=order
            )
            print()
            print(explanation.render(graph))
    return 0


def cmd_audit_core(args: argparse.Namespace) -> int:
    """Audit a stored good core for Section 4.4-style anomalies."""
    from .eval.audit import audit_core

    strict = not args.lenient
    graph, labels, _ = read_graph_bundle(args.world, strict=strict)
    core_path = (
        Path(args.core) if args.core else Path(args.world) / "core.hosts"
    )
    core = _core_ids(graph, core_path)
    gamma = None if args.gamma <= 0 else args.gamma
    estimates = estimate_spam_mass(
        graph, core, gamma=gamma, engine=_build_engine(args)
    )
    report = audit_core(
        labels,
        estimates,
        core,
        relative_mass_threshold=args.threshold,
    )
    print(report.summary())
    for finding in report.findings:
        name = graph.name_of(finding.node)
        print(f"  {name:<42} {finding.describe()}")
    if report.clean:
        return EXIT_OK
    if args.repaired_core_out:
        out_path = Path(args.repaired_core_out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        write_host_list(
            [graph.name_of(int(n)) for n in report.repaired_core],
            out_path,
        )
        print(f"wrote repaired core to {out_path}")
    return EXIT_AUDIT


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Re-run a paper experiment by its DESIGN.md id."""
    from .eval.experiment import ReproductionContext
    from .eval.registry import (
        is_contextual,
        list_experiments,
        run_experiment,
    )

    config = _config_for(args.scale, args.seed)
    requested = args.experiment.upper()
    known = list_experiments()
    if requested == "ALL":
        ids: List[str] = known
    elif requested in known:
        ids = [requested]
    else:
        raise SystemExit(
            f"unknown experiment {args.experiment!r}; known: "
            f"{', '.join(known)} or 'all'"
        )

    engine = _build_engine(args)
    ctx = None
    results = []
    for exp_id in ids:
        if is_contextual(exp_id) and ctx is None:
            print(f"building the {args.scale} context ...", flush=True)
            ctx = ReproductionContext.build(config, engine=engine)
        result = run_experiment(exp_id, ctx=ctx, config=config)
        results.append(result)
        print(result.to_ascii())
        print()
    if args.out:
        out_path = Path(args.out)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        sections = [
            "# Reproduced experiments",
            "",
            f"Scale: {args.scale}, seed: {args.seed}.  Generated by "
            "`repro-spam reproduce`.",
            "",
        ]
        sections.extend(
            result.to_markdown() + "\n" for result in results
        )
        out_path.write_text("\n".join(sections), encoding="utf-8")
        print(f"wrote Markdown report to {out_path}")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    """Construct the ``repro-spam`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-spam",
        description="Link-spam detection based on mass estimation "
        "(Gyongyi et al., VLDB 2006) — reproduction pipeline.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--traceback",
        action="store_true",
        help="print full Python tracebacks instead of one-line errors",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable telemetry and write the span/event stream as JSON "
        "lines to FILE (a <FILE>.manifest.json summary is written next "
        "to it); see docs/observability.md",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable telemetry and write the final metrics snapshot "
        "(counters, gauges, histograms) as JSON to FILE",
    )
    parser.add_argument(
        "--no-telemetry",
        action="store_true",
        help="force telemetry off even when --trace-out/--metrics-out "
        "are given (the default without those flags is already off)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser(
        "generate", help="build and persist a synthetic world"
    )
    p_gen.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.add_argument("--out", required=True, help="output directory")
    p_gen.add_argument(
        "--compress", action="store_true", help="gzip the edge list"
    )
    p_gen.set_defaults(func=cmd_generate)

    p_stats = sub.add_parser("stats", help="print graph statistics")
    p_stats.add_argument("--world", required=True, help="bundle directory")
    p_stats.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed input lines instead of failing",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_shard = sub.add_parser(
        "shard",
        help="partition, inspect and verify out-of-core shard stores",
        description="Block-partitioned graph stores (docs/scale.md): "
        "partition an in-memory bundle into per-shard files, inspect a "
        "store's manifest, or re-verify its integrity digests.",
    )
    shard_sub = p_shard.add_subparsers(dest="shard_action", required=True)

    p_part = shard_sub.add_parser(
        "partition", help="split a graph bundle into a sharded store"
    )
    p_part.add_argument("--world", required=True, help="bundle directory")
    p_part.add_argument("--out", required=True, help="store directory")
    p_part.add_argument(
        "--shards",
        type=_positive_int,
        default=8,
        help="number of contiguous node-range shards (default 8)",
    )
    p_part.add_argument(
        "--boundaries",
        type=_parse_boundaries,
        default=None,
        metavar="B0,B1,...",
        help="explicit shard boundaries (overrides --shards); must "
        "start at 0 and end at the node count",
    )
    p_part.add_argument(
        "--chunk-edges",
        type=_positive_int,
        default=1 << 20,
        help="edges streamed per chunk during partitioning",
    )
    p_part.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed bundle lines instead of failing",
    )
    p_part.set_defaults(func=cmd_shard_partition)

    p_insp = shard_sub.add_parser(
        "inspect", help="print a store's manifest summary"
    )
    p_insp.add_argument("--store", required=True, help="store directory")
    p_insp.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_insp.set_defaults(func=cmd_shard_inspect)

    p_ver = shard_sub.add_parser(
        "verify",
        help="re-check shard digests against the manifest (exit 3 on "
        "corruption)",
    )
    p_ver.add_argument("--store", required=True, help="store directory")
    p_ver.add_argument(
        "--deep",
        action="store_true",
        help="also cross-check transpose arrays against the out-CSRs",
    )
    p_ver.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_ver.set_defaults(func=cmd_shard_verify)

    p_est = sub.add_parser(
        "estimate", help="compute PageRank and mass estimates"
    )
    p_est.add_argument("--world", required=True)
    p_est.add_argument(
        "--core",
        default=None,
        help="core host list (default: <world>/core.hosts)",
    )
    p_est.add_argument(
        "--gamma",
        type=float,
        default=0.85,
        help="good-fraction scaling; <= 0 for the unscaled core jump",
    )
    p_est.add_argument("--rho", type=float, default=10.0)
    p_est.add_argument(
        "--out-prefix", required=True, help="prefix for the score files"
    )
    p_est.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed input lines instead of failing",
    )
    p_est.add_argument(
        "--engine",
        choices=("batched", "legacy"),
        default="batched",
        help="'batched' (default) solves p and p' as one block iteration "
        "over the cached operator; 'legacy' rebuilds the operator and "
        "solves the two vectors sequentially (pre-engine behavior)",
    )
    p_est.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache (graphs, default 8)",
    )
    p_est.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="process count for Monte-Carlo sampling (--mc-walks); "
        "results are identical for any worker count",
    )
    p_est.add_argument(
        "--precision",
        choices=PRECISIONS,
        default=None,
        help="batched-solve arithmetic: 'float64' or 'adaptive' "
        "(float32 sweeps down to a relaxed tier, then float64 polish "
        "to full tolerance; see docs/perf.md); default: auto — "
        f"'adaptive' at >= {AUTO_PRECISION_NODES:,} nodes, else "
        "'float64' (the choice is printed)",
    )
    p_est.add_argument(
        "--mc-walks",
        type=_positive_int,
        default=0,
        metavar="N",
        help="cross-check the linear PageRank against an N-walk "
        "Monte-Carlo estimate (default off); parallelized over --workers",
    )
    p_est.add_argument(
        "--seed",
        type=int,
        default=0,
        help="RNG seed for the Monte-Carlo cross-check",
    )
    p_est.add_argument(
        "--max-task-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="per-task retry budget for supervised fan-out work "
        "(Monte-Carlo chunks); 0 disables retries (default: "
        "supervisor default)",
    )
    p_est.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-task deadline for supervised fan-out work; a hung "
        "worker is abandoned at the deadline and its chunk re-executed "
        "in-process (default: no deadline)",
    )
    p_est.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail fast instead of degrading the process pool to "
        "in-process serial execution when the circuit breaker trips",
    )
    p_est.add_argument(
        "--checkpoint-dir",
        default=None,
        help="snapshot solver iterates here (atomic write-rename); "
        "enables the resilient fallback runtime",
    )
    p_est.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=50,
        help="checkpoint cadence in solver iterations (default 50)",
    )
    p_est.add_argument(
        "--resume",
        action="store_true",
        help="resume from the newest checkpoint in --checkpoint-dir "
        "instead of starting at iteration 0",
    )
    p_est.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per solve; on expiry return the "
        "best-effort vector (exit code 4) instead of running on",
    )
    p_est.set_defaults(func=cmd_estimate)

    p_upd = sub.add_parser(
        "update",
        help="incrementally re-estimate mass after an edge delta",
    )
    p_upd.add_argument(
        "--world",
        required=True,
        help="bundle directory of the graph the stored solution was "
        "computed on (the *pre*-delta graph)",
    )
    p_upd.add_argument(
        "--delta",
        required=True,
        action="append",
        help="edge-delta file ('+ u v' / '- u v' lines; see "
        "docs/cli.md); repeatable — the files chain in order, each "
        "applying to the graph the previous one produced",
    )
    p_upd.add_argument(
        "--batch-deltas",
        type=_positive_int,
        default=None,
        metavar="N",
        help="coalesce up to N chained --delta files into one composed "
        "splice + one warm solve each (default: all of them as a "
        "single batch)",
    )
    p_upd.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory a previous 'estimate --checkpoint-dir' saved "
        "its converged solution to; updated in place on success",
    )
    p_upd.add_argument(
        "--core",
        default=None,
        help="core host list (default: <world>/core.hosts)",
    )
    p_upd.add_argument(
        "--gamma",
        type=float,
        default=0.85,
        help="good-fraction scaling; must match the stored solution",
    )
    p_upd.add_argument("--rho", type=float, default=10.0)
    p_upd.add_argument(
        "--out-prefix", required=True, help="prefix for the score files"
    )
    p_upd.add_argument(
        "--write-world",
        default=None,
        metavar="DIR",
        help="also write the mutated graph as a bundle (labels and "
        "metadata carried over) so 'detect' can run against it",
    )
    p_upd.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed input lines instead of failing",
    )
    p_upd.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache (graphs, default 8)",
    )
    p_upd.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="unused by the push solver; accepted for flag parity with "
        "'estimate'",
    )
    p_upd.add_argument(
        "--precision",
        choices=PRECISIONS,
        default=None,
        help="arithmetic of the escape kernel a wide-frontier push "
        "update falls back to: 'float64' or 'adaptive' (float32 "
        "sweeps + float64 polish; see docs/perf.md); default: auto — "
        f"'adaptive' at >= {AUTO_PRECISION_NODES:,} nodes, else "
        "'float64' (the choice is printed)",
    )
    p_upd.add_argument(
        "--max-task-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retry budget for the warm push update before degrading "
        "to a cold re-solve; 0 disables retries (default 1 once any "
        "supervision flag is set)",
    )
    p_upd.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per re-estimate attempt; an attempt "
        "that overruns is abandoned and retried or degraded "
        "(default: no deadline)",
    )
    p_upd.add_argument(
        "--no-degrade",
        action="store_true",
        help="fail fast instead of degrading the warm push update to "
        "a cold re-solve when retries are exhausted",
    )
    p_upd.set_defaults(func=cmd_update)

    p_srv = sub.add_parser(
        "serve",
        help="run the always-on scoring daemon on a unix socket",
    )
    p_srv.add_argument(
        "--world",
        required=True,
        help="bundle directory of the graph the stored solution was "
        "computed on",
    )
    p_srv.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory holding the converged solution from "
        "'estimate --checkpoint-dir'; updated in place as deltas are "
        "applied",
    )
    p_srv.add_argument(
        "--core",
        default=None,
        help="core host list (default: <world>/core.hosts)",
    )
    p_srv.add_argument(
        "--socket",
        required=True,
        help="unix-domain socket path to listen on (NDJSON protocol; "
        "see docs/serving.md)",
    )
    p_srv.add_argument(
        "--wal-dir",
        default=None,
        help="write-ahead log directory for accepted deltas "
        "(default: <checkpoint-dir>/wal)",
    )
    p_srv.add_argument(
        "--max-queue",
        type=_positive_int,
        default=64,
        help="bound on admitted-but-unfinished requests; the next one "
        "is shed with an 'overloaded' rejection (default 64)",
    )
    p_srv.add_argument(
        "--request-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline from admission; a request that "
        "waited past it is dropped at dequeue (default: none)",
    )
    p_srv.add_argument(
        "--serve-workers",
        type=_positive_int,
        default=2,
        metavar="N",
        help="request worker threads (default 2)",
    )
    p_srv.add_argument(
        "--max-staleness",
        type=_positive_int,
        default=8,
        metavar="N",
        help="accepted-but-unapplied delta batches before ingest "
        "degrades to stale-reads-only (default 8)",
    )
    p_srv.add_argument(
        "--batch-deltas",
        type=_positive_int,
        default=1,
        metavar="N",
        help="coalesce up to N queued deltas into one composed apply "
        "(one warm solve, one epoch; default 1 = apply one at a time)",
    )
    p_srv.add_argument(
        "--precision",
        choices=PRECISIONS,
        default="float64",
        help="arithmetic of the ingest re-estimates: 'float64' "
        "(default) or 'adaptive' (float32 sweeps + float64 polish; "
        "see docs/perf.md)",
    )
    p_srv.add_argument(
        "--max-requests",
        type=_positive_int,
        default=None,
        metavar="N",
        help="drain after N processed requests (benchmark/soak "
        "plumbing; default: run until signalled)",
    )
    p_srv.add_argument(
        "--max-task-retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retry budget for a warm re-estimate before degrading to "
        "a cold re-solve (default 1)",
    )
    p_srv.add_argument(
        "--task-timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per re-estimate attempt "
        "(default: no deadline)",
    )
    p_srv.add_argument(
        "--no-degrade",
        action="store_true",
        help="refuse to degrade a failed warm re-estimate to a cold "
        "re-solve; the delta stays pending and the ingest circuit "
        "opens instead",
    )
    p_srv.add_argument(
        "--replicas",
        type=_nonnegative_int,
        default=0,
        metavar="N",
        help="read replicas fed from shipped snapshots; score/top "
        "queries are routed across them shard-affinely while the "
        "writer keeps WAL ownership (default 0: single-process "
        "serving, no ship directory)",
    )
    p_srv.add_argument(
        "--explain-replica",
        action="store_true",
        help="pin 'explain' to a dedicated replica outside the read "
        "rotation (requires --replicas >= 1)",
    )
    p_srv.add_argument(
        "--ship-dir",
        default=None,
        help="snapshot-shipping directory the writer publishes to and "
        "replicas load from (default: <checkpoint-dir>/ship)",
    )
    p_srv.add_argument(
        "--max-lag",
        type=_positive_int,
        default=4,
        metavar="N",
        help="WAL records a replica may trail the applied epoch "
        "before serving degrades (default 4)",
    )
    p_srv.add_argument(
        "--replica-poll",
        type=_positive_float,
        default=0.05,
        metavar="SECONDS",
        help="background cadence for shipping pending epochs and "
        "refreshing replicas (default 0.05)",
    )
    p_srv.add_argument("--rho", type=float, default=10.0)
    p_srv.add_argument("--tau", type=float, default=0.98)
    p_srv.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache (graphs, default 8)",
    )
    p_srv.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="solver workers for the pagerank engine (default: serial)",
    )
    p_srv.set_defaults(func=cmd_serve)

    p_stream = sub.add_parser(
        "stream",
        help="streaming crawl ingestion: synthesize, ingest, inspect",
        description="Fault-tolerant streaming crawl ingestion "
        "(docs/streaming.md): synthesize timestamped edge-event "
        "streams with scripted temporal attacks, feed them through "
        "the windowed WAL-backed ingestor, and inspect the "
        "dead-letter queue of quarantined records.",
    )
    stream_sub = p_stream.add_subparsers(
        dest="stream_action", required=True
    )

    p_ssyn = stream_sub.add_parser(
        "synth",
        help="synthesize a timestamped crawl-event stream over a world",
    )
    p_ssyn.add_argument("--world", required=True, help="bundle directory")
    p_ssyn.add_argument(
        "--out", required=True, help="output stream file (JSONL)"
    )
    p_ssyn.add_argument(
        "--core",
        default=None,
        help="core host list for the stale-core script "
        "(default: <world>/core.hosts when present)",
    )
    p_ssyn.add_argument("--seed", type=int, default=0)
    p_ssyn.add_argument(
        "--events",
        type=_positive_int,
        default=1500,
        metavar="N",
        help="background churn events to emit (default 1500)",
    )
    p_ssyn.add_argument(
        "--attacks",
        default="expired-takeover,gradual-farm,stale-core",
        metavar="KINDS",
        help="comma-separated temporal attack scripts to interleave, "
        "or 'none' (default: all three)",
    )
    p_ssyn.add_argument(
        "--boosters",
        type=_positive_int,
        default=30,
        metavar="N",
        help="dormant hosts each attack claims as boosters (default 30; "
        "stale-core claims 2N)",
    )
    p_ssyn.add_argument(
        "--stride",
        type=_positive_int,
        default=4,
        metavar="N",
        help="churn events between consecutive attack steps (default 4)",
    )
    p_ssyn.add_argument(
        "--ts-increment",
        type=_positive_int,
        default=2,
        metavar="N",
        help="event-time ticks between consecutive events (default 2)",
    )
    p_ssyn.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed bundle lines instead of failing",
    )
    p_ssyn.set_defaults(func=cmd_stream_synth)

    p_sing = stream_sub.add_parser(
        "ingest",
        help="feed a stream file through the windowed WAL-backed "
        "ingestor",
    )
    p_sing.add_argument("--world", required=True, help="bundle directory")
    p_sing.add_argument(
        "--checkpoint-dir",
        required=True,
        help="directory holding the converged solution from "
        "'estimate --checkpoint-dir'; updated in place as windows "
        "are applied",
    )
    p_sing.add_argument(
        "--events", required=True, help="stream file (JSONL) to ingest"
    )
    p_sing.add_argument(
        "--core",
        default=None,
        help="core host list (default: <world>/core.hosts)",
    )
    p_sing.add_argument(
        "--state-dir",
        default=None,
        help="ingestor journal directory; re-running with the same "
        "state resumes from the recorded offset "
        "(default: <checkpoint-dir>/stream)",
    )
    p_sing.add_argument(
        "--dlq-dir",
        default=None,
        help="dead-letter queue directory for quarantined records "
        "(default: <state-dir>)",
    )
    p_sing.add_argument(
        "--wal-dir",
        default=None,
        help="write-ahead log directory "
        "(default: <checkpoint-dir>/wal)",
    )
    p_sing.add_argument(
        "--window",
        type=_positive_int,
        default=16,
        metavar="TICKS",
        help="event-time window size (default 16)",
    )
    p_sing.add_argument(
        "--max-lateness",
        type=_nonnegative_int,
        default=8,
        metavar="TICKS",
        help="out-of-order allowance behind the max event time seen; "
        "older events are dead-lettered as 'late' (default 8)",
    )
    p_sing.add_argument(
        "--min-window",
        type=_positive_int,
        default=2,
        metavar="TICKS",
        help="floor the flood flow-control may degrade the window "
        "size to (default 2); must not exceed --window",
    )
    p_sing.add_argument(
        "--max-pending-windows",
        type=_positive_int,
        default=64,
        metavar="N",
        help="hard cap on open windows before the oldest is "
        "force-sealed (default 64)",
    )
    p_sing.add_argument(
        "--flood-threshold",
        type=_positive_int,
        default=10_000,
        metavar="N",
        help="buffered events above which backpressure degrades the "
        "window size and drops the lateness allowance (default 10000)",
    )
    p_sing.add_argument(
        "--apply-every",
        type=_positive_int,
        default=1,
        metavar="N",
        help="sealed windows to accumulate before one batched apply "
        "(default 1); must not exceed --max-pending-windows",
    )
    p_sing.add_argument(
        "--gamma",
        type=float,
        default=0.85,
        help="good-fraction scaling; must match the stored solution",
    )
    p_sing.add_argument("--rho", type=float, default=10.0)
    p_sing.add_argument("--tau", type=float, default=0.98)
    p_sing.add_argument(
        "--max-staleness",
        type=_positive_int,
        default=8,
        metavar="N",
        help="unapplied delta batches before ingest degrades "
        "(default 8)",
    )
    p_sing.add_argument(
        "--batch-deltas",
        type=_positive_int,
        default=1,
        metavar="N",
        help="window deltas one daemon apply may coalesce (default 1)",
    )
    p_sing.add_argument(
        "--probe",
        action="store_true",
        help="report detection latency against the stream's "
        ".attacks.json ground-truth sidecar (gates: --rho/--tau)",
    )
    p_sing.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_sing.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache (graphs, default 8)",
    )
    p_sing.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="solver workers for the pagerank engine (default: serial)",
    )
    p_sing.add_argument(
        "--precision",
        choices=PRECISIONS,
        default="float64",
        help="arithmetic of the window re-estimates: 'float64' "
        "(default) or 'adaptive' (see docs/perf.md)",
    )
    p_sing.set_defaults(func=cmd_stream_ingest)

    p_sdlq = stream_sub.add_parser(
        "dlq", help="list a stream ingestor's dead-letter queue"
    )
    p_sdlq.add_argument(
        "--dlq-dir",
        required=True,
        help="dead-letter queue directory (the ingest --dlq-dir, or "
        "its state directory)",
    )
    p_sdlq.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="newest entries to print (default 20; <= 0 for all)",
    )
    p_sdlq.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )
    p_sdlq.set_defaults(func=cmd_stream_dlq)

    p_det = sub.add_parser("detect", help="apply Algorithm 2 thresholds")
    p_det.add_argument("--world", required=True)
    p_det.add_argument(
        "--scores-prefix",
        required=True,
        help="prefix used with 'estimate'",
    )
    p_det.add_argument("--tau", type=float, default=0.98)
    p_det.add_argument("--rho", type=float, default=10.0)
    p_det.add_argument(
        "--limit", type=int, default=25, help="max candidates to print"
    )
    p_det.add_argument(
        "--explain",
        type=int,
        default=0,
        help="print contribution review sheets for the top N candidates",
    )
    p_det.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed input lines instead of failing",
    )
    p_det.set_defaults(func=cmd_detect)

    p_aud = sub.add_parser(
        "audit-core",
        help="audit a stored good core for anomalies (exit 5 if dirty)",
    )
    p_aud.add_argument("--world", required=True, help="bundle directory")
    p_aud.add_argument(
        "--core",
        default=None,
        help="core host list (default: <world>/core.hosts)",
    )
    p_aud.add_argument(
        "--gamma",
        type=float,
        default=0.85,
        help="good-fraction scaling; <= 0 for the unscaled core jump",
    )
    p_aud.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        metavar="M",
        help="flag core members with relative mass >= M even without a "
        "spam label (default 0.5)",
    )
    p_aud.add_argument(
        "--repaired-core-out",
        default=None,
        metavar="FILE",
        help="write the repaired core (flagged members removed) as a "
        "host list",
    )
    p_aud.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache (graphs, default 8)",
    )
    p_aud.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="accepted for flag parity with 'estimate'",
    )
    p_aud.add_argument(
        "--lenient",
        action="store_true",
        help="skip-and-warn on malformed input lines instead of failing",
    )
    p_aud.set_defaults(func=cmd_audit_core)

    p_rep = sub.add_parser(
        "reproduce", help="re-run a paper experiment by id"
    )
    p_rep.add_argument(
        "--experiment",
        default="all",
        help="DESIGN.md experiment id (T1, F4, A1, FW1, ...) or 'all'",
    )
    p_rep.add_argument("--scale", default="small", choices=sorted(_SCALES))
    p_rep.add_argument("--seed", type=int, default=7)
    p_rep.add_argument(
        "--cache-size",
        type=_positive_int,
        default=8,
        help="bound of the operator LRU cache used by the solves",
    )
    p_rep.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="process count for Monte-Carlo stages (deterministic for "
        "any worker count)",
    )
    p_rep.add_argument(
        "--out",
        default=None,
        help="also write the reproduced tables as a Markdown report",
    )
    p_rep.set_defaults(func=cmd_reproduce)

    return parser


def run(args: argparse.Namespace) -> int:
    """Dispatch a parsed namespace, mapping failures to exit codes.

    Each user-facing failure class prints a single line to stderr and
    returns its own code, so operators can script against the pipeline
    (retry on 3, alert on 4, ...).  ``--traceback`` re-raises for
    debugging.
    """
    try:
        return args.func(args)
    except KeyboardInterrupt:
        if args.traceback:
            raise
        print("repro-spam: interrupted", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ConvergenceError as exc:
        if args.traceback:
            raise
        print(f"repro-spam: solver did not converge: {exc}", file=sys.stderr)
        return EXIT_CONVERGENCE
    except (
        FileNotFoundError,
        GraphFormatError,
        GraphIOError,
        DeltaError,
        CheckpointError,
    ) as exc:
        # GraphFormatError covers TruncatedFileError, GraphIOError the
        # shard-store family; these are all "your input files are
        # missing or broken"
        if args.traceback:
            raise
        print(f"repro-spam: {exc}", file=sys.stderr)
        return EXIT_DATA
    except (argparse.ArgumentTypeError, ValueError, ReproError) as exc:
        if args.traceback:
            raise
        print(f"repro-spam: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


def _run_traced(args: argparse.Namespace, argv: Sequence[str]) -> int:
    """Run one command under an enabled telemetry, then persist it.

    The whole command executes inside a ``cli:<command>`` root span; on
    the way out the trace is flushed, the manifest is written next to it
    and the metrics snapshot (if requested) is dumped as JSON.  Telemetry
    failures never mask the command's own exit code.
    """
    import json

    from .obs import (
        JsonlSink,
        Telemetry,
        manifest_path_for,
        set_telemetry,
        write_manifest,
    )

    trace_path: Optional[Path] = None
    sink = None
    if args.trace_out:
        trace_path = Path(args.trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        sink = JsonlSink(trace_path)
    telemetry = Telemetry(sink=sink)
    previous = set_telemetry(telemetry)
    code = EXIT_ERROR
    try:
        with telemetry.span(f"cli:{args.command}"):
            code = run(args)
        return code
    finally:
        set_telemetry(previous)
        if trace_path is not None:
            write_manifest(
                telemetry,
                manifest_path_for(trace_path),
                argv=list(argv),
                exit_code=code,
                trace_path=trace_path,
            )
        if args.metrics_out:
            metrics_path = Path(args.metrics_out)
            metrics_path.parent.mkdir(parents=True, exist_ok=True)
            metrics_path.write_text(
                json.dumps(telemetry.snapshot(), indent=2) + "\n",
                encoding="utf-8",
            )
        telemetry.close()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-spam`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    wants_telemetry = (
        not args.no_telemetry
        and (args.trace_out is not None or args.metrics_out is not None)
    )
    if not wants_telemetry:
        return run(args)
    return _run_traced(args, argv if argv is not None else sys.argv[1:])


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
