"""The paper's primary contribution: linear PageRank, PageRank
contributions, spam-mass estimation and the mass-based detector."""

from .combined import (
    CombinedEstimates,
    combine_average,
    combine_weighted,
    estimate_combined_mass,
)
from .contribution import (
    contribution_by_enumeration,
    contribution_matrix,
    contribution_vector,
    enumerate_walks,
    link_contribution_exact,
    link_contribution_first_order,
    walk_contribution,
    walk_weight,
)
from .detector import (
    DetectionResult,
    DetectionUpdate,
    MassDetector,
    detect_spam,
)
from .mass import (
    DEFAULT_GAMMA,
    MassEstimates,
    blacklist_mass,
    estimate_spam_mass,
    true_relative_mass,
    true_spam_mass,
)
from .explain import MassExplanation, contributions_to, explain_mass
from .montecarlo import MonteCarloResult, pagerank_montecarlo
from .pagerank import (
    DEFAULT_DAMPING,
    core_jump_vector,
    indicator_jump_vector,
    pagerank,
    pagerank_from_matrix,
    scale_scores,
    scaled_core_jump_vector,
    unscale_scores,
    uniform_jump_vector,
)
from .solvers import SOLVERS, ConvergenceError, SolverResult, solve

__all__ = [
    "DEFAULT_DAMPING",
    "DEFAULT_GAMMA",
    "pagerank",
    "pagerank_from_matrix",
    "uniform_jump_vector",
    "core_jump_vector",
    "scaled_core_jump_vector",
    "indicator_jump_vector",
    "scale_scores",
    "unscale_scores",
    "SolverResult",
    "ConvergenceError",
    "solve",
    "SOLVERS",
    "MonteCarloResult",
    "pagerank_montecarlo",
    "contributions_to",
    "MassExplanation",
    "explain_mass",
    "walk_weight",
    "walk_contribution",
    "enumerate_walks",
    "contribution_by_enumeration",
    "contribution_vector",
    "contribution_matrix",
    "link_contribution_exact",
    "link_contribution_first_order",
    "MassEstimates",
    "true_spam_mass",
    "true_relative_mass",
    "estimate_spam_mass",
    "blacklist_mass",
    "MassDetector",
    "DetectionResult",
    "DetectionUpdate",
    "detect_spam",
    "CombinedEstimates",
    "combine_average",
    "combine_weighted",
    "estimate_combined_mass",
]
