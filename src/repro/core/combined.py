"""Combined mass estimators using both a white-list and a black-list.

Section 3.4 sketches the situation where, besides the good core
``Ṽ⁺``, a spam core ``Ṽ⁻`` (black-list) is also available.  Then the
absolute mass can be estimated from both sides:

* white-list estimate ``M̃ = p − p'`` (what the paper's experiments
  use), and
* black-list estimate ``M̂ = PR(v^{Ṽ⁻})`` — the known spam nodes'
  direct PageRank contribution.

The paper proposes the simple average ``(M̃ + M̂)/2`` and mentions more
sophisticated schemes, "e.g., a weighted average where the weights
depend on the relative sizes of ``Ṽ⁻`` and ``Ṽ⁺`` with respect to the
estimated sizes of ``V⁻`` and ``V⁺``".  Both are implemented here:
:func:`combine_average` and :func:`combine_weighted` (which weights each
estimate by the coverage of its core, so a tiny black-list contributes
little).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.webgraph import WebGraph
from .mass import (
    DEFAULT_GAMMA,
    MassEstimates,
    blacklist_mass,
    estimate_spam_mass,
)
from .pagerank import DEFAULT_DAMPING

__all__ = [
    "CombinedEstimates",
    "combine_average",
    "combine_weighted",
    "estimate_combined_mass",
]


class CombinedEstimates:
    """Absolute/relative mass estimates fused from both cores.

    Attributes
    ----------
    whitelist:
        The good-core :class:`MassEstimates` (provides ``p`` and ``M̃``).
    blacklist_absolute:
        The black-list estimate ``M̂``.
    absolute:
        The fused absolute-mass estimate.
    relative:
        The fused estimate divided by PageRank (0 where PageRank is 0),
        clipped to at most 1 — no node's mass can exceed its PageRank.
    weight_white:
        The weight that was applied to the white-list estimate
        (``0.5`` for the plain average).
    """

    __slots__ = (
        "whitelist",
        "blacklist_absolute",
        "absolute",
        "relative",
        "weight_white",
    )

    def __init__(
        self,
        whitelist: MassEstimates,
        blacklist_absolute: np.ndarray,
        absolute: np.ndarray,
        weight_white: float,
    ) -> None:
        self.whitelist = whitelist
        self.blacklist_absolute = blacklist_absolute
        self.absolute = absolute
        self.weight_white = weight_white
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = absolute / whitelist.pagerank
        rel[~np.isfinite(rel)] = 0.0
        self.relative = np.minimum(rel, 1.0)


def combine_average(
    whitelist: MassEstimates, blacklist_absolute: np.ndarray
) -> CombinedEstimates:
    """The paper's simple combination ``(M̃ + M̂) / 2``."""
    if blacklist_absolute.shape != whitelist.absolute.shape:
        raise ValueError("estimate vectors must have identical shapes")
    fused = 0.5 * (whitelist.absolute + blacklist_absolute)
    return CombinedEstimates(whitelist, blacklist_absolute, fused, 0.5)


def combine_weighted(
    whitelist: MassEstimates,
    blacklist_absolute: np.ndarray,
    *,
    good_core_size: int,
    spam_core_size: int,
    est_good_size: int,
    est_spam_size: int,
) -> CombinedEstimates:
    """Coverage-weighted combination (the paper's suggested refinement).

    Each estimate is weighted by how much of its underlying set the core
    covers: ``cov⁺ = |Ṽ⁺| / |V⁺|`` for the white-list and
    ``cov⁻ = |Ṽ⁻| / |V⁻|`` for the black-list, then normalized.  With
    equal coverages this reduces to the plain average; with an empty
    black-list it degenerates to the white-list estimate alone.
    """
    if blacklist_absolute.shape != whitelist.absolute.shape:
        raise ValueError("estimate vectors must have identical shapes")
    for name, value in (
        ("good_core_size", good_core_size),
        ("spam_core_size", spam_core_size),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative")
    if est_good_size <= 0 or est_spam_size <= 0:
        raise ValueError("estimated set sizes must be positive")
    coverage_white = min(good_core_size / est_good_size, 1.0)
    coverage_black = min(spam_core_size / est_spam_size, 1.0)
    total = coverage_white + coverage_black
    if total == 0.0:
        raise ValueError("at least one core must be non-empty")
    weight_white = coverage_white / total
    fused = (
        weight_white * whitelist.absolute
        + (1.0 - weight_white) * blacklist_absolute
    )
    return CombinedEstimates(
        whitelist, blacklist_absolute, fused, weight_white
    )


def estimate_combined_mass(
    graph: WebGraph,
    good_core: Sequence[int],
    spam_core: Sequence[int],
    *,
    damping: float = DEFAULT_DAMPING,
    gamma: Optional[float] = DEFAULT_GAMMA,
    weighted: bool = False,
    est_good_size: Optional[int] = None,
    est_spam_size: Optional[int] = None,
    tol: float = 1e-12,
    method: str = "jacobi",
) -> CombinedEstimates:
    """End-to-end combined estimation from both cores.

    With ``weighted=False`` (default) uses the plain average; with
    ``weighted=True`` the coverage-weighted scheme, for which the
    estimated true set sizes must be supplied (defaults: ``γ·n`` good,
    ``(1 − γ)·n`` spam, consistent with the γ convention).
    """
    whitelist = estimate_spam_mass(
        graph, good_core, damping=damping, gamma=gamma, tol=tol, method=method
    )
    black = blacklist_mass(
        graph, spam_core, damping=damping, tol=tol, method=method
    )
    if not weighted:
        return combine_average(whitelist, black)
    n = graph.num_nodes
    g = gamma if gamma is not None else DEFAULT_GAMMA
    if est_good_size is None:
        est_good_size = max(int(round(g * n)), 1)
    if est_spam_size is None:
        est_spam_size = max(int(round((1.0 - g) * n)), 1)
    return combine_weighted(
        whitelist,
        black,
        good_core_size=len(list(good_core)),
        spam_core_size=len(list(spam_core)),
        est_good_size=est_good_size,
        est_spam_size=est_spam_size,
    )
