"""PageRank contributions (Section 3.2, Theorems 1 and 2).

The contribution of node ``x`` to node ``y`` over a walk
``W = x₀ … x_k`` is

.. math::

    q_y^W = c^k\\, \\pi(W)\\, (1 - c)\\, v_x ,
    \\qquad \\pi(W) = \\prod_{i=0}^{k-1} 1/\\mathrm{out}(x_i),

the total contribution ``q_y^x`` sums over all walks in ``W_{xy}``
(plus, for ``x = y``, a virtual zero-length circuit of weight 1).  The
two theorems give the practical handles:

* **Theorem 1** — ``p_y = Σ_x q_y^x``: PageRank decomposes exactly into
  per-source contributions.
* **Theorem 2** — the vector ``qˣ`` of ``x``'s contributions to every
  node equals ``PR(vˣ)`` where ``vˣ`` zeroes the jump everywhere but at
  ``x``; by linearity this extends to any subset ``U``:
  ``q^U = PR(v^U)``.

This module provides both the *linear-system* computation (used by the
mass estimators) and a *walk-enumeration* computation (exponential, for
small graphs) so the theorems can be verified against each other in
tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.webgraph import WebGraph
from .pagerank import (
    DEFAULT_DAMPING,
    indicator_jump_vector,
    pagerank,
    uniform_jump_vector,
)

__all__ = [
    "walk_weight",
    "walk_contribution",
    "enumerate_walks",
    "contribution_by_enumeration",
    "contribution_vector",
    "contribution_matrix",
    "link_contribution_exact",
    "link_contribution_first_order",
]


# ----------------------------------------------------------------------
# walk-level definitions (exact, exponential — for small graphs/tests)
# ----------------------------------------------------------------------


def walk_weight(graph: WebGraph, walk: Sequence[int]) -> float:
    """The weight ``π(W) = Π 1/out(xᵢ)`` of a walk.

    ``walk`` is the node sequence ``x₀, …, x_k``; every consecutive pair
    must be an edge of the graph.
    """
    if len(walk) < 1:
        raise ValueError("a walk must contain at least one node")
    weight = 1.0
    for i in range(len(walk) - 1):
        u, w = walk[i], walk[i + 1]
        if not graph.has_edge(u, w):
            raise ValueError(f"({u}, {w}) is not an edge; not a walk")
        weight *= 1.0 / graph.out_degree(u)
    return weight


def walk_contribution(
    graph: WebGraph,
    walk: Sequence[int],
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
) -> float:
    """The contribution ``q_y^W = c^k π(W) (1 − c) v_x`` of one walk."""
    if v is None:
        v = uniform_jump_vector(graph.num_nodes)
    k = len(walk) - 1
    return (
        damping**k
        * walk_weight(graph, walk)
        * (1.0 - damping)
        * float(v[walk[0]])
    )


def enumerate_walks(
    graph: WebGraph, source: int, target: int, max_length: int
) -> Iterator[Tuple[int, ...]]:
    """Yield every walk from ``source`` to ``target`` of length 1..max.

    Walks may revisit nodes (they are walks, not paths), so cyclic
    graphs have infinitely many — ``max_length`` truncates.  The virtual
    zero-length circuit of Section 3.2 is *not* yielded; callers add its
    ``(1 − c) v_x`` term when ``source == target``.
    """
    if max_length < 1:
        return
    # simple DFS over walk prefixes
    prefixes: List[Tuple[int, ...]] = [(source,)]
    while prefixes:
        prefix = prefixes.pop()
        last = prefix[-1]
        for nxt in graph.out_neighbors(last):
            extended = prefix + (int(nxt),)
            if int(nxt) == target:
                yield extended
            if len(extended) - 1 < max_length:
                prefixes.append(extended)


def contribution_by_enumeration(
    graph: WebGraph,
    source: int,
    target: int,
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
    max_length: int = 60,
) -> float:
    """Approximate ``q_y^x`` by summing walks up to ``max_length``.

    Because each extra edge multiplies a walk's term by at most ``c``,
    the truncation error after length ``L`` is ``O(c^L)``; the default
    ``L = 60`` puts it near 1e-5 of the total for ``c = 0.85``.  Exact
    on acyclic graphs once ``max_length`` exceeds the longest path.
    """
    if v is None:
        v = uniform_jump_vector(graph.num_nodes)
    total = 0.0
    if source == target:
        total += (1.0 - damping) * float(v[source])  # virtual circuit Z_x
    for walk in enumerate_walks(graph, source, target, max_length):
        total += walk_contribution(graph, walk, v, damping)
    return total


# ----------------------------------------------------------------------
# linear-system computation (Theorem 2)
# ----------------------------------------------------------------------


def contribution_vector(
    graph: WebGraph,
    sources: Iterable[int],
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
    *,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    method: str = "jacobi",
) -> np.ndarray:
    """Total contribution ``q^U`` of a source set ``U`` to every node.

    Computed as ``PR(v^U)`` per Theorem 2 and the linearity corollary.
    ``v`` is the underlying jump distribution (uniform by default); the
    restriction ``v^U`` is built internally.
    """
    v_u = indicator_jump_vector(graph.num_nodes, sources, v)
    return pagerank(
        graph, v_u, damping=damping, tol=tol, max_iter=max_iter, method=method
    ).scores


def contribution_matrix(
    graph: WebGraph,
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """Dense matrix ``Q`` with ``Q[x, y] = q_y^x`` (small graphs only).

    Derivation: Theorem 2 gives ``qˣ = (1 − c)(I − c Tᵀ)⁻¹ vˣ``, so the
    stacked matrix is ``Q = (1 − c) · diag(v) · (I − c T)⁻¹``.  Columns
    of ``Q`` sum to PageRank scores (Theorem 1) — asserted in tests.
    """
    n = graph.num_nodes
    if n > 4000:
        raise ValueError(
            "contribution_matrix densifies an n x n matrix; "
            f"n={n} is too large (limit 4000)"
        )
    if v is None:
        v = uniform_jump_vector(n)
    from ..graph.ops import transition_matrix  # local import, avoids cycle

    t_dense = transition_matrix(graph).toarray()
    resolvent = np.linalg.inv(np.eye(n) - damping * t_dense)
    return (1.0 - damping) * (v[:, None] * resolvent)


# ----------------------------------------------------------------------
# link contributions (the second naive scheme of Section 3.1)
# ----------------------------------------------------------------------


def link_contribution_exact(
    graph: WebGraph,
    source: int,
    target: int,
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
    *,
    tol: float = 1e-12,
) -> float:
    """Contribution of the link ``(source, target)`` to ``target``'s
    PageRank, defined (Section 3.1) as the change in PageRank induced by
    removing the link.

    Recomputes PageRank on the graph without the edge — exact but one
    full solve per link; meant for the naive-scheme baseline and small
    analyses.
    """
    if not graph.has_edge(source, target):
        raise ValueError(f"({source}, {target}) is not an edge")
    if v is None:
        v = uniform_jump_vector(graph.num_nodes)
    edges = [(u, w) for (u, w) in graph.edges() if (u, w) != (source, target)]
    pruned = WebGraph.from_edges(graph.num_nodes, edges, graph.names)
    p_full = pagerank(graph, v, damping=damping, tol=tol).scores
    p_pruned = pagerank(pruned, v, damping=damping, tol=tol).scores
    return float(p_full[target] - p_pruned[target])


def link_contribution_first_order(
    graph: WebGraph,
    source: int,
    target: int,
    scores: np.ndarray,
    damping: float = DEFAULT_DAMPING,
) -> float:
    """First-order link contribution ``c · p_source / out(source)``.

    The one-step approximation of the exact removal-based contribution;
    exact when ``source`` lies on no circuit through ``target``.
    """
    if not graph.has_edge(source, target):
        raise ValueError(f"({source}, {target}) is not an edge")
    return damping * float(scores[source]) / graph.out_degree(source)
