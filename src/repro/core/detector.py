"""Mass-based spam detection — Algorithm 2 of the paper (Section 3.6).

The detector takes a good core ``Ṽ⁺``, a **relative-mass threshold**
``τ`` and a **PageRank threshold** ``ρ``; a node ``x`` is labeled a spam
candidate when

* ``p_x ≥ ρ`` — it has enough PageRank to be a boosting beneficiary at
  all (and enough contributing evidence for the estimate to be stable:
  the paper gives three reasons for the PageRank filter), and
* ``m̃_x ≥ τ`` — a τ-fraction or more of that PageRank is estimated to
  come from spam.

The paper applies ``ρ`` on *scaled* PageRank (``ρ = 10`` in the
experiments, i.e. ten times the minimum score); :class:`MassDetector`
follows that convention by default.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..graph.webgraph import WebGraph
from ..obs import get_telemetry
from .mass import DEFAULT_GAMMA, MassEstimates, estimate_spam_mass
from .pagerank import DEFAULT_DAMPING

__all__ = [
    "DetectionResult",
    "DetectionUpdate",
    "MassDetector",
    "detect_spam",
]


class DetectionResult:
    """Outcome of a detection run.

    Attributes
    ----------
    candidates:
        Sorted array of node ids labeled spam candidates (the set ``S``
        of Algorithm 2).
    candidate_mask:
        Boolean per-node mask of the same labeling.
    eligible_mask:
        Boolean mask of nodes that passed the PageRank filter
        (``p_x ≥ ρ``) and therefore had their mass estimate inspected.
    tau, rho:
        The thresholds used.
    estimates:
        The :class:`~repro.core.mass.MassEstimates` the decision was
        based on.
    """

    __slots__ = ("candidates", "candidate_mask", "eligible_mask", "tau", "rho", "estimates")

    def __init__(
        self,
        candidate_mask: np.ndarray,
        eligible_mask: np.ndarray,
        tau: float,
        rho: float,
        estimates: MassEstimates,
    ) -> None:
        self.candidate_mask = candidate_mask
        self.eligible_mask = eligible_mask
        self.candidates = np.flatnonzero(candidate_mask)
        self.tau = tau
        self.rho = rho
        self.estimates = estimates

    @property
    def num_candidates(self) -> int:
        """Size of the spam-candidate set ``S``."""
        return len(self.candidates)

    @property
    def num_eligible(self) -> int:
        """Number of nodes that passed the PageRank filter."""
        return int(self.eligible_mask.sum())

    def is_candidate(self, node: int) -> bool:
        """Whether ``node`` was labeled a spam candidate."""
        return bool(self.candidate_mask[node])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectionResult(candidates={self.num_candidates}, "
            f"eligible={self.num_eligible}, tau={self.tau}, rho={self.rho})"
        )


class DetectionUpdate:
    """Result of an incremental re-labeling pass.

    Attributes
    ----------
    result:
        The post-update :class:`DetectionResult` — identical, node for
        node, to a fresh :meth:`MassDetector.detect` on the new
        estimates.
    newly_flagged:
        Node ids that crossed *into* the candidate set.
    newly_cleared:
        Node ids that crossed *out* of it.
    relabeled:
        Total number of label flips (``len(newly_flagged) +
        len(newly_cleared)``).
    """

    __slots__ = ("result", "newly_flagged", "newly_cleared")

    def __init__(
        self,
        result: DetectionResult,
        newly_flagged: np.ndarray,
        newly_cleared: np.ndarray,
    ) -> None:
        self.result = result
        self.newly_flagged = newly_flagged
        self.newly_cleared = newly_cleared

    @property
    def relabeled(self) -> int:
        return len(self.newly_flagged) + len(self.newly_cleared)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DetectionUpdate(+{len(self.newly_flagged)}, "
            f"-{len(self.newly_cleared)}, "
            f"candidates={self.result.num_candidates})"
        )


class MassDetector:
    """Algorithm 2: label spam candidates by estimated relative mass.

    Parameters
    ----------
    tau:
        Relative-mass threshold ``τ`` in ``(-inf, 1]``.  The paper finds
        ``τ = 0.98`` gives near-perfect precision on the Yahoo! graph.
    rho:
        PageRank threshold ``ρ``.  Interpreted on the *scaled* score
        axis (min score = 1) when ``scaled_rho`` is true — the paper
        uses ``ρ = 10`` that way — otherwise on raw scores.
    scaled_rho:
        See above; default ``True``.
    """

    def __init__(
        self, tau: float, rho: float, *, scaled_rho: bool = True
    ) -> None:
        if tau > 1.0:
            raise ValueError(
                f"tau={tau} can never fire: relative mass is at most 1"
            )
        if rho < 0.0:
            raise ValueError("rho must be non-negative")
        self.tau = tau
        self.rho = rho
        self.scaled_rho = scaled_rho

    def detect(self, estimates: MassEstimates) -> DetectionResult:
        """Apply the thresholds to precomputed mass estimates."""
        tele = get_telemetry()
        with tele.span("detect", tau=self.tau, rho=self.rho) as sp:
            if self.scaled_rho:
                scores = estimates.scaled_pagerank()
            else:
                scores = estimates.pagerank
            eligible = scores >= self.rho
            candidates = eligible & (estimates.relative >= self.tau)
            result = DetectionResult(
                candidates, eligible, self.tau, self.rho, estimates
            )
            if tele.enabled:
                sp.set("candidates", result.num_candidates)
                sp.set("eligible", result.num_eligible)
                tele.set_gauge("detect.candidates", result.num_candidates)
            return result

    def update(
        self, previous: DetectionResult, estimates: MassEstimates
    ) -> DetectionUpdate:
        """Re-label only the nodes whose thresholds were crossed.

        Starts from ``previous``'s labeling and flips exactly the nodes
        whose eligibility (``p ≥ ρ``) or relative mass (``m̃ ≥ τ``)
        crossed a threshold under the new ``estimates`` — the usual
        case after an incremental mass update, where the vast majority
        of nodes kept their labels.  The produced labeling is identical
        to a fresh :meth:`detect` (the update tests pin this), but the
        result also reports *which* nodes flipped, which is the signal
        a deployment actually acts on between crawls.
        """
        if estimates.num_nodes != len(previous.candidate_mask):
            raise ValueError(
                f"estimates cover {estimates.num_nodes} nodes, previous "
                f"labeling covers {len(previous.candidate_mask)}"
            )
        tele = get_telemetry()
        with tele.span(
            "detect:update", tau=self.tau, rho=self.rho
        ) as sp:
            if self.scaled_rho:
                scores = estimates.scaled_pagerank()
            else:
                scores = estimates.pagerank
            eligible = scores >= self.rho
            should_flag = eligible & (estimates.relative >= self.tau)
            crossed = should_flag != previous.candidate_mask
            candidate_mask = previous.candidate_mask.copy()
            candidate_mask[crossed] = should_flag[crossed]
            newly_flagged = np.flatnonzero(
                crossed & ~previous.candidate_mask
            )
            newly_cleared = np.flatnonzero(
                crossed & previous.candidate_mask
            )
            result = DetectionResult(
                candidate_mask, eligible, self.tau, self.rho, estimates
            )
            update = DetectionUpdate(result, newly_flagged, newly_cleared)
            if tele.enabled:
                sp.set("candidates", result.num_candidates)
                sp.set("newly_flagged", len(newly_flagged))
                sp.set("newly_cleared", len(newly_cleared))
                tele.set_gauge("detect.candidates", result.num_candidates)
                tele.inc("detect.relabeled", update.relabeled)
            return update

    def detect_on_graph(
        self,
        graph: WebGraph,
        good_core: Sequence[int],
        *,
        damping: float = DEFAULT_DAMPING,
        gamma: Optional[float] = DEFAULT_GAMMA,
        tol: float = 1e-12,
        method: str = "jacobi",
    ) -> DetectionResult:
        """End-to-end Algorithm 2: estimate mass, then threshold."""
        estimates = estimate_spam_mass(
            graph,
            good_core,
            damping=damping,
            gamma=gamma,
            tol=tol,
            method=method,
        )
        return self.detect(estimates)


def detect_spam(
    graph: WebGraph,
    good_core: Sequence[int],
    *,
    tau: float = 0.98,
    rho: float = 10.0,
    damping: float = DEFAULT_DAMPING,
    gamma: Optional[float] = DEFAULT_GAMMA,
    tol: float = 1e-12,
    method: str = "jacobi",
) -> DetectionResult:
    """One-call convenience wrapper around :class:`MassDetector`.

    Defaults follow the paper's experimental choices: ``τ = 0.98``
    (near-perfect precision), scaled ``ρ = 10``, ``c = 0.85``,
    ``γ = 0.85``.
    """
    detector = MassDetector(tau, rho)
    return detector.detect_on_graph(
        graph, good_core, damping=damping, gamma=gamma, tol=tol, method=method
    )
