"""Explaining mass estimates: who contributes to a node's PageRank.

Section 3.2 defines the contribution ``q_y^x`` of every source ``x`` to
a target ``y``; Theorem 2 computes the *forward* direction (one source,
all targets) as ``PR(vˣ)``.  For manual review of a flagged candidate
the operator needs the *backward* direction — one target, all sources —
which Jeh & Widom's inverse-P-distance formulation (the paper's basis
for Section 3.2) provides: from ``Q = (1 − c)·diag(v)·(I − cT)⁻¹``,
the column of contributions *to* ``y`` is

.. math::

    q_y^{\\cdot} = (1 - c)\\, v \\odot z, \\qquad (I - cT)\\, z = e_y ,

one sparse linear solve on the *untransposed* system per explained
node.  On top of that, :func:`explain_mass` produces the review sheet
a search-engine editor would want for an Algorithm 2 candidate: the
top contributing sources with their shares, split into known-good
(core), suspected-spam and unknown.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..graph.ops import transition_matrix
from ..graph.webgraph import WebGraph
from .pagerank import DEFAULT_DAMPING, uniform_jump_vector

__all__ = ["contributions_to", "MassExplanation", "explain_mass"]


def contributions_to(
    graph: WebGraph,
    target: int,
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
) -> np.ndarray:
    """The vector ``q_target^x`` of every node's contribution to
    ``target`` (sums to the target's PageRank, per Theorem 1).

    One sparse LU solve of ``(I − cT) z = e_target``; suitable for
    explaining individual candidates, not for all-pairs work (use
    :func:`~repro.core.contribution.contribution_matrix` on small
    graphs for that).
    """
    graph._check_node(target)
    n = graph.num_nodes
    if v is None:
        v = uniform_jump_vector(n)
    elif v.shape != (n,):
        raise ValueError(f"jump vector has shape {v.shape}, expected ({n},)")
    if not (0.0 < damping < 1.0):
        raise ValueError(f"damping factor must be in (0, 1), got {damping}")
    system = sparse.identity(n, format="csc") - damping * transition_matrix(
        graph
    ).tocsc()
    unit = np.zeros(n, dtype=np.float64)
    unit[target] = 1.0
    z = sparse_linalg.spsolve(system, unit)
    return (1.0 - damping) * v * np.asarray(z, dtype=np.float64).ravel()


class MassExplanation:
    """Review sheet for one detection candidate.

    Attributes
    ----------
    node:
        The explained node id.
    pagerank:
        Its PageRank (unscaled).
    contributions:
        Full per-source contribution vector (sums to ``pagerank``).
    core_share, spam_share, unknown_share:
        Fractions of the node's PageRank contributed by core members,
        by known/suspected spam nodes, and by everything else
        (including the node itself).
    top_sources:
        ``(source_id, contribution, kind)`` rows, largest first, where
        ``kind`` ∈ {"core", "spam", "other", "self"}.
    """

    __slots__ = (
        "node",
        "pagerank",
        "contributions",
        "core_share",
        "spam_share",
        "unknown_share",
        "top_sources",
    )

    def __init__(
        self,
        node: int,
        pagerank: float,
        contributions: np.ndarray,
        core_share: float,
        spam_share: float,
        unknown_share: float,
        top_sources: List[tuple],
    ) -> None:
        self.node = node
        self.pagerank = pagerank
        self.contributions = contributions
        self.core_share = core_share
        self.spam_share = spam_share
        self.unknown_share = unknown_share
        self.top_sources = top_sources

    def render(self, graph: WebGraph) -> str:
        """Human-readable review sheet."""
        lines = [
            f"node {graph.name_of(self.node)} — PageRank contribution "
            "breakdown:",
            f"  core (known good): {self.core_share:6.1%}",
            f"  suspected spam:    {self.spam_share:6.1%}",
            f"  other/unknown:     {self.unknown_share:6.1%}",
            "  top sources:",
        ]
        for source, contribution, kind in self.top_sources:
            share = contribution / self.pagerank if self.pagerank else 0.0
            lines.append(
                f"    {graph.name_of(int(source)):<40} "
                f"{share:6.1%}  [{kind}]"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MassExplanation(node={self.node}, core={self.core_share:.2f}, "
            f"spam={self.spam_share:.2f})"
        )


def explain_mass(
    graph: WebGraph,
    node: int,
    core: Sequence[int],
    *,
    suspected_spam: Optional[Sequence[int]] = None,
    damping: float = DEFAULT_DAMPING,
    top: int = 10,
) -> MassExplanation:
    """Explain where a candidate's PageRank comes from.

    ``suspected_spam`` is whatever black-list/candidate set the
    operator has (possibly a previous detection run); sources in
    neither set are "other".  The explained node's own jump
    contribution is labelled "self".
    """
    if top < 1:
        raise ValueError("top must be positive")
    contributions = contributions_to(graph, node, damping=damping)
    total = float(contributions.sum())
    core_mask = np.zeros(graph.num_nodes, dtype=bool)
    core_arr = np.asarray(list(core), dtype=np.int64)
    if len(core_arr):
        core_mask[core_arr] = True
    spam_mask = np.zeros(graph.num_nodes, dtype=bool)
    if suspected_spam is not None:
        spam_arr = np.asarray(list(suspected_spam), dtype=np.int64)
        if len(spam_arr):
            spam_mask[spam_arr] = True
    spam_mask &= ~core_mask  # white-list wins on conflict

    def share(mask: np.ndarray) -> float:
        return float(contributions[mask].sum()) / total if total else 0.0

    core_share = share(core_mask)
    spam_share = share(spam_mask)
    order = np.argsort(-contributions, kind="stable")[:top]
    top_sources = []
    for source in order:
        source = int(source)
        if contributions[source] <= 0:
            break
        if source == node:
            kind = "self"
        elif core_mask[source]:
            kind = "core"
        elif spam_mask[source]:
            kind = "spam"
        else:
            kind = "other"
        top_sources.append((source, float(contributions[source]), kind))
    return MassExplanation(
        node,
        total,
        contributions,
        core_share,
        spam_share,
        1.0 - core_share - spam_share,
        top_sources,
    )
