"""Spam mass: definitions and estimators (Sections 3.3–3.5).

Given a partitioning of the web into good nodes ``V⁺`` and spam nodes
``V⁻``, the **absolute spam mass** of ``x`` is the PageRank contribution
it receives from spam,

.. math:: M_x = q_x^{V^-},

and the **relative spam mass** is the spam fraction of its PageRank,
``m_x = M_x / p_x``.  Perfect knowledge of the partition is
unrealistic; Section 3.4 estimates mass from a known *good core*
``Ṽ⁺`` via two PageRank vectors:

.. math::

    \\tilde M = p - p', \\qquad
    \\tilde m = 1 - p'_x / p_x,

where ``p = PR(v)`` (uniform jump) and ``p' = PR(w)`` is a *core-based*
PageRank.  Section 3.5 observes that an unscaled core vector
``v^{Ṽ⁺}`` makes ``‖p'‖ ≪ ‖p‖`` (all mass estimates collapse onto the
PageRank scores), and fixes it by scaling the core jump to
``w_x = γ/|Ṽ⁺|`` so ``‖w‖ = γ``, the estimated good fraction of the
web.  A consequence embraced by the paper: core members and nodes
heavily supported by the core get *negative* estimated mass.

When a spam core ``Ṽ⁻`` is available instead (or additionally),
``M̂ = PR(v^{Ṽ⁻})`` estimates mass directly; combination schemes live
in :mod:`repro.core.combined`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..graph.delta import DeltaApplication
from ..graph.webgraph import WebGraph
from ..obs import get_telemetry
from .contribution import contribution_vector
from .pagerank import (
    DEFAULT_DAMPING,
    core_jump_vector,
    pagerank_from_matrix,
    scale_scores,
    scaled_core_jump_vector,
    uniform_jump_vector,
)

__all__ = [
    "MassEstimates",
    "true_spam_mass",
    "true_relative_mass",
    "estimate_spam_mass",
    "blacklist_mass",
    "DEFAULT_GAMMA",
]

#: The paper's conservative good-fraction estimate for the 2004 Yahoo!
#: host graph: "at least 15% of the hosts are spam", hence ``γ = 0.85``.
DEFAULT_GAMMA = 0.85


class MassEstimates:
    """Bundle of the vectors produced by a mass-estimation run.

    Attributes
    ----------
    pagerank:
        ``p = PR(v)``, the regular PageRank (uniform jump), unscaled.
    core_pagerank:
        ``p' = PR(w)``, the core-based PageRank, unscaled.
    absolute:
        Estimated absolute mass ``M̃ = p − p'`` (may be negative).
    relative:
        Estimated relative mass ``m̃ = 1 − p'/p``; defined as 0 where
        ``p`` is 0 (a node with no PageRank has no mass of any kind).
    damping, gamma:
        The parameters the estimates were produced with (``gamma`` is
        ``None`` for the unscaled Section 3.4 variant).
    """

    __slots__ = (
        "pagerank",
        "core_pagerank",
        "absolute",
        "relative",
        "damping",
        "gamma",
        "reports",
    )

    def __init__(
        self,
        pagerank: np.ndarray,
        core_pagerank: np.ndarray,
        damping: float,
        gamma: Optional[float],
        reports: Optional[dict] = None,
    ) -> None:
        if pagerank.shape != core_pagerank.shape:
            raise ValueError("score vectors must have identical shapes")
        self.pagerank = pagerank
        self.core_pagerank = core_pagerank
        self.damping = damping
        self.gamma = gamma
        #: ``{"pagerank": RunReport, "core": RunReport}`` when the
        #: estimates were produced under a resilient runtime policy;
        #: ``None`` for plain solves.
        self.reports = reports
        self.absolute = pagerank - core_pagerank
        with np.errstate(divide="ignore", invalid="ignore"):
            rel = 1.0 - core_pagerank / pagerank
        rel[~np.isfinite(rel)] = 0.0
        self.relative = rel

    @property
    def num_nodes(self) -> int:
        """Number of nodes the estimates cover."""
        return len(self.pagerank)

    def scaled_pagerank(self) -> np.ndarray:
        """PageRank scaled by ``n/(1 − c)`` (paper's convention)."""
        return scale_scores(self.pagerank, self.num_nodes, self.damping)

    def scaled_core_pagerank(self) -> np.ndarray:
        """Core-based PageRank under the same scaling."""
        return scale_scores(self.core_pagerank, self.num_nodes, self.damping)

    def scaled_absolute(self) -> np.ndarray:
        """Absolute mass under the same scaling (Table 1 / Figure 6)."""
        return scale_scores(self.absolute, self.num_nodes, self.damping)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MassEstimates(n={self.num_nodes}, c={self.damping}, "
            f"gamma={self.gamma})"
        )


def true_spam_mass(
    graph: WebGraph,
    spam_nodes: Iterable[int],
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
    *,
    tol: float = 1e-12,
    method: str = "jacobi",
) -> np.ndarray:
    """Actual absolute mass ``M = q^{V⁻}`` given full knowledge of
    ``V⁻`` (Definition 1) — the oracle quantity estimators target.
    """
    return contribution_vector(
        graph, spam_nodes, v, damping, tol=tol, method=method
    )


def true_relative_mass(
    graph: WebGraph,
    spam_nodes: Iterable[int],
    v: Optional[np.ndarray] = None,
    damping: float = DEFAULT_DAMPING,
    *,
    tol: float = 1e-12,
    method: str = "jacobi",
) -> np.ndarray:
    """Actual relative mass ``m = M/p`` (Definition 2)."""
    from .pagerank import pagerank  # local import to avoid cycle noise

    mass = true_spam_mass(
        graph, spam_nodes, v, damping, tol=tol, method=method
    )
    scores = pagerank(graph, v, damping=damping, tol=tol, method=method).scores
    with np.errstate(divide="ignore", invalid="ignore"):
        rel = mass / scores
    rel[~np.isfinite(rel)] = 0.0
    return rel


def estimate_spam_mass(
    graph: WebGraph,
    good_core: Sequence[int],
    *,
    damping: float = DEFAULT_DAMPING,
    gamma: Optional[float] = DEFAULT_GAMMA,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    method: str = "jacobi",
    transition_t=None,
    check: bool = True,
    policy=None,
    engine=None,
    previous: Optional[MassEstimates] = None,
) -> MassEstimates:
    """Estimate spam mass from a good core (Definition 3 + Section 3.5).

    Parameters
    ----------
    graph:
        The web graph — or, for incremental re-estimation, a
        :class:`~repro.graph.delta.DeltaApplication` pairing the graph
        the ``previous`` estimates were computed on with its mutated
        successor.
    good_core:
        Node ids of the known-good core ``Ṽ⁺``.  The paper's guidance:
        as large as possible and as broad as possible (orders of
        magnitude larger than a TrustRank seed).
    gamma:
        The estimated fraction of good nodes; the core jump vector is
        scaled to ``‖w‖ = γ``.  Pass ``None`` to reproduce the *unscaled*
        Section 3.4 estimator (useful to demonstrate the ``‖p'‖ ≪ ‖p‖``
        failure mode; see the γ-scaling ablation).
    transition_t:
        Optional pre-built ``Tᵀ`` in CSR form.  Rarely needed anymore:
        without it the solves go through the perf engine, whose
        operator cache already builds ``Tᵀ`` once per graph, and whose
        ``solve_many`` computes ``p`` and ``p'`` in a single batched
        block iteration.  Passing an explicit matrix opts out of both.
    engine:
        Optional :class:`~repro.perf.PagerankEngine`; defaults to the
        process-wide shared engine (:func:`repro.perf.get_engine`).
    check:
        Raise :class:`~repro.errors.ConvergenceError` if either
        PageRank solve fails to converge — mass estimates computed from
        an unconverged vector are garbage, so treating that silently is
        opt-*out* (``check=False``), never the default.
    policy:
        Optional :class:`~repro.runtime.resilient.RuntimePolicy`.  When
        given, both solves run under a :class:`FallbackSolver` —
        divergence escalates down the method chain, budgets degrade to
        best-effort vectors, and checkpoint/resume applies — and the
        per-solve :class:`RunReport` diagnostics land in
        ``MassEstimates.reports``.  ``check=True`` still raises if even
        the fallback chain could not converge.
    previous:
        Optional :class:`MassEstimates` from the graph *before* the
        delta.  Requires ``graph`` to be a
        :class:`~repro.graph.delta.DeltaApplication`; the two PageRank
        vectors are then *updated* by Gauss–Southwell residual pushes
        seeded at the touched nodes
        (:meth:`~repro.perf.engine.PagerankEngine.update_many`) instead
        of re-solved from scratch, converging to the same ``tol``.
    """
    core_list = list(good_core)
    if not core_list:
        raise ValueError("good core must not be empty")
    application = None
    if isinstance(graph, DeltaApplication):
        application = graph
        graph = application.after
    if previous is not None:
        if application is None:
            raise ValueError(
                "previous= needs a DeltaApplication (pairing the old "
                "graph with the mutated one), not a bare WebGraph"
            )
        if policy is not None or transition_t is not None:
            raise ValueError(
                "previous= uses the incremental engine path and cannot "
                "be combined with policy= or transition_t="
            )
        if previous.num_nodes != graph.num_nodes:
            raise ValueError(
                f"previous estimates cover {previous.num_nodes} nodes, "
                f"graph has {graph.num_nodes}"
            )
        if previous.damping != damping or previous.gamma != gamma:
            raise ValueError(
                "previous estimates were computed with different "
                f"parameters (c={previous.damping}, γ={previous.gamma}) "
                f"than requested (c={damping}, γ={gamma})"
            )
    tele = get_telemetry()
    if not tele.enabled:
        return _estimate_spam_mass(
            graph, core_list, damping=damping, gamma=gamma, tol=tol,
            max_iter=max_iter, method=method, transition_t=transition_t,
            check=check, policy=policy, engine=engine, tele=tele,
            application=application, previous=previous,
        )
    with tele.span(
        "mass-estimate",
        core_size=len(core_list),
        gamma=gamma,
        method=method,
        incremental=previous is not None,
    ):
        return _estimate_spam_mass(
            graph, core_list, damping=damping, gamma=gamma, tol=tol,
            max_iter=max_iter, method=method, transition_t=transition_t,
            check=check, policy=policy, engine=engine, tele=tele,
            application=application, previous=previous,
        )


def _estimate_spam_mass(
    graph: WebGraph,
    core_list: list,
    *,
    damping: float,
    gamma: Optional[float],
    tol: float,
    max_iter: int,
    method: str,
    transition_t,
    check: bool,
    policy,
    engine,
    tele,
    application=None,
    previous: Optional[MassEstimates] = None,
) -> MassEstimates:
    """The untraced core of :func:`estimate_spam_mass`."""
    n = graph.num_nodes
    if gamma is None:
        w = core_jump_vector(n, core_list)
    else:
        w = scaled_core_jump_vector(n, core_list, gamma)
    u = uniform_jump_vector(n)

    if previous is not None:
        if engine is None:
            from ..perf import get_engine

            engine = get_engine()
        batch = engine.update_many(
            application,
            np.stack([previous.pagerank, previous.core_pagerank], axis=1),
            np.stack([u, w], axis=1),
            damping=damping,
            tol=tol,
            max_iter=max_iter,
            check=check,
            labels=("pagerank", "core"),
        )
        return MassEstimates(
            batch.scores[:, 0].copy(),
            batch.scores[:, 1].copy(),
            damping,
            gamma,
        )

    if transition_t is None:
        # the engine path: shared cached operator, and (for the default
        # Jacobi) both vectors solved in one batched block iteration
        if engine is None:
            from ..perf import get_engine

            engine = get_engine()
        if policy is not None:
            batch = engine.solve_many(
                graph,
                np.stack([u, w], axis=1),
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                check=check,
                labels=("pagerank", "core"),
                policy=policy,
            )
            return MassEstimates(
                batch.scores[:, 0].copy(),
                batch.scores[:, 1].copy(),
                damping,
                gamma,
                reports=batch.reports,
            )
        if method == "jacobi":
            batch = engine.solve_many(
                graph,
                np.stack([u, w], axis=1),
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                check=check,
                labels=("pagerank", "core"),
            )
            return MassEstimates(
                batch.scores[:, 0].copy(),
                batch.scores[:, 1].copy(),
                damping,
                gamma,
            )
        # non-default solver: sequential solves, cached operator
        transition_t = engine.operator(graph)

    reports = None
    if policy is not None:
        results = {}
        for label, jump in (
            ("pagerank", u),
            ("core", w),
        ):
            solver = policy.make_solver(label, tol=tol, max_iter=max_iter)
            results[label] = solver.solve(
                transition_t, jump, damping=damping, resume=policy.resume
            )
        reports = {label: r.report for label, r in results.items()}
        if check:
            failed = [
                label for label, r in results.items() if not r.converged
            ]
            if failed:
                from ..errors import ConvergenceError

                raise ConvergenceError(
                    "resilient mass estimation did not converge for the "
                    f"{' and '.join(failed)} solve(s); pass check=False "
                    "to accept the best-effort vectors",
                    result=results[failed[0]],
                )
        p = results["pagerank"].scores
        p_core = results["core"].scores
    else:
        # legacy sequential path: two separate solves, spanned apart so
        # traces distinguish p from p′
        with tele.span("solve:p", method=method):
            p = pagerank_from_matrix(
                transition_t,
                u,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                method=method,
                raise_on_divergence=check,
            ).scores
        with tele.span("solve:p_prime", method=method):
            p_core = pagerank_from_matrix(
                transition_t,
                w,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                method=method,
                raise_on_divergence=check,
            ).scores
    return MassEstimates(p, p_core, damping, gamma, reports=reports)


def blacklist_mass(
    graph: WebGraph,
    spam_core: Sequence[int],
    *,
    damping: float = DEFAULT_DAMPING,
    gamma: Optional[float] = None,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    method: str = "jacobi",
) -> np.ndarray:
    """Estimate absolute mass from a known spam core: ``M̂ = PR(v^{Ṽ⁻})``.

    ``gamma`` optionally scales the spam-core jump vector to total
    weight ``1 − γ`` (the estimated *spam* fraction), mirroring the
    Section 3.5 scaling of the good core.  Unscaled by default, as in
    the paper's formula.
    """
    core_list = list(spam_core)
    if not core_list:
        raise ValueError("spam core must not be empty")
    n = graph.num_nodes
    if gamma is None:
        v = core_jump_vector(n, core_list)
    else:
        if not (0.0 <= gamma < 1.0):
            raise ValueError(f"gamma must be in [0, 1), got {gamma}")
        v = scaled_core_jump_vector(n, core_list, 1.0 - gamma)
    from ..perf import get_engine

    transition_t = get_engine().operator(graph)
    return pagerank_from_matrix(
        transition_t,
        v,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
        method=method,
    ).scores
