"""Monte-Carlo PageRank estimation by random-walk simulation.

The paper's Section 2.2 builds PageRank on the random-surfer reading:
scores are proportional to the time a walker following links (and
teleporting with probability ``1 − c``) spends at each node.  The
linear-system view makes that reading *constructive*: expanding
``p = Σ_W c^{|W|} π(W) (1 − c) v`` over walks (the same expansion behind
the Section 3.2 contributions) shows that

.. math::

    p_y = (1 - c)\\, \\mathbb{E}[\\text{visits to } y],

where a walk starts at ``x`` with probability ``v_x``, continues with
probability ``c`` along a uniformly random outlink, and dies at
dangling nodes.  Simulating ``R`` such walks and counting visits gives
an unbiased estimator of the linear PageRank — including for
*unnormalized* ``v`` (walks simply start with total probability
``‖v‖``), so the estimator applies directly to core-based PageRank and
hence to spam-mass estimation.

This is the classic large-scale alternative to iterative solvers
(walks parallelize trivially and support incremental updates); here it
doubles as an independent correctness check on the algebraic solvers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..graph.webgraph import WebGraph
from .pagerank import DEFAULT_DAMPING, uniform_jump_vector

__all__ = ["MonteCarloResult", "pagerank_montecarlo"]


class MonteCarloResult:
    """Outcome of a Monte-Carlo PageRank run.

    Attributes
    ----------
    scores:
        The estimated PageRank vector (same scale as the linear
        solvers' solution).
    num_walks:
        Number of simulated walks.
    total_steps:
        Total node visits across all walks (work performed).
    """

    __slots__ = ("scores", "num_walks", "total_steps")

    def __init__(
        self, scores: np.ndarray, num_walks: int, total_steps: int
    ) -> None:
        self.scores = scores
        self.num_walks = num_walks
        self.total_steps = total_steps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonteCarloResult(walks={self.num_walks}, "
            f"steps={self.total_steps})"
        )


def pagerank_montecarlo(
    graph: WebGraph,
    v: Optional[np.ndarray] = None,
    *,
    damping: float = DEFAULT_DAMPING,
    num_walks: int = 100_000,
    rng: Optional[np.random.Generator] = None,
    max_walk_length: int = 1_000,
) -> MonteCarloResult:
    """Estimate ``PR(v)`` by simulating ``num_walks`` random walks.

    Parameters
    ----------
    graph:
        The web graph.
    v:
        Random-jump vector (uniform by default); may be unnormalized
        with ``0 < ‖v‖₁ ≤ 1`` — e.g. a core-based vector, in which case
        only ``‖v‖ · num_walks`` walks actually start.
    damping:
        Continue probability ``c``.
    num_walks:
        Walks budgeted; the standard error of each score shrinks as
        ``O(1/√num_walks)``.
    max_walk_length:
        Safety bound (a walk of this length has probability
        ``c^1000 ≈ 10⁻⁷⁰``).

    All walks advance in lock-step with vectorized numpy operations, so
    the cost is ``O(E[walk length] · num_walks)`` with small constants.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    n = graph.num_nodes
    if v is None:
        v = uniform_jump_vector(n)
    if v.shape != (n,):
        raise ValueError(f"jump vector has shape {v.shape}, expected ({n},)")
    if np.any(v < 0):
        raise ValueError("jump vector must be non-negative")
    norm = float(v.sum())
    if norm <= 0.0 or norm > 1.0 + 1e-9:
        raise ValueError("jump vector norm must be in (0, 1]")
    if not (0.0 < damping < 1.0):
        raise ValueError(f"damping factor must be in (0, 1), got {damping}")
    if num_walks < 1:
        raise ValueError("num_walks must be positive")

    # decide how many walks actually start: unnormalized v means the
    # remaining probability mass never spawns a walker
    starting = rng.binomial(num_walks, min(norm, 1.0))
    visits = np.zeros(n, dtype=np.float64)
    total_steps = 0
    if starting:
        start_distribution = v / norm
        cumulative = np.cumsum(start_distribution)
        positions = np.searchsorted(
            cumulative, rng.random(starting), side="right"
        ).astype(np.int64)
        positions = np.minimum(positions, n - 1)
        indptr = graph.indptr
        indices = graph.indices
        out_degree = graph.out_degree()
        for _ in range(max_walk_length):
            visits += np.bincount(positions, minlength=n)
            total_steps += len(positions)
            # survive the teleport coin AND not be dangling
            alive = (rng.random(len(positions)) < damping) & (
                out_degree[positions] > 0
            )
            positions = positions[alive]
            if len(positions) == 0:
                break
            # uniform outlink choice, vectorized over CSR rows
            row_start = indptr[positions]
            row_len = indptr[positions + 1] - row_start
            offsets = (rng.random(len(positions)) * row_len).astype(np.int64)
            positions = indices[row_start + offsets]
    scores = (1.0 - damping) * visits / num_walks
    return MonteCarloResult(scores, num_walks, total_steps)
