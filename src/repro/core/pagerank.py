"""High-level linear PageRank API (Section 2.2 of the paper).

The paper writes ``p = PR(v)`` for the unique solution of the linear
system ``(I − c Tᵀ) p = (1 − c) v`` and deliberately allows
*unnormalized* random-jump vectors ``0 < ‖v‖₁ ≤ 1`` — this is what makes
core-based PageRank (the jump restricted to the good core) a
first-class citizen.  This module exposes that notation directly:

>>> from repro.datasets import figure2_graph
>>> from repro.core import pagerank, uniform_jump_vector
>>> world = figure2_graph()
>>> p = pagerank(world.graph).scores

Scaled scores
-------------
Throughout its experimental sections the paper reports PageRank scores
scaled by ``n / (1 − c)`` so the minimum score (a node with no inlinks)
reads as 1.  :func:`scale_scores` applies that convention.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np
from scipy import sparse

from ..errors import ConvergenceError
from ..graph.webgraph import WebGraph
from .solvers import SolverResult, solve

__all__ = [
    "pagerank",
    "pagerank_from_matrix",
    "uniform_jump_vector",
    "core_jump_vector",
    "scaled_core_jump_vector",
    "indicator_jump_vector",
    "scale_scores",
    "unscale_scores",
    "DEFAULT_DAMPING",
]

#: The damping factor used throughout the paper's examples/experiments.
DEFAULT_DAMPING = 0.85

JumpSpec = Union[None, np.ndarray, Sequence[int]]


def uniform_jump_vector(num_nodes: int) -> np.ndarray:
    """The uniform random-jump distribution ``v = (1/n)ₙ``."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return np.full(num_nodes, 1.0 / num_nodes, dtype=np.float64)


def core_jump_vector(num_nodes: int, core: Iterable[int]) -> np.ndarray:
    """The core-based jump vector ``v^{Ṽ⁺}`` of Section 3.4.

    Entries are ``1/n`` on core nodes and 0 elsewhere; the vector is
    deliberately left unnormalized (``‖v^{Ṽ⁺}‖ = |Ṽ⁺|/n``).
    """
    core_arr = _core_array(num_nodes, core)
    v = np.zeros(num_nodes, dtype=np.float64)
    v[core_arr] = 1.0 / num_nodes
    return v


def scaled_core_jump_vector(
    num_nodes: int, core: Iterable[int], gamma: float
) -> np.ndarray:
    """The γ-scaled core jump vector ``w`` of Section 3.5.

    ``w_x = γ / |Ṽ⁺|`` for core members and 0 elsewhere, so
    ``‖w‖ = γ ≈ ‖v^{V⁺}‖`` — the total good random-jump weight the full
    (unknown) good set would receive.  The paper's experiments use
    ``γ = 0.85`` (at least 15% of hosts assumed spam).
    """
    if not (0.0 < gamma <= 1.0):
        raise ValueError(f"gamma must be in (0, 1], got {gamma}")
    core_arr = _core_array(num_nodes, core)
    if len(core_arr) == 0:
        raise ValueError("core must contain at least one node")
    v = np.zeros(num_nodes, dtype=np.float64)
    v[core_arr] = gamma / len(core_arr)
    return v


def indicator_jump_vector(
    num_nodes: int, nodes: Iterable[int], base: Optional[np.ndarray] = None
) -> np.ndarray:
    """Restriction ``v^U`` of a jump vector to a node subset ``U``.

    Per Theorem 2 and its corollary, ``PR(v^U)`` is the total PageRank
    contribution of the nodes of ``U``.  ``base`` defaults to the
    uniform distribution.
    """
    nodes_arr = _core_array(num_nodes, nodes)
    if base is None:
        base = uniform_jump_vector(num_nodes)
    elif base.shape != (num_nodes,):
        raise ValueError("base jump vector has the wrong length")
    v = np.zeros(num_nodes, dtype=np.float64)
    v[nodes_arr] = base[nodes_arr]
    return v


def _core_array(num_nodes: int, core: Iterable[int]) -> np.ndarray:
    arr = np.unique(np.asarray(list(core), dtype=np.int64))
    if len(arr) and (arr.min() < 0 or arr.max() >= num_nodes):
        raise ValueError("core contains node ids out of range")
    return arr


def _resolve_jump(graph_size: int, v: JumpSpec) -> np.ndarray:
    if v is None:
        return uniform_jump_vector(graph_size)
    if isinstance(v, np.ndarray):
        if v.shape != (graph_size,):
            raise ValueError(
                f"jump vector has shape {v.shape}, expected ({graph_size},)"
            )
        return v.astype(np.float64, copy=False)
    # sequence of node ids → unnormalized core vector
    return core_jump_vector(graph_size, v)


def pagerank(
    graph: WebGraph,
    v: JumpSpec = None,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    method: str = "jacobi",
    raise_on_divergence: bool = True,
    **solver_options,
) -> SolverResult:
    """Compute ``p = PR(v)`` for a web graph.

    Parameters
    ----------
    graph:
        The web graph.
    v:
        ``None`` for the uniform distribution, a dense vector, or an
        iterable of node ids (treated as the core-based vector
        ``v^{core}`` with ``1/n`` entries).
    damping:
        The damping factor ``c`` (paper default 0.85).
    tol, max_iter, method:
        Solver controls; see :mod:`repro.core.solvers`.
    raise_on_divergence:
        Raise :class:`~repro.errors.ConvergenceError` (a
        ``RuntimeError`` subclass) when the solver fails to converge
        instead of returning a non-converged result.
    solver_options:
        Forwarded to :func:`repro.core.solvers.solve` — e.g.
        ``checkpoint=``/``resume=`` for kill-and-resume support, or
        ``callback=`` for residual monitoring.

    The transition operator ``Tᵀ`` comes from the process-wide
    :class:`~repro.perf.OperatorCache` (built once per graph, shared by
    every caller); pass ``transition_t=`` to supply your own instead.
    """
    transition_t = solver_options.pop("transition_t", None)
    if transition_t is None:
        from ..perf import get_engine  # deferred: perf imports this module

        transition_t = get_engine().operator(graph)
    return pagerank_from_matrix(
        transition_t,
        _resolve_jump(graph.num_nodes, v),
        damping=damping,
        tol=tol,
        max_iter=max_iter,
        method=method,
        raise_on_divergence=raise_on_divergence,
        **solver_options,
    )


def pagerank_from_matrix(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    *,
    damping: float = DEFAULT_DAMPING,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    method: str = "jacobi",
    raise_on_divergence: bool = True,
    **solver_options,
) -> SolverResult:
    """Compute PageRank from a pre-built ``Tᵀ`` (reuse across jump
    vectors — the mass estimator computes two PageRanks on one matrix).

    Non-convergence raises :class:`~repro.errors.ConvergenceError`
    unless ``raise_on_divergence=False``; extra keyword arguments are
    forwarded to :func:`repro.core.solvers.solve` (checkpointing,
    warm starts, callbacks).
    """
    try:
        return solve(
            method,
            transition_t,
            v,
            damping=damping,
            tol=tol,
            max_iter=max_iter,
            check=raise_on_divergence,
            **solver_options,
        )
    except ConvergenceError as exc:
        residual = (
            f"{exc.result.residual:.3e}" if exc.result is not None else "n/a"
        )
        raise ConvergenceError(
            f"PageRank solver {method!r} failed to converge within "
            f"{max_iter} iterations (residual {residual})",
            result=exc.result,
        ) from None


def scale_scores(
    scores: np.ndarray, num_nodes: int, damping: float = DEFAULT_DAMPING
) -> np.ndarray:
    """Scale scores by ``n / (1 − c)`` (paper's readability convention).

    Under this scaling a node with no inlinks has score exactly 1 when
    the uniform jump vector is used.
    """
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return np.asarray(scores, dtype=np.float64) * (
        num_nodes / (1.0 - damping)
    )


def unscale_scores(
    scores: np.ndarray, num_nodes: int, damping: float = DEFAULT_DAMPING
) -> np.ndarray:
    """Inverse of :func:`scale_scores`."""
    if num_nodes <= 0:
        raise ValueError("num_nodes must be positive")
    return np.asarray(scores, dtype=np.float64) * (
        (1.0 - damping) / num_nodes
    )
