"""Numerical solvers for the linear PageRank system (Section 2.2).

The paper adopts the *linear system* formulation of PageRank,

.. math::

    (I - c T^T)\\, p = (1 - c)\\, v ,

where ``T`` is the substochastic transition matrix (rows of dangling
nodes are zero) and ``v`` is a — possibly unnormalized — random-jump
distribution with ``0 < ‖v‖₁ ≤ 1``.  A key property is linearity in
``v``: ``PR(v₁ + v₂) = PR(v₁) + PR(v₂)``, which is what makes core-based
PageRank and mass estimation cheap.

This module provides interchangeable solvers:

``jacobi``
    Algorithm 1 of the paper: ``p⁽ⁱ⁾ = c Tᵀ p⁽ⁱ⁻¹⁾ + (1 − c) v`` until
    the L1 change drops below ``tol``.
``gauss_seidel``
    In-place sweeps; typically converges in fewer iterations than
    Jacobi (mentioned in Section 2.2 as a regular speed-up).
``power``
    Power iteration on the *stochastic, ergodic* matrix ``T''`` of
    equation (1) — the classical eigenvector formulation.  Requires a
    normalized ``v``; its fixed point is the linear solution rescaled to
    unit norm.
``direct``
    Sparse LU solve of the linear system (small/medium graphs; exact up
    to floating point, handy as a test oracle).
``bicgstab``
    Krylov iterative solve via SciPy (an alternative large-scale path).

All solvers return a :class:`SolverResult` carrying the solution,
iteration count, final residual and convergence flag — failures never
pass silently.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from ..errors import ConvergenceError

__all__ = [
    "SolverResult",
    "ConvergenceError",
    "IterationCallback",
    "jacobi",
    "gauss_seidel",
    "power_iteration",
    "direct",
    "bicgstab",
    "SOLVERS",
    "solve",
]

#: Signature of the per-iteration hook accepted by the iterative
#: solvers: ``callback(iteration, p, residual)``.  Raising from the
#: callback aborts the solve — the resilient runtime layer uses this
#: for divergence monitors, wall-time budgets and fault injection.
IterationCallback = Callable[[int, np.ndarray, float], None]


class SolverResult:
    """Outcome of a PageRank solve.

    Attributes
    ----------
    scores:
        The solution vector ``p``.
    iterations:
        Number of iterations performed (0 for direct solves).
    residual:
        Final L1 change between successive iterates (or the linear-system
        residual for direct/Krylov solvers).
    converged:
        ``True`` when the stopping criterion was met.
    method:
        Name of the solver that produced the result.
    """

    __slots__ = (
        "scores",
        "iterations",
        "residual",
        "converged",
        "method",
        "residual_history",
        "report",
    )

    def __init__(
        self,
        scores: np.ndarray,
        iterations: int,
        residual: float,
        converged: bool,
        method: str,
        residual_history: Optional[List[float]] = None,
    ) -> None:
        self.scores = scores
        self.iterations = iterations
        self.residual = residual
        self.converged = converged
        self.method = method
        self.residual_history = residual_history
        #: Populated by the resilient runtime layer
        #: (:class:`repro.runtime.resilient.RunReport`); ``None`` for
        #: plain single-method solves.
        self.report = None

    def convergence_rate(self) -> float:
        """Empirical per-iteration residual contraction (geometric mean
        over the tracked history; ``nan`` without tracking).

        Classical theory predicts a rate of ``c`` for Jacobi on the
        PageRank system and roughly ``c²`` for Gauss-Seidel.
        """
        history = self.residual_history
        if not history or len(history) < 2:
            return float("nan")
        ratios = [
            b / a
            for a, b in zip(history, history[1:])
            if a > 0 and b > 0
        ]
        if not ratios:
            return float("nan")
        log_sum = sum(np.log(r) for r in ratios)
        return float(np.exp(log_sum / len(ratios)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "converged" if self.converged else "NOT converged"
        return (
            f"SolverResult({self.method}, {status} in {self.iterations} "
            f"iterations, residual={self.residual:.3e})"
        )


def _validate_inputs(
    transition_t: sparse.csr_matrix, v: np.ndarray, damping: float, tol: float
) -> None:
    n = transition_t.shape[0]
    if transition_t.shape != (n, n):
        raise ValueError("transition matrix must be square")
    if v.shape != (n,):
        raise ValueError(
            f"random-jump vector has shape {v.shape}, expected ({n},)"
        )
    if not (0.0 < damping < 1.0):
        raise ValueError(f"damping factor must be in (0, 1), got {damping}")
    if tol <= 0.0:
        raise ValueError("tolerance must be positive")
    if np.any(v < 0):
        raise ValueError("random-jump vector must be non-negative")
    norm = float(v.sum())
    if norm <= 0.0:
        raise ValueError("random-jump vector must have positive L1 norm")
    if norm > 1.0 + 1e-9:
        raise ValueError(
            f"random-jump vector norm {norm} exceeds 1 (paper requires "
            "0 < ||v|| <= 1)"
        )


def _initial_iterate(
    v: np.ndarray, x0: Optional[np.ndarray], start_iteration: int
) -> np.ndarray:
    """Resolve the warm-start iterate (checkpoint resume support)."""
    if start_iteration < 0:
        raise ValueError("start_iteration must be non-negative")
    if x0 is None:
        if start_iteration != 0:
            raise ValueError("start_iteration > 0 requires an x0 iterate")
        return v.astype(np.float64, copy=True)
    x0 = np.asarray(x0, dtype=np.float64)
    if x0.shape != v.shape:
        raise ValueError(
            f"warm-start iterate has shape {x0.shape}, expected {v.shape}"
        )
    return x0.copy()


def jacobi(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
) -> SolverResult:
    """Algorithm 1 of the paper (Jacobi iteration).

    Parameters
    ----------
    transition_t:
        The *transposed* substochastic transition matrix ``Tᵀ`` in CSR
        form (transposed once up front so every iteration is a plain
        CSR mat-vec).
    v:
        Random-jump vector, ``0 < ‖v‖₁ ≤ 1`` (may be unnormalized).
    damping:
        The damping factor ``c`` (paper uses 0.85).
    tol:
        Stop when ``‖p⁽ⁱ⁾ − p⁽ⁱ⁻¹⁾‖₁ < tol``.
    max_iter:
        Safety bound on the number of iterations (absolute — a resumed
        solve continues counting from ``start_iteration``).
    x0, start_iteration:
        Warm start: resume from a checkpointed iterate ``x0`` taken
        after ``start_iteration`` iterations.  Jacobi is memoryless in
        the iterate, so a resumed run reproduces the uninterrupted one
        exactly.
    callback:
        Optional per-iteration hook ``callback(iteration, p, residual)``;
        raising from it aborts the solve (see the resilient runtime).
    """
    _validate_inputs(transition_t, v, damping, tol)
    p = _initial_iterate(v, x0, start_iteration)
    jump = (1.0 - damping) * v
    residual = np.inf
    history: Optional[List[float]] = [] if track_residuals else None
    iteration = start_iteration
    for iteration in range(start_iteration + 1, max_iter + 1):
        p_next = damping * (transition_t @ p) + jump
        residual = float(np.abs(p_next - p).sum())
        if history is not None:
            history.append(residual)
        p = p_next
        if callback is not None:
            callback(iteration, p, residual)
        if residual < tol:
            return SolverResult(
                p, iteration, residual, True, "jacobi", history
            )
    return SolverResult(p, iteration, residual, False, "jacobi", history)


def gauss_seidel(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
) -> SolverResult:
    """Gauss–Seidel sweeps on ``(I − c Tᵀ) p = (1 − c) v``.

    Because ``T`` has a zero diagonal (no self-links), the update for
    node ``y`` is ``p_y ← c · (Tᵀ p)_y + (1 − c) v_y`` using the
    freshest available values of ``p``.  Converges in roughly half the
    iterations of Jacobi on typical web graphs.

    Implemented as one sparse *lower-triangular solve* per sweep:
    splitting the system matrix ``A = I − cTᵀ`` into its lower part
    ``Λ`` (diagonal included) and strict upper part ``Υ``, the
    sequential natural-order update is exactly
    ``Λ p⁽ⁱ⁾ = (1 − c)v − Υ p⁽ⁱ⁻¹⁾`` — which SciPy performs in
    compiled code.
    """
    _validate_inputs(transition_t, v, damping, tol)
    n = transition_t.shape[0]
    system = sparse.identity(n, format="csr") - damping * transition_t.tocsr()
    lower = sparse.tril(system, k=0, format="csr")
    upper = sparse.triu(system, k=1, format="csr")
    p = _initial_iterate(v, x0, start_iteration)
    jump = (1.0 - damping) * v
    residual = np.inf
    history: Optional[List[float]] = [] if track_residuals else None
    iteration = start_iteration
    for iteration in range(start_iteration + 1, max_iter + 1):
        rhs = jump - upper @ p
        p_next = sparse_linalg.spsolve_triangular(
            lower, rhs, lower=True, unit_diagonal=True
        )
        p_next = np.asarray(p_next, dtype=np.float64).ravel()
        residual = float(np.abs(p_next - p).sum())
        if history is not None:
            history.append(residual)
        p = p_next
        if callback is not None:
            callback(iteration, p, residual)
        if residual < tol:
            return SolverResult(
                p, iteration, residual, True, "gauss_seidel", history
            )
    return SolverResult(
        p, iteration, residual, False, "gauss_seidel", history
    )


def power_iteration(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    dangling_mask: Optional[np.ndarray] = None,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
) -> SolverResult:
    """Power iteration on the augmented matrix ``T''`` of equation (1).

    This is the classical eigenvector PageRank: dangling rows are patched
    with ``v`` and a ``(1 − c)`` teleport is added, keeping iterates on
    the probability simplex.  Requires ``‖v‖₁ = 1``.  The fixed point is
    the linear-system solution normalized to unit L1 norm.

    ``dangling_mask`` marks nodes with zero out-degree; when omitted it
    is derived from the column sums of ``Tᵀ``.
    """
    _validate_inputs(transition_t, v, damping, tol)
    if abs(float(v.sum()) - 1.0) > 1e-9:
        raise ValueError(
            "power iteration requires a normalized random-jump vector "
            "(the eigenvector formulation is probabilistic); use the "
            "linear solvers for unnormalized v"
        )
    if dangling_mask is None:
        column_sums = np.asarray(
            transition_t.sum(axis=0)
        ).ravel()  # col x of T^T == row x of T
        dangling_mask = column_sums < 1e-12
    p = _initial_iterate(v, x0, start_iteration)
    residual = np.inf
    history: Optional[List[float]] = [] if track_residuals else None
    iteration = start_iteration
    for iteration in range(start_iteration + 1, max_iter + 1):
        dangling_weight = float(p[dangling_mask].sum())
        p_next = (
            damping * (transition_t @ p)
            + damping * dangling_weight * v
            + (1.0 - damping) * v
        )
        # guard against floating-point drift off the simplex
        p_next /= p_next.sum()
        residual = float(np.abs(p_next - p).sum())
        if history is not None:
            history.append(residual)
        p = p_next
        if callback is not None:
            callback(iteration, p, residual)
        if residual < tol:
            return SolverResult(p, iteration, residual, True, "power", history)
    return SolverResult(p, iteration, residual, False, "power", history)


def direct(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 0,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
) -> SolverResult:
    """Sparse LU solve of ``(I − c Tᵀ) p = (1 − c) v`` (test oracle).

    ``track_residuals``/``x0``/``start_iteration``/``callback`` are
    accepted for signature uniformity with the iterative solvers (the
    fallback chain dispatches blindly) and ignored — a direct solve has
    no iterations to hook into.
    """
    _validate_inputs(transition_t, v, damping, tol)
    n = transition_t.shape[0]
    system = sparse.identity(n, format="csc") - damping * transition_t.tocsc()
    rhs = (1.0 - damping) * v
    p = sparse_linalg.spsolve(system, rhs)
    p = np.asarray(p, dtype=np.float64).ravel()
    residual = float(np.abs(system @ p - rhs).sum())
    return SolverResult(p, 0, residual, residual < max(tol, 1e-8), "direct")


def bicgstab(
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
) -> SolverResult:
    """BiCGSTAB Krylov solve of the linear PageRank system.

    ``x0`` warm-starts the Krylov iteration; the remaining uniformity
    parameters are ignored (SciPy owns the iteration loop).
    """
    _validate_inputs(transition_t, v, damping, tol)
    n = transition_t.shape[0]
    system = sparse.identity(n, format="csr") - damping * transition_t.tocsr()
    rhs = (1.0 - damping) * v
    # note: seeding x0 = v invites an exact BiCGSTAB breakdown (rho = 0)
    # on symmetric-ish tiny systems; the default zero start is robust
    p, info = sparse_linalg.bicgstab(
        system, rhs, x0=x0, rtol=0.0, atol=tol, maxiter=max_iter
    )
    p = np.asarray(p, dtype=np.float64).ravel()
    residual = float(np.abs(system @ p - rhs).sum())
    return SolverResult(p, max(info, 0), residual, info == 0, "bicgstab")


SOLVERS: Dict[str, Callable[..., SolverResult]] = {
    "jacobi": jacobi,
    "gauss_seidel": gauss_seidel,
    "power": power_iteration,
    "direct": direct,
    "bicgstab": bicgstab,
}


def solve(
    method: str,
    transition_t: sparse.csr_matrix,
    v: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    *,
    check: bool = False,
    track_residuals: bool = False,
    x0: Optional[np.ndarray] = None,
    start_iteration: int = 0,
    callback: Optional[IterationCallback] = None,
    checkpoint: Union[None, str, Path, "object"] = None,
    resume: bool = False,
    checkpoint_every: int = 50,
) -> SolverResult:
    """Dispatch to a solver by name (see :data:`SOLVERS`).

    Robustness extensions
    ---------------------
    check:
        Raise :class:`~repro.errors.ConvergenceError` (carrying the
        best-effort result) when the stopping criterion was not met —
        the exhaust-path otherwise returns ``converged=False`` silently
        and nothing downstream is forced to look at the flag.
    checkpoint, resume, checkpoint_every:
        ``checkpoint`` is a directory path (or a pre-built
        :class:`~repro.runtime.checkpoint.CheckpointManager`); the
        iterate is snapshotted atomically every ``checkpoint_every``
        iterations.  With ``resume=True`` the newest compatible
        snapshot seeds ``x0``/``start_iteration``, so a killed run
        restarts from the last checkpoint instead of iteration 0.
        Snapshots record a problem fingerprint and refuse to resume
        against a different matrix/jump vector.
    x0, start_iteration, callback:
        Warm start and per-iteration hook, forwarded to the solver.
    """
    try:
        solver = SOLVERS[method]
    except KeyError:
        raise ValueError(
            f"unknown solver {method!r}; available: {sorted(SOLVERS)}"
        ) from None

    if resume and checkpoint is None:
        raise ValueError("resume=True requires a checkpoint directory")
    if checkpoint is not None:
        # lazy import: the runtime package sits above this module
        from ..runtime.checkpoint import CheckpointManager, problem_fingerprint
        from ..runtime.monitors import compose_callbacks

        manager = (
            checkpoint
            if isinstance(checkpoint, CheckpointManager)
            else CheckpointManager(checkpoint, every=checkpoint_every)
        )
        fingerprint = problem_fingerprint(transition_t, v)
        if resume:
            restored = manager.load_latest(fingerprint=fingerprint)
            if restored is not None:
                x0 = restored.p
                start_iteration = restored.iteration
        callback = compose_callbacks(
            callback,
            manager.callback(method=method, fingerprint=fingerprint),
        )

    result = solver(
        transition_t,
        v,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
        track_residuals=track_residuals,
        x0=x0,
        start_iteration=start_iteration,
        callback=callback,
    )
    if check and not result.converged:
        raise ConvergenceError(
            f"solver {method!r} did not converge: residual "
            f"{result.residual:.3e} after {result.iterations} iterations "
            f"(tol {tol:g}); pass check=False for the best-effort vector "
            "or use repro.runtime.FallbackSolver for graceful degradation",
            result=result,
        )
    return result
