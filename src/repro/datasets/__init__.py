"""Reference data sets: the paper's worked example graphs."""

from .paper_graphs import (
    PaperExample,
    figure1_graph,
    figure1_pagerank_x,
    figure1_spam_contribution_x,
    figure2_graph,
    table1_expected,
)

__all__ = [
    "PaperExample",
    "figure1_graph",
    "figure1_pagerank_x",
    "figure1_spam_contribution_x",
    "figure2_graph",
    "table1_expected",
]
