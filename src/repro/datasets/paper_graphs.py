"""The worked examples of the paper (Figures 1 and 2, Table 1).

These tiny graphs come with closed-form PageRank and mass values derived
in the paper, which makes them exact oracles for the whole pipeline:

* **Figure 1** — node ``x`` with two good in-neighbours ``g0, g1`` and a
  spam in-neighbour ``s0`` boosted by ``k`` spam nodes ``s1…sk``.  The
  paper derives ``p_x = (1 + 3c + kc²)(1 − c)/n`` and shows that the
  first naive labeling scheme (in-link majority) mislabels ``x`` as good
  while the link-contribution scheme succeeds for ``k ≥ ⌈1/c⌉``.

* **Figure 2** — the 12-node graph of Table 1: spam nodes also reach
  ``x`` *indirectly* (``s5 → g0 → x``, ``s6 → g2 → x``), defeating both
  naive schemes and motivating spam mass.  With ``c = 0.85``,
  ``Ṽ⁺ = {g0, g1, g3}`` and the unscaled core jump, Table 1 lists the
  scaled PageRank, core PageRank, actual and estimated mass of every
  node; :func:`table1_expected` reproduces those numbers analytically.

Edge reconstruction for Figure 2 was cross-checked against every value
in Table 1 (note that the table's *actual* mass treats the target ``x``
itself as spam: ``M_x = q_x^{s0…s6} + q_x^x``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence


from ..graph.webgraph import WebGraph

__all__ = [
    "PaperExample",
    "figure1_graph",
    "figure2_graph",
    "figure1_pagerank_x",
    "figure1_spam_contribution_x",
    "table1_expected",
]


class PaperExample:
    """A small labeled example graph.

    Attributes
    ----------
    graph:
        The :class:`WebGraph`.
    node_ids:
        Mapping from the paper's node names (``"x"``, ``"g0"``, ``"s0"``,
        …) to node ids.
    good, spam:
        Ground-truth partition ``V⁺`` / ``V⁻`` as node-id lists.
    good_core:
        The known good core ``Ṽ⁺`` used in the paper's example.
    """

    __slots__ = ("graph", "node_ids", "good", "spam", "good_core")

    def __init__(
        self,
        graph: WebGraph,
        node_ids: Dict[str, int],
        good: Sequence[int],
        spam: Sequence[int],
        good_core: Sequence[int],
    ) -> None:
        self.graph = graph
        self.node_ids = dict(node_ids)
        self.good = list(good)
        self.spam = list(spam)
        self.good_core = list(good_core)

    def id_of(self, name: str) -> int:
        """Node id for a paper node name such as ``"g0"``."""
        return self.node_ids[name]

    def names_in_order(self) -> List[str]:
        """Node names sorted by node id."""
        return [
            name
            for name, _ in sorted(self.node_ids.items(), key=lambda kv: kv[1])
        ]


def figure1_graph(k: int = 3) -> PaperExample:
    """The Figure 1 scenario with ``k`` boosting nodes ``s1…sk``.

    Structure: ``g0 → x``, ``g1 → x``, ``s0 → x`` and ``sᵢ → s0`` for
    ``i = 1…k``.  Ground truth: ``x`` and all ``sᵢ`` are spam (``x`` is
    the farm's target), ``g0, g1`` are good.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    names = ["x", "g0", "g1", "s0"] + [f"s{i}" for i in range(1, k + 1)]
    ids = {name: i for i, name in enumerate(names)}
    edges = [
        (ids["g0"], ids["x"]),
        (ids["g1"], ids["x"]),
        (ids["s0"], ids["x"]),
    ]
    edges.extend((ids[f"s{i}"], ids["s0"]) for i in range(1, k + 1))
    graph = WebGraph.from_edges(len(names), edges, names)
    spam = [ids["x"], ids["s0"]] + [ids[f"s{i}"] for i in range(1, k + 1)]
    good = [ids["g0"], ids["g1"]]
    return PaperExample(graph, ids, good, spam, good_core=good)


def figure1_pagerank_x(k: int, damping: float = 0.85) -> float:
    """The paper's closed form for ``x``'s *scaled* PageRank in Figure 1:
    ``1 + 3c + kc²`` (raw value times ``n/(1 − c)``)."""
    c = damping
    return 1.0 + 3.0 * c + k * c * c


def figure1_spam_contribution_x(k: int, damping: float = 0.85) -> float:
    """Scaled PageRank that Figure 1's ``x`` owes to spamming:
    ``c + kc²`` — the drop in ``p_x`` if ``s0…sk`` vanished."""
    c = damping
    return c + k * c * c


def figure2_graph() -> PaperExample:
    """The 12-node graph of Figure 2 / Table 1.

    Edges: ``g1 → g0``, ``s5 → g0``, ``g3 → g2``, ``s6 → g2``,
    ``sᵢ → s0`` for ``i = 1…4``, and ``g0, g2, s0 → x``.  The good core
    of the worked example is ``Ṽ⁺ = {g0, g1, g3}`` (``g2`` is good but
    *not* in the core, which is what creates the false positive).
    """
    names = ["x", "g0", "g1", "g2", "g3", "s0", "s1", "s2", "s3", "s4", "s5", "s6"]
    ids = {name: i for i, name in enumerate(names)}
    edges = [
        (ids["g1"], ids["g0"]),
        (ids["s5"], ids["g0"]),
        (ids["g3"], ids["g2"]),
        (ids["s6"], ids["g2"]),
        (ids["s1"], ids["s0"]),
        (ids["s2"], ids["s0"]),
        (ids["s3"], ids["s0"]),
        (ids["s4"], ids["s0"]),
        (ids["g0"], ids["x"]),
        (ids["g2"], ids["x"]),
        (ids["s0"], ids["x"]),
    ]
    graph = WebGraph.from_edges(len(names), edges, names)
    good = [ids[f"g{i}"] for i in range(4)]
    spam = [ids["x"]] + [ids[f"s{i}"] for i in range(7)]
    core = [ids["g0"], ids["g1"], ids["g3"]]
    return PaperExample(graph, ids, good, spam, good_core=core)


def table1_expected(damping: float = 0.85) -> Dict[str, Dict[str, float]]:
    """Analytic Table 1 values (scaled by ``n/(1 − c)``) per node name.

    Keys per node: ``p`` (PageRank), ``p_core`` (core-based PageRank
    with the unscaled jump ``w = v^{Ṽ⁺}``), ``M`` (actual absolute
    mass, with ``x`` counted in ``V⁻``), ``M_est`` (estimated absolute
    mass), ``m`` (actual relative mass), ``m_est`` (estimated relative
    mass).  For ``c = 0.85`` these reproduce the printed table
    (9.33, 2.295, 6.185, 7.035, 0.66, 0.75 for ``x``, and so on).
    """
    c = damping
    # scaled PageRank
    p_leaf = 1.0  # any node with no inlinks
    p_g0 = 1.0 + 2.0 * c  # g1 and s5 point at it
    p_g2 = 1.0 + 2.0 * c  # g3 and s6 point at it
    p_s0 = 1.0 + 4.0 * c  # s1..s4 point at it
    p_x = 1.0 + 3.0 * c + 8.0 * c * c

    # scaled core-based PageRank, core {g0, g1, g3} with 1/n jump entries
    pc_g0 = 1.0 + c  # own jump + g1's link
    pc_g1 = 1.0
    pc_g2 = c  # g3 in core links to it
    pc_g3 = 1.0
    pc_s = 0.0
    pc_x = c * (pc_g0 + pc_g2)  # via g0 and g2; s0 contributes nothing

    # actual absolute mass (x itself belongs to V⁻, per Table 1)
    m_x = 1.0 + c + 6.0 * c * c  # self + s0 direct + {s1..s4, s5, s6} paths
    m_g0 = c  # from s5
    m_g2 = c  # from s6
    m_s0 = 1.0 + 4.0 * c  # self + s1..s4
    m_s = 1.0  # each spam leaf: its own jump only

    rows: Dict[str, Dict[str, float]] = {}

    def add(name: str, p: float, p_core: float, mass: float) -> None:
        rows[name] = {
            "p": p,
            "p_core": p_core,
            "M": mass,
            "M_est": p - p_core,
            "m": mass / p,
            "m_est": (p - p_core) / p,
        }

    add("x", p_x, pc_x, m_x)
    add("g0", p_g0, pc_g0, m_g0)
    add("g1", p_leaf, pc_g1, 0.0)
    add("g2", p_g2, pc_g2, m_g2)
    add("g3", p_leaf, pc_g3, 0.0)
    add("s0", p_s0, pc_s, m_s0)
    for i in range(1, 7):
        add(f"s{i}", p_leaf, pc_s, m_s)
    return rows
