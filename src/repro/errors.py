"""Exception taxonomy shared across the library.

A pipeline that a search engine re-runs continuously (Section 2.2's
deployment story) fails in a handful of recurring ways: the numerics
diverge, a checkpoint is unreadable, an edge file is truncated
mid-transfer.  Each failure mode gets its own exception type so callers
— the CLI in particular — can map them to distinct exit codes and
one-line messages instead of tracebacks.

The classes multiply-inherit from the builtin exceptions historically
raised at the same sites (``RuntimeError`` for non-convergence,
``ValueError`` for malformed files), so pre-existing ``except`` clauses
keep working.

This module imports nothing from the rest of the package and is safe to
import from any layer.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConvergenceError",
    "CheckpointError",
    "SnapshotMismatchError",
    "WalError",
    "ReplicationError",
    "SnapshotIntegrityError",
    "ReplicaGapError",
    "GraphFormatError",
    "TruncatedFileError",
    "EmptyGraphError",
    "GraphIOError",
    "ShardMissingError",
    "ShardIntegrityError",
    "ShardTruncatedError",
    "ShardDigestMismatchError",
    "ManifestVersionError",
    "GraphIOWarning",
    "DeltaError",
    "StreamError",
    "StreamEventError",
    "SolverAbort",
    "BudgetExceeded",
    "SupervisionError",
    "InjectedFault",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to reach its tolerance.

    Carries the offending :class:`~repro.core.solvers.SolverResult` in
    ``result`` (when available) so callers can inspect the best-effort
    vector even after opting into strict checking.
    """

    def __init__(self, message: str, result=None) -> None:
        super().__init__(message)
        self.result = result


class CheckpointError(ReproError):
    """A checkpoint could not be written or restored."""


class SnapshotMismatchError(CheckpointError):
    """A stored snapshot belongs to a *different* problem or graph.

    Subclasses :class:`CheckpointError` so existing handlers (and the
    CLI's exit-3 mapping) keep working, but is distinguishable: the
    serving daemon catches exactly this type to trigger an epoch
    rollback instead of treating the snapshot as unreadable.  Both
    sides of the comparison ride on the exception so operators (and the
    daemon's telemetry) can log what was expected against what was
    found.
    """

    def __init__(self, message: str, *, expected: str = "",
                 actual: str = "") -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class WalError(ReproError):
    """The serving write-ahead log is unreadable or diverged.

    A *torn tail* (crash mid-append) is not an error — recovery
    truncates it.  This type covers the cases recovery must not paper
    over: corruption in the middle of a segment, or a record whose
    parent fingerprint matches neither the current graph nor an
    already-applied state (the log and the snapshot tell different
    histories).
    """


class ReplicationError(ReproError):
    """Base class for replicated-serving failures.

    Covers the writer→replica snapshot-shipping pipeline: a snapshot
    that cannot be shipped, a ship directory whose chain cannot reach
    the replica's state, a replica that is dead.  Integrity failures of
    an individual shipped snapshot get the more specific
    :class:`SnapshotIntegrityError`.
    """


class SnapshotIntegrityError(ReplicationError):
    """A shipped snapshot is torn, truncated or corrupt.

    Raised by the replica-side loader when a snapshot directory fails
    any of its integrity checks — unreadable or CRC-failing manifest,
    missing or checksum-mismatched solution file.  The replica refuses
    the epoch and keeps serving its current one; the writer re-ships.
    """


class ReplicaGapError(ReplicationError):
    """The ship chain cannot connect the replica's state to the tip.

    A replica that lagged past the retained snapshot history (or a
    writer whose WAL was pruned past the last shipped snapshot) has no
    delta segment to compose — the fingerprint chain is discontinuous.
    Recovery is operational: restart the replica from the current base,
    or clear the ship directory and let the writer re-ship (see the
    replication runbook in docs/serving.md).
    """


class GraphFormatError(ReproError, ValueError):
    """An on-disk graph artifact violates its format.

    Subclasses ``ValueError`` because that is what the readers raised
    before the strict/lenient split; existing handlers stay valid.
    """


class TruncatedFileError(GraphFormatError):
    """A (gzip) file ended mid-stream — typically an interrupted copy."""


class EmptyGraphError(GraphFormatError):
    """A graph with zero nodes was requested.

    The model has no meaningful zero-node limit: the uniform jump vector
    ``v = 1/n`` is undefined, so solvers would fail deep inside the
    numerics with an opaque ``ZeroDivisionError``-shaped message.
    Constructors reject ``num_nodes == 0`` up front with this type
    instead of building a degenerate graph.
    """


class GraphIOError(ReproError, OSError):
    """Base class for failures reading persisted graph storage.

    Distinct from :class:`GraphFormatError` (a *parseable but invalid*
    artifact): this family covers storage-level faults — files missing,
    truncated, or failing their integrity digests.  Loaders raise these
    *before* handing out any graph object; a sharded store never
    returns a partially-loaded graph.
    """


class ShardMissingError(GraphIOError, FileNotFoundError):
    """A shard file named by the manifest does not exist on disk."""


class ShardIntegrityError(GraphIOError):
    """A shard file exists but its contents cannot be trusted."""


class ShardTruncatedError(ShardIntegrityError):
    """A shard ``.npz`` ends mid-stream — an interrupted copy or write."""


class ShardDigestMismatchError(ShardIntegrityError):
    """Shard contents disagree with the digest recorded in the manifest.

    Carries both sides of the comparison (hex strings) so operators can
    log what was expected against what was found.
    """

    def __init__(self, message: str, *, expected: str = "",
                 actual: str = "") -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class ManifestVersionError(GraphIOError):
    """The shard manifest was written by an incompatible format version."""

    def __init__(self, message: str, *, found=None, supported=None) -> None:
        super().__init__(message)
        self.found = found
        self.supported = supported


class DeltaError(ReproError, ValueError):
    """An edge delta is malformed or inconsistent with its base graph.

    Raised for self-links or duplicates inside a delta, insertions of
    edges that already exist, and deletions of edges that do not —
    applying such a delta silently would desynchronize the incremental
    solver's residual bookkeeping from the actual graph mutation.
    """


class StreamError(ReproError):
    """Base class for streaming-ingestion failures.

    Covers the crawl-event pipeline (:mod:`repro.serve.stream`): a
    malformed event, a window whose compacted delta is poison, a
    journal that cannot be resumed.  Individual malformed *records*
    are normally quarantined into the dead-letter queue rather than
    raised — this family surfaces only where the ingestor itself
    cannot continue.
    """


class StreamEventError(StreamError, ValueError):
    """A crawl event violates the stream schema.

    ``reason`` is a short machine-readable slug, also used verbatim as
    the dead-letter-queue entry's typed reason: ``"bad-json"``,
    ``"missing-field"``, ``"bad-type"``, ``"bad-op"``,
    ``"negative-id"``, ``"self-link"``, ``"out-of-range"``.
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


class GraphIOWarning(UserWarning):
    """Lenient-mode readers emit this when they skip malformed input.

    The message always ends with a parenthesized per-category count
    summary, e.g. ``(skipped: 2 malformed, 1 out-of-range)``, and the
    warning instance carries the raw counts in ``counts``.
    """

    def __init__(self, message: str, counts=None) -> None:
        super().__init__(message)
        self.counts = dict(counts or {})


class SolverAbort(ReproError):
    """Internal control-flow signal: a residual monitor (or budget)
    demands the current solve attempt stop immediately.

    ``reason`` is a short machine-readable slug (``"nan"``,
    ``"diverged"``, ``"stagnated"``, ``"time-budget"``).
    """

    def __init__(self, reason: str, message: str = "") -> None:
        super().__init__(message or reason)
        self.reason = reason


class BudgetExceeded(SolverAbort):
    """An iteration or wall-time budget ran out mid-solve."""


class SupervisionError(ReproError, RuntimeError):
    """Supervised fan-out execution could not complete.

    Raised by :class:`~repro.runtime.supervisor.TaskSupervisor` when a
    task exhausts its retry budget, or when degradation to in-process
    serial execution would be required but was disallowed
    (``allow_degrade=False`` / ``--no-degrade``).  Carries the partial
    :class:`~repro.runtime.supervisor.SupervisionReport` in ``report``
    so callers can inspect what *did* complete before the failure.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class InjectedFault(ReproError):
    """Raised by :mod:`repro.runtime.chaos` injectors — never in
    production code paths.  Distinct type so tests can assert that a
    failure was the planted one and not a genuine bug."""
