"""Evaluation harness: sampling, grouping, metrics, experiment runners
and terminal reporting for every reproduced table and figure."""

from .experiment import (
    ReproductionContext,
    run_absolute_mass_ranking,
    run_baseline_comparison,
    run_combined_ablation,
    run_core_repair,
    run_figure1,
    run_figure2_contributions,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_gamma_ablation,
    run_graph_stats,
    run_solver_ablation,
    run_pagerank_distribution,
    run_table1,
    run_table2,
)
from .audit import CoreAuditFinding, CoreAuditReport, audit_core
from .latency import AUDIT_THRESHOLD, AttackOutcome, LatencyProbe
from .grouping import MassGroup, group_composition, split_into_groups
from .metrics import (
    PAPER_THRESHOLDS,
    PrecisionPoint,
    counts_above_thresholds,
    detection_metrics,
    paper_thresholds,
    precision_at,
    precision_curve,
)
from .reporting import render_curves, render_loglog, render_stacked_bars
from .adversarial import (
    attack_core_infiltration,
    attack_good_link_harvest,
    run_robustness_experiment,
)
from .stability import (
    resolve_hosts,
    run_stability_experiment,
    world_at_epoch,
)
from .registry import (
    EXPERIMENTS,
    is_contextual,
    list_experiments,
    run_experiment,
)
from .sensitivity import run_gamma_sensitivity, run_rho_sensitivity
from .trustrank_study import demotion_quality, run_trustrank_study
from .thresholds import (
    BootstrapInterval,
    bootstrap_precision,
    choose_tau,
    detection_volume,
)
from .results import TableResult
from .sampling import (
    LABEL_GOOD,
    LABEL_NONEXISTENT,
    LABEL_SPAM,
    LABEL_UNKNOWN,
    EvaluationSample,
    InspectionOracle,
    build_evaluation_sample,
    uniform_sample,
)

__all__ = [
    "ReproductionContext",
    "run_table1",
    "run_figure1",
    "run_figure2_contributions",
    "run_graph_stats",
    "run_pagerank_distribution",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_core_repair",
    "run_absolute_mass_ranking",
    "run_baseline_comparison",
    "run_gamma_ablation",
    "run_combined_ablation",
    "run_solver_ablation",
    "CoreAuditFinding",
    "CoreAuditReport",
    "audit_core",
    "AUDIT_THRESHOLD",
    "AttackOutcome",
    "LatencyProbe",
    "MassGroup",
    "split_into_groups",
    "group_composition",
    "PAPER_THRESHOLDS",
    "paper_thresholds",
    "PrecisionPoint",
    "precision_at",
    "precision_curve",
    "counts_above_thresholds",
    "detection_metrics",
    "TableResult",
    "choose_tau",
    "bootstrap_precision",
    "detection_volume",
    "BootstrapInterval",
    "attack_good_link_harvest",
    "attack_core_infiltration",
    "run_robustness_experiment",
    "world_at_epoch",
    "resolve_hosts",
    "run_stability_experiment",
    "demotion_quality",
    "run_trustrank_study",
    "run_gamma_sensitivity",
    "run_rho_sensitivity",
    "EXPERIMENTS",
    "list_experiments",
    "is_contextual",
    "run_experiment",
    "render_stacked_bars",
    "render_curves",
    "render_loglog",
    "LABEL_GOOD",
    "LABEL_SPAM",
    "LABEL_UNKNOWN",
    "LABEL_NONEXISTENT",
    "EvaluationSample",
    "InspectionOracle",
    "uniform_sample",
    "build_evaluation_sample",
]
