"""Adversarial robustness of mass-based detection (Section 6's claim).

The paper argues the method is "robust even in the event that spammers
learn about it": collecting good links helps a spammer only so much,
and "effective tampering ... would require non-obvious manipulations
of the good graph", which are impossible without knowing the actual
core.  This module makes those attack models executable:

* :func:`attack_good_link_harvest` — the knowledgeable spammer buys or
  hijacks many additional links from good hosts to the farm targets
  (the attack the paper says only *dilutes* detection per target, at
  real cost per link);
* :func:`attack_core_infiltration` — the stronger adversary gets spam
  hosts *into* the good core itself (e.g. by compromising listed
  hosts), the manipulation the paper deems virtually impossible
  without knowing the core;
* :func:`run_robustness_experiment` — sweeps attack intensities and
  reports how the detector's precision/recall over farm targets moves,
  so the cost-benefit trade-off the paper gestures at becomes a curve.

All attacks operate on an immutable world by *deriving* a new graph
(the original is never mutated), so one context can be attacked many
ways.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.detector import MassDetector
from ..core.mass import estimate_spam_mass
from ..graph.webgraph import WebGraph
from ..synth.assembler import SyntheticWorld
from ..synth.hostgraph import sample_targets
from .metrics import detection_metrics
from .results import TableResult

__all__ = [
    "attack_good_link_harvest",
    "attack_core_infiltration",
    "run_robustness_experiment",
]


def _with_extra_edges(
    graph: WebGraph, sources: np.ndarray, dests: np.ndarray
) -> WebGraph:
    """Return a new graph with the given edges appended."""
    existing = np.column_stack(
        (
            np.repeat(
                np.arange(graph.num_nodes, dtype=np.int64),
                graph.out_degree(),
            ),
            graph.indices,
        )
    )
    extra = np.column_stack(
        (
            np.asarray(sources, dtype=np.int64),
            np.asarray(dests, dtype=np.int64),
        )
    )
    edges = np.concatenate([existing, extra], axis=0)
    return WebGraph.from_edges(graph.num_nodes, edges, graph.names)


def attack_good_link_harvest(
    world: SyntheticWorld,
    targets: Sequence[int],
    links_per_target: int,
    rng: np.random.Generator,
    *,
    popularity_weighted: bool = True,
) -> WebGraph:
    """The good-link-harvest attack: each target collects
    ``links_per_target`` new links from good hosts.

    Sources are good hosts with outlinks; ``popularity_weighted``
    models an attacker going after visible hosts (harder, more
    effective per link).  Returns the attacked graph.
    """
    if links_per_target < 1:
        raise ValueError("links_per_target must be positive")
    targets_arr = np.asarray(list(targets), dtype=np.int64)
    if len(targets_arr) == 0:
        raise ValueError("need at least one target")
    good = ~world.spam_mask
    out_deg = world.graph.out_degree()
    candidates = np.flatnonzero(good & (out_deg > 0))
    if popularity_weighted:
        weights = world.graph.in_degree()[candidates].astype(np.float64) + 1.0
    else:
        weights = np.ones(len(candidates), dtype=np.float64)
    sources: List[np.ndarray] = []
    dests: List[np.ndarray] = []
    for target in targets_arr:
        picked = sample_targets(rng, candidates, weights, links_per_target)
        sources.append(picked)
        dests.append(np.full(len(picked), target, dtype=np.int64))
    return _with_extra_edges(
        world.graph, np.concatenate(sources), np.concatenate(dests)
    )


def attack_core_infiltration(
    world: SyntheticWorld,
    core: np.ndarray,
    num_moles: int,
    rng: np.random.Generator,
    *,
    links_per_mole: int = 20,
) -> Tuple[WebGraph, np.ndarray]:
    """The core-infiltration attack: ``num_moles`` spam hosts make it
    into the good core and link at the farm targets.

    Models a compromised directory listing or purchased ``.edu`` page:
    the moles are existing spam boosters that (a) get appended to the
    core the estimator will use, and (b) spread ``links_per_mole``
    outlinks over the farm targets, becoming trust conduits.

    Returns ``(attacked_graph, polluted_core)``.
    """
    if num_moles < 1:
        raise ValueError("need at least one mole")
    spam_pool = world.spam_nodes()
    if len(spam_pool) < num_moles:
        raise ValueError("not enough spam hosts to act as moles")
    moles = rng.choice(spam_pool, size=num_moles, replace=False)
    targets = world.group("spam:targets")
    sources = np.repeat(moles, links_per_mole)
    dests = rng.choice(targets, size=len(sources))
    attacked = _with_extra_edges(world.graph, sources, dests)
    polluted = np.unique(
        np.concatenate([np.asarray(core, dtype=np.int64), moles])
    )
    return attacked, polluted


def run_robustness_experiment(
    ctx,
    *,
    harvest_fractions: Sequence[float] = (0.0, 0.1, 0.5, 1.0),
    mole_levels: Sequence[int] = (1, 5, 20),
    tau: float = 0.98,
    seed: int = 71,
) -> TableResult:
    """Sweep both attacks and tabulate the evasion-vs-rank trade-off.

    ``ctx`` is a :class:`~repro.eval.experiment.ReproductionContext`.

    The harvest sweep scales the purchased good links with each farm's
    own size (``harvest_fraction × boosters``), because that is the
    economically meaningful axis: the table reports both the
    *estimated* relative mass the detector sees and the *true* relative
    mass (oracle), showing that by the time ``m̃`` falls below τ the
    target's rank genuinely comes from good hosts — the spammer has
    evaded the detector only by paying for honest-looking support, the
    paper's cost argument.  The infiltration rows need the attacker to
    know the core; the "blind moles" row shows the same spam links are
    useless when the guessed hosts are *not* in the core.
    """
    from ..core.mass import true_relative_mass

    rng = np.random.default_rng(seed)
    world = ctx.world
    targets = world.group("spam:targets")
    spam_nodes = world.spam_nodes()
    farm_sizes = {}
    for name, ids in world.groups_matching("farm:").items():
        if name.endswith(":boosters"):
            tag = name.rsplit(":", 1)[0]
            target_group = f"{tag}:target"
            if target_group in world.groups:
                farm_sizes[int(world.group(target_group)[0])] = len(ids)
    rows = []

    def measure(graph: WebGraph, core: np.ndarray, label: str) -> None:
        estimates = estimate_spam_mass(graph, core, gamma=ctx.gamma)
        result = MassDetector(tau=tau, rho=ctx.rho).detect(estimates)
        metrics = detection_metrics(
            result.candidate_mask,
            world.spam_mask,
            restrict_to=result.eligible_mask,
        )
        true_rel = true_relative_mass(graph, spam_nodes)
        rows.append(
            [
                label,
                round(float(estimates.relative[targets].mean()), 3),
                round(float(true_rel[targets].mean()), 3),
                int(result.candidate_mask[targets].sum()),
                round(metrics["precision"], 3),
            ]
        )

    for fraction in harvest_fractions:
        if fraction == 0.0:
            measure(ctx.graph, ctx.core, "baseline (no attack)")
            continue
        sources: List[np.ndarray] = []
        dests: List[np.ndarray] = []
        good = ~world.spam_mask
        out_deg = world.graph.out_degree()
        candidates = np.flatnonzero(good & (out_deg > 0))
        weights = (
            world.graph.in_degree()[candidates].astype(np.float64) + 1.0
        )
        for target in targets:
            links = max(int(round(fraction * farm_sizes.get(int(target), 20))), 1)
            picked = sample_targets(rng, candidates, weights, links)
            sources.append(picked)
            dests.append(np.full(len(picked), int(target), dtype=np.int64))
        attacked = _with_extra_edges(
            world.graph, np.concatenate(sources), np.concatenate(dests)
        )
        measure(
            attacked,
            ctx.core,
            f"harvest {fraction:g}x boosters in good links",
        )
    for moles in mole_levels:
        attacked, polluted = attack_core_infiltration(
            world, ctx.core, moles, rng
        )
        measure(attacked, polluted, f"core infiltration, {moles} moles")
    # blind moles: same spam conduits, but the attacker does not know
    # the core, so the hosts never enter it
    attacked, _ = attack_core_infiltration(
        world, ctx.core, max(mole_levels), rng
    )
    measure(
        attacked,
        ctx.core,
        f"blind moles ({max(mole_levels)}, core unknown)",
    )
    return TableResult(
        "A5",
        "Adversarial robustness of mass-based detection (Section 6)",
        [
            "attack",
            "mean target m~ (est.)",
            "mean target m (true)",
            "targets caught",
            "precision (elig.)",
        ],
        rows,
        notes=[
            f"tau = {tau}; evading the detector through good links "
            "requires genuinely shifting the target's rank onto good "
            "hosts (true m falls with estimated m~) — i.e. paying for "
            "the rank honestly, the paper's cost argument",
            "core infiltration defeats the method but requires knowing "
            "the actual core (the blind-mole row shows guessed hosts "
            "achieve nothing) — the paper's non-obvious-manipulation "
            "claim",
        ],
    )
