"""Good-core integrity auditing (paper Section 4.4 / Section 5).

The whole mass-estimation pipeline leans on one operational assumption:
the good core ``Ṽ⁺`` contains only good hosts.  Section 4.4 warns what
happens when it does not — a spam host inside the core receives core
support, its estimated mass collapses, and every host it endorses is
whitewashed along with it.  The paper's own core needed manual repair
(Section 4.4.2's anomalies) before precision held.

:func:`audit_core` mechanizes that repair step.  It cross-checks each
core member against two independent signals:

* **ground-truth labels**, when available (``"spam-labeled"``) — the
  synthetic worlds always carry them, real bundles carry whatever the
  assessors produced;
* **the estimates themselves** (``"high-relative-mass"``) — a genuine
  core member is *structurally guaranteed* a strongly negative relative
  mass, because it receives its own core jump.  A core member whose
  relative mass is at or above ``relative_mass_threshold`` is therefore
  anomalous regardless of labels: the estimates are telling us the core
  barely supports it.

The auditor returns a :class:`CoreAuditReport` with the flagged
members, the reason(s) each was flagged, and a ``repaired_core`` with
the flagged members removed — ready to feed back into
:func:`repro.core.mass.estimate_spam_mass`.  The CLI surface is
``repro-spam audit-core`` (exit status 5 when anomalies are found, so
pipelines can gate on a dirty core).

Chaos-injected contamination (see
:func:`repro.runtime.chaos.contaminate_core`) must be caught exactly:
the planted spam nodes are flagged, nothing else is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.mass import MassEstimates
from ..obs import get_telemetry

__all__ = ["CoreAuditFinding", "CoreAuditReport", "audit_core"]

#: Relative mass at which a core member is considered anomalous.  Core
#: members receive their own core jump, so genuine ones sit well below
#: zero; 0.5 (the paper's Algorithm 2 spam threshold) is conservative.
DEFAULT_RELATIVE_MASS_THRESHOLD = 0.5


@dataclass(frozen=True)
class CoreAuditFinding:
    """One anomalous core member and why it was flagged."""

    node: int
    #: Ground-truth/assessor label when known (``"spam"``/``"good"``),
    #: else ``None``.
    label: Optional[str]
    relative_mass: float
    pagerank: float
    #: Sorted reason tags: ``"spam-labeled"``, ``"high-relative-mass"``.
    reasons: tuple

    def describe(self) -> str:
        """One-line operator-facing description."""
        label = self.label if self.label is not None else "unlabeled"
        return (
            f"node {self.node} [{label}] relative mass "
            f"{self.relative_mass:+.3f} ({', '.join(self.reasons)})"
        )


@dataclass
class CoreAuditReport:
    """Outcome of a good-core audit.

    ``repaired_core`` is the input core with every flagged member
    removed (order preserved) — the Section 4.4.2 repair, ready for a
    re-estimate.
    """

    core_size: int
    threshold: float
    findings: List[CoreAuditFinding] = field(default_factory=list)
    repaired_core: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )

    @property
    def clean(self) -> bool:
        """True when no core member was flagged."""
        return not self.findings

    @property
    def flagged_nodes(self) -> List[int]:
        """Node ids of the flagged core members."""
        return [f.node for f in self.findings]

    def summary(self) -> str:
        """Operator-facing summary line."""
        if self.clean:
            return f"core audit: {self.core_size:,} members, clean"
        return (
            f"core audit: {len(self.findings)} of {self.core_size:,} "
            f"members anomalous (repaired core: "
            f"{len(self.repaired_core):,})"
        )


def _spam_mask_from(
    world,
    num_nodes: int,
) -> Optional[np.ndarray]:
    """Boolean spam mask from a world / labels mapping / mask / None."""
    if world is None:
        return None
    if isinstance(world, np.ndarray):
        if world.dtype != np.bool_:
            raise TypeError("spam-mask array must be boolean")
        if world.shape != (num_nodes,):
            raise ValueError(
                "spam mask length must equal the estimate's node count"
            )
        return world
    if isinstance(world, Mapping):
        mask = np.zeros(num_nodes, dtype=bool)
        for node, label in world.items():
            if label == "spam":
                mask[int(node)] = True
        return mask
    spam_mask = getattr(world, "spam_mask", None)
    if spam_mask is None:
        raise TypeError(
            "world must be a SyntheticWorld, a {node: label} mapping, "
            "a boolean spam mask, or None"
        )
    if spam_mask.shape != (num_nodes,):
        raise ValueError("world and estimates cover different node counts")
    return spam_mask


def audit_core(
    world: Union[None, np.ndarray, Mapping[int, str], "object"],
    estimates: MassEstimates,
    core: Sequence[int],
    *,
    relative_mass_threshold: float = DEFAULT_RELATIVE_MASS_THRESHOLD,
) -> CoreAuditReport:
    """Audit a good core against labels and its own mass estimates.

    Parameters
    ----------
    world:
        Label source: a :class:`~repro.synth.assembler.SyntheticWorld`,
        a ``{node: "spam"/"good"}`` mapping (the bundle label format),
        a boolean spam mask, or ``None`` for label-free auditing (the
        relative-mass signal still applies).
    estimates:
        The :class:`~repro.core.mass.MassEstimates` computed *with this
        core* — auditing one core against another core's estimates is
        meaningless.
    core:
        The core ``Ṽ⁺`` node ids that produced ``estimates``.
    relative_mass_threshold:
        Core members with relative mass at or above this are flagged
        even without a spam label.

    Returns
    -------
    CoreAuditReport
        Findings plus a ``repaired_core`` with flagged members removed.
    """
    if not np.isfinite(relative_mass_threshold):
        raise ValueError("relative_mass_threshold must be finite")
    core = np.asarray(core, dtype=np.int64)
    num_nodes = estimates.num_nodes
    if core.size and (core.min() < 0 or core.max() >= num_nodes):
        raise ValueError("core contains node ids outside the graph")
    spam_mask = _spam_mask_from(world, num_nodes)
    labels: Dict[int, str] = {}
    if isinstance(world, Mapping):
        labels = {int(k): v for k, v in world.items()}

    findings: List[CoreAuditFinding] = []
    flagged = np.zeros(core.shape, dtype=bool)
    for pos, node in enumerate(core):
        node = int(node)
        reasons = []
        if spam_mask is not None and spam_mask[node]:
            reasons.append("spam-labeled")
        rel = float(estimates.relative[node])
        if rel >= relative_mass_threshold:
            reasons.append("high-relative-mass")
        if not reasons:
            continue
        flagged[pos] = True
        if labels:
            label = labels.get(node)
        elif spam_mask is not None:
            label = "spam" if spam_mask[node] else "good"
        else:
            label = None
        findings.append(
            CoreAuditFinding(
                node=node,
                label=label,
                relative_mass=rel,
                pagerank=float(estimates.pagerank[node]),
                reasons=tuple(reasons),
            )
        )

    report = CoreAuditReport(
        core_size=int(core.size),
        threshold=relative_mass_threshold,
        findings=findings,
        repaired_core=core[~flagged],
    )
    tele = get_telemetry()
    if tele.enabled:
        tele.event(
            "audit.core",
            core_size=report.core_size,
            flagged=len(findings),
            threshold=relative_mass_threshold,
        )
        tele.inc("audit.flagged", len(findings))
    return report
