"""Experiment runners: one function per reproduced table/figure.

Each ``run_*`` function reproduces one artifact from the paper's
evaluation (see DESIGN.md's per-experiment index) and returns a
:class:`~repro.eval.results.TableResult`.  The heavyweight shared state
— synthetic world, good core, mass estimates, eligibility filter and
labeled evaluation sample — is built once into a
:class:`ReproductionContext` and reused across experiments, the way the
paper computes its two PageRank vectors once and then analyses them
every which way.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.distribution import mass_distribution, negative_mass_decomposition
from ..analysis.powerlaw import fit_continuous_powerlaw
from ..baselines.degree_outlier import degree_outlier_mask
from ..baselines.naive import scheme1_label, scheme1_mask, scheme2_label, scheme2_mask
from ..baselines.spamrank import SupporterDeviationDetector
from ..baselines.trustrank import trustrank, trustrank_detector
from ..core.contribution import contribution_vector
from ..core.detector import MassDetector
from ..core.mass import (
    MassEstimates,
    blacklist_mass,
    estimate_spam_mass,
    true_spam_mass,
)
from ..core.combined import combine_average, combine_weighted
from ..core.pagerank import DEFAULT_DAMPING, pagerank, scale_scores
from ..obs import get_telemetry
from ..datasets.paper_graphs import (
    figure1_graph,
    figure1_pagerank_x,
    figure1_spam_contribution_x,
    figure2_graph,
    table1_expected,
)
from ..graph.webgraph import WebGraph
from ..synth.assembler import SyntheticWorld, WorldAssembler
from ..synth.goodcore import (
    country_only_core,
    repair_core,
    subsample_core,
)
from ..synth.hostgraph import BaseWebConfig, generate_base_web
from ..synth.scenario import (
    WorldConfig,
    build_world,
    default_good_core,
    true_gamma,
)
from .grouping import split_into_groups
from .metrics import (
    PAPER_THRESHOLDS,
    counts_above_thresholds,
    detection_metrics,
    precision_curve,
)
from .results import TableResult
from .sampling import EvaluationSample, build_evaluation_sample

__all__ = [
    "ReproductionContext",
    "run_table1",
    "run_figure1",
    "run_figure2_contributions",
    "run_graph_stats",
    "run_pagerank_distribution",
    "run_table2",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_core_repair",
    "run_absolute_mass_ranking",
    "run_baseline_comparison",
    "run_gamma_ablation",
    "run_combined_ablation",
    "run_solver_ablation",
]


class ReproductionContext:
    """Shared state for the Section 4 experiments.

    Attributes
    ----------
    world:
        The synthetic host-level world.
    core:
        The assembled good core ``Ṽ⁺`` (with the built-in coverage
        gaps that create the anomalies).
    estimates:
        Mass estimates from the γ-scaled core jump.
    rho:
        The scaled-PageRank filter threshold (paper: 10).
    eligible_mask:
        Nodes passing the filter (the paper's set ``T``).
    sample:
        The labeled evaluation sample ``T′``.
    gamma:
        The γ used for the core-jump scaling.
    """

    __slots__ = (
        "world",
        "core",
        "estimates",
        "rho",
        "eligible_mask",
        "sample",
        "gamma",
    )

    def __init__(
        self,
        world: SyntheticWorld,
        core: np.ndarray,
        estimates: MassEstimates,
        rho: float,
        eligible_mask: np.ndarray,
        sample: EvaluationSample,
        gamma: float,
    ) -> None:
        self.world = world
        self.core = core
        self.estimates = estimates
        self.rho = rho
        self.eligible_mask = eligible_mask
        self.sample = sample
        self.gamma = gamma

    @classmethod
    def build(
        cls,
        config: Optional[WorldConfig] = None,
        *,
        rho: float = 10.0,
        gamma: float = 0.85,
        uncovered_coverage: float = 0.03,
        sample_fraction: Optional[float] = None,
        frac_unknown: float = 0.061,
        frac_nonexistent: float = 0.05,
        sample_seed: int = 23,
        policy=None,
        engine=None,
    ) -> "ReproductionContext":
        """Build a context following the paper's Section 4 procedure.

        γ defaults to the paper's conservative 0.85; the default
        ``sample_fraction=None`` inspects the *whole* filtered set
        (affordable at synthetic scale, and it removes sampling noise
        from reproduced curves — pass 0.001 for the paper's 0.1%).

        ``policy`` optionally runs the two PageRank solves under a
        resilient runtime
        (:class:`~repro.runtime.resilient.RuntimePolicy`): checkpointed,
        budgeted and with solver fallback — the CLI's
        ``--checkpoint-dir``/``--resume``/``--time-budget`` flags end up
        here.

        ``engine`` optionally supplies a
        :class:`~repro.perf.PagerankEngine`; by default the solves use
        the process-wide shared engine, so ``p`` and ``p'`` come out of
        one batched block iteration over the cached operator.
        """
        tele = get_telemetry()
        with tele.span("context-build", rho=rho, gamma=gamma) as sp:
            world = build_world(config)
            core = default_good_core(
                world, uncovered_coverage=uncovered_coverage
            )
            estimates = estimate_spam_mass(
                world.graph, core, gamma=gamma, policy=policy, engine=engine
            )
            scaled = estimates.scaled_pagerank()
            eligible_mask = scaled >= rho
            sample = build_evaluation_sample(
                world,
                np.flatnonzero(eligible_mask),
                np.random.default_rng(sample_seed),
                fraction=sample_fraction,
                frac_unknown=frac_unknown,
                frac_nonexistent=frac_nonexistent,
            )
            if tele.enabled:
                sp.set("nodes", world.graph.num_nodes)
                sp.set("core_size", len(core))
                sp.set("eligible", int(eligible_mask.sum()))
            return cls(
                world, core, estimates, rho, eligible_mask, sample, gamma
            )

    @property
    def graph(self) -> WebGraph:
        """The world's host graph."""
        return self.world.graph

    def num_eligible(self) -> int:
        """Size of the filtered set ``T``."""
        return int(self.eligible_mask.sum())

    def updated(
        self,
        delta,
        *,
        engine=None,
        sample_seed: int = 23,
        sample_fraction: Optional[float] = None,
        frac_unknown: float = 0.061,
        frac_nonexistent: float = 0.05,
    ) -> "ReproductionContext":
        """Re-derive the context after an edge delta, incrementally.

        Accepts a :class:`~repro.graph.delta.GraphDelta` (applied to the
        current graph) or a ready
        :class:`~repro.graph.delta.DeltaApplication`.  The two PageRank
        vectors are *updated* from this context's estimates by residual
        pushes seeded at the touched nodes (``previous=`` path of
        :func:`~repro.core.mass.estimate_spam_mass`), then the
        eligibility filter and evaluation sample are re-derived.  The
        good core, thresholds and γ carry over unchanged.
        """
        from ..graph.delta import GraphDelta

        if isinstance(delta, GraphDelta):
            application = delta.apply(self.graph)
        else:
            application = delta
        tele = get_telemetry()
        with tele.span(
            "context-update", delta=len(application.delta)
        ) as sp:
            estimates = estimate_spam_mass(
                application,
                self.core,
                gamma=self.gamma,
                previous=self.estimates,
                engine=engine,
            )
            scaled = estimates.scaled_pagerank()
            eligible_mask = scaled >= self.rho
            world = SyntheticWorld(
                application.after,
                self.world.spam_mask,
                self.world.groups,
                self.world.metadata,
            )
            sample = build_evaluation_sample(
                world,
                np.flatnonzero(eligible_mask),
                np.random.default_rng(sample_seed),
                fraction=sample_fraction,
                frac_unknown=frac_unknown,
                frac_nonexistent=frac_nonexistent,
            )
            if tele.enabled:
                sp.set("eligible", int(eligible_mask.sum()))
            return ReproductionContext(
                world,
                self.core,
                estimates,
                self.rho,
                eligible_mask,
                sample,
                self.gamma,
            )


# ----------------------------------------------------------------------
# T1 / F1 / F2 — the worked examples
# ----------------------------------------------------------------------


def run_table1(damping: float = DEFAULT_DAMPING) -> TableResult:
    """Reproduce Table 1 on the Figure 2 graph and check it against the
    paper's analytic values."""
    example = figure2_graph()
    graph = example.graph
    n = graph.num_nodes
    estimates = estimate_spam_mass(
        graph, example.good_core, damping=damping, gamma=None
    )
    actual_mass = scale_scores(
        true_spam_mass(graph, example.spam, damping=damping), n, damping
    )
    scaled_p = estimates.scaled_pagerank()
    scaled_core = estimates.scaled_core_pagerank()
    scaled_abs = estimates.scaled_absolute()
    expected = table1_expected(damping)
    rows = []
    max_error = 0.0
    for name in example.names_in_order():
        i = example.id_of(name)
        with np.errstate(invalid="ignore"):
            rel_actual = actual_mass[i] / scaled_p[i] if scaled_p[i] else 0.0
        row = [
            name,
            round(scaled_p[i], 4),
            round(scaled_core[i], 4),
            round(actual_mass[i], 4),
            round(scaled_abs[i], 4),
            round(rel_actual, 4),
            round(estimates.relative[i], 4),
        ]
        rows.append(row)
        exp = expected[name]
        max_error = max(
            max_error,
            abs(scaled_p[i] - exp["p"]),
            abs(scaled_core[i] - exp["p_core"]),
            abs(actual_mass[i] - exp["M"]),
            abs(scaled_abs[i] - exp["M_est"]),
            abs(estimates.relative[i] - exp["m_est"]),
        )
    return TableResult(
        "T1",
        "Table 1: node features of the Figure 2 graph (scaled by n/(1-c))",
        ["node", "p", "p_core", "M", "M_est", "m", "m_est"],
        rows,
        notes=[
            f"c={damping}, core={{g0,g1,g3}}, unscaled core jump",
            f"max |computed - paper analytic| = {max_error:.2e}",
        ],
    )


def run_figure1(
    k_values: Sequence[int] = (1, 2, 3, 5, 10, 20),
    damping: float = DEFAULT_DAMPING,
) -> TableResult:
    """Figure 1: x's PageRank vs the paper's closed form, the spam share
    of it, and both naive schemes' verdicts (scheme 1 must mislabel for
    every k; scheme 2 must flip to spam at k ≥ ceil(1/c))."""
    rows = []
    for k in k_values:
        example = figure1_graph(k)
        graph = example.graph
        x = example.id_of("x")
        scores = scale_scores(
            pagerank(graph, damping=damping).scores,
            graph.num_nodes,
            damping,
        )
        analytic = figure1_pagerank_x(k, damping)
        spam_part = figure1_spam_contribution_x(k, damping)
        label1 = scheme1_label(graph, x, example.spam)
        label2 = scheme2_label(graph, x, example.spam, damping=damping)
        rows.append(
            [
                k,
                round(scores[x], 4),
                round(analytic, 4),
                round(spam_part, 4),
                round(spam_part / analytic, 4),
                label1,
                label2,
            ]
        )
    return TableResult(
        "F1",
        "Figure 1: naive labeling schemes on the k-booster farm",
        [
            "k",
            "p_x (computed)",
            "p_x (analytic)",
            "spam part",
            "spam share",
            "scheme1",
            "scheme2",
        ],
        rows,
        notes=[
            f"c={damping}; scheme 1 always says good (2 good links vs 1 "
            "spam link); scheme 2 says spam once k >= ceil(1/c) = "
            f"{int(np.ceil(1 / damping))}",
        ],
    )


def run_figure2_contributions(
    damping: float = DEFAULT_DAMPING,
) -> TableResult:
    """Figure 2: good vs spam PageRank contributions to x — the example
    that defeats both naive schemes and motivates spam mass."""
    example = figure2_graph()
    graph = example.graph
    n = graph.num_nodes
    x = example.id_of("x")
    c = damping
    q_good = scale_scores(
        contribution_vector(graph, example.good, damping=damping), n, damping
    )[x]
    spam_only = [s for s in example.spam if s != x]
    q_spam = scale_scores(
        contribution_vector(graph, spam_only, damping=damping), n, damping
    )[x]
    analytic_good = 2 * c + 2 * c * c
    analytic_spam = c + 6 * c * c
    label2 = scheme2_label(graph, x, example.spam, damping=damping)
    rows = [
        ["q_x^{g0..g3}", round(q_good, 6), round(analytic_good, 6)],
        ["q_x^{s0..s6}", round(q_spam, 6), round(analytic_spam, 6)],
        ["spam/good ratio", round(q_spam / q_good, 4), round(analytic_spam / analytic_good, 4)],
    ]
    return TableResult(
        "F2",
        "Figure 2: PageRank contributions to x (scaled)",
        ["quantity", "computed", "paper analytic"],
        rows,
        notes=[
            f"scheme 2 labels x {label2!r} (the paper: it fails, saying "
            "good, because direct links from g0/g2 outweigh s0)",
            "spam nodes contribute 1.65x the good contribution at c=0.85",
        ],
    )


# ----------------------------------------------------------------------
# S41 / S43 — data-set statistics
# ----------------------------------------------------------------------


def run_graph_stats(
    config: Optional[WorldConfig] = None,
) -> TableResult:
    """Section 4.1: host-graph composition vs the Yahoo! figures.

    The paper's fractions describe a pure crawl snapshot; the base-web
    generator is checked against them directly, and the full world
    (base + communities + spam layer, all link-active) is reported
    alongside to document the dilution.
    """
    if config is None:
        config = WorldConfig()
    assembler = WorldAssembler()
    generate_base_web(
        assembler,
        np.random.default_rng(config.seed),
        BaseWebConfig(config.num_base_hosts, mean_outdegree=config.mean_outdegree),
    )
    base_stats = assembler.build().graph.stats()
    world_stats = build_world(config).graph.stats()
    rows = [
        ["hosts", 73_300_000, base_stats.num_nodes, world_stats.num_nodes],
        ["edges", 979_000_000, base_stats.num_edges, world_stats.num_edges],
        [
            "% no inlinks",
            35.0,
            round(100 * base_stats.frac_no_inlinks, 1),
            round(100 * world_stats.frac_no_inlinks, 1),
        ],
        [
            "% no outlinks",
            66.4,
            round(100 * base_stats.frac_no_outlinks, 1),
            round(100 * world_stats.frac_no_outlinks, 1),
        ],
        [
            "% isolated",
            25.8,
            round(100 * base_stats.frac_isolated, 1),
            round(100 * world_stats.frac_isolated, 1),
        ],
    ]
    return TableResult(
        "S41",
        "Section 4.1: host-graph statistics (paper vs synthetic)",
        ["metric", "paper (Yahoo! 2004)", "base web", "full world"],
        rows,
        notes=[
            "base web is the crawl-snapshot analogue the fractions "
            "describe; the full world adds link-active communities and "
            "spam farms, diluting the dangling/isolated shares",
        ],
    )


def run_pagerank_distribution(ctx: ReproductionContext) -> TableResult:
    """Section 4.3: the PageRank score distribution — most hosts at the
    minimum, a power-law head (paper: 91.1% below scaled score 2, only
    ~64k of 73.3M at 100x the minimum or more)."""
    scaled = ctx.estimates.scaled_pagerank()
    n = len(scaled)
    frac_below_2 = float((scaled < 2.0).sum()) / n
    frac_100x = float((scaled >= 100.0).sum()) / n
    fit = fit_continuous_powerlaw(scaled, xmin=2.0)
    rows = [
        ["% scaled PR < 2", 91.1, round(100 * frac_below_2, 1)],
        ["% scaled PR >= 100", round(100 * 64_000 / 73_300_000, 3), round(100 * frac_100x, 3)],
        ["power-law exponent (tail)", "(power law)", round(fit.alpha, 2)],
        ["filtered set |T| (PR >= rho)", 883_328, ctx.num_eligible()],
    ]
    return TableResult(
        "S43",
        "Section 4.3: PageRank distribution of the host graph",
        ["metric", "paper", "measured"],
        rows,
        notes=[
            f"rho = {ctx.rho} (scaled); paper percentages are for the "
            "73.3M-host Yahoo! graph — shapes, not magnitudes, transfer",
        ],
    )


# ----------------------------------------------------------------------
# T2 / F3 — sample groups and composition
# ----------------------------------------------------------------------


def run_table2(
    ctx: ReproductionContext, num_groups: int = 20
) -> TableResult:
    """Table 2: the relative-mass boundaries of the sorted sample
    groups."""
    groups = split_into_groups(ctx.sample, ctx.estimates.relative, num_groups)
    rows = [
        [g.index, round(g.smallest, 2), round(g.largest, 2), g.size]
        for g in groups
    ]
    return TableResult(
        "T2",
        "Table 2: relative-mass ranges of the sorted sample groups",
        ["group", "smallest m~", "largest m~", "size"],
        rows,
        notes=[
            f"sample = {len(ctx.sample)} hosts of |T| = "
            f"{ctx.num_eligible()} (paper: 892 of 883,328)",
            "paper range: -67.90 (core-biased negatives) up to 1.00",
        ],
    )


def run_figure3(
    ctx: ReproductionContext, num_groups: int = 20
) -> TableResult:
    """Figure 3: good/spam/anomalous composition of each group —
    spam prevalence must rise monotonically toward the top groups, with
    the gray anomalous hosts concentrated in the upper-middle."""
    groups = split_into_groups(ctx.sample, ctx.estimates.relative, num_groups)
    rows = [
        [
            g.index,
            g.usable,
            g.num_good,
            g.num_anomalous,
            g.num_spam,
            round(100 * g.spam_fraction(), 1),
        ]
        for g in groups
    ]
    top = groups[-3:]
    top_spam = sum(g.num_spam for g in top)
    top_usable = sum(g.usable for g in top)
    return TableResult(
        "F3",
        "Figure 3: sample composition per relative-mass group",
        ["group", "usable", "good", "anomalous", "spam", "% spam"],
        rows,
        notes=[
            "anomalous = good hosts of under-covered communities "
            "(portal / blogs / uncovered country), the paper's gray bars",
            f"top-3 groups: {top_spam}/{top_usable} spam "
            f"({100 * top_spam / max(top_usable, 1):.0f}%)",
        ],
    )


# ----------------------------------------------------------------------
# F4 / F5 — precision curves
# ----------------------------------------------------------------------


def run_figure4(
    ctx: ReproductionContext,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
) -> TableResult:
    """Figure 4: precision of Algorithm 2 vs τ, anomalous hosts counted
    as false positives and excluded."""
    included = precision_curve(
        ctx.sample, ctx.estimates.relative, thresholds
    )
    excluded = precision_curve(
        ctx.sample,
        ctx.estimates.relative,
        thresholds,
        exclude_anomalous=True,
    )
    totals = counts_above_thresholds(
        ctx.estimates.relative, ctx.eligible_mask, thresholds
    )
    rows = [
        [
            tau,
            total,
            round(inc.precision, 4),
            round(exc.precision, 4),
            inc.num_spam,
            inc.num_total,
        ]
        for tau, total, inc, exc in zip(
            thresholds, totals, included, excluded
        )
    ]
    return TableResult(
        "F4",
        "Figure 4: detection precision vs relative-mass threshold",
        [
            "tau",
            "|T| above",
            "prec (anom. incl.)",
            "prec (anom. excl.)",
            "spam above",
            "sample above",
        ],
        rows,
        notes=[
            "paper shape: ~1.00 at tau=0.98 (anomalies excluded), 94% at "
            "0.91, decaying to the positive-mass spam base rate (~48%) "
            "at tau=0",
        ],
    )


def run_figure5(
    ctx: ReproductionContext,
    fractions: Sequence[float] = (1.0, 0.1, 0.01, 0.005),
    country: str = "it",
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    subsample_seed: int = 5,
) -> TableResult:
    """Figure 5: precision for shrinking uniform cores and the narrow
    single-country core.

    Paper shape: 10% ≈ full core, graceful decline to 0.1%, and the
    country-only core *below* the 19x-smaller 0.1% core — breadth of
    coverage beats size.
    """
    rng = np.random.default_rng(subsample_seed)
    cores: Dict[str, np.ndarray] = {}
    for fraction in fractions:
        label = f"{100 * fraction:g}% core"
        if fraction >= 1.0:
            cores[label] = ctx.core
        else:
            cores[label] = subsample_core(ctx.core, fraction, rng)
    cores[f".{country} core"] = country_only_core(ctx.world, country)

    curves: Dict[str, List[float]] = {}
    sizes: Dict[str, int] = {}
    for label, core in cores.items():
        sizes[label] = len(core)
        if label == "100% core":
            estimates = ctx.estimates
        else:
            # the shared engine caches the operator, so each core in the
            # sweep reuses one Tᵀ and solves (p, p′) as a batched pair
            estimates = estimate_spam_mass(
                ctx.graph, core, gamma=ctx.gamma
            )
        points = precision_curve(ctx.sample, estimates.relative, thresholds)
        curves[label] = [p.precision for p in points]

    labels = list(cores)
    rows = []
    for i, tau in enumerate(thresholds):
        rows.append(
            [tau] + [round(curves[label][i], 4) for label in labels]
        )
    notes = [
        "core sizes: "
        + ", ".join(f"{label}={sizes[label]}" for label in labels),
        "paper shape: graceful decline with core size; the narrow "
        "country core performs worst despite not being the smallest "
        "(paper compares the .it core against a 19x-smaller uniform "
        "core; fractions here are adapted to the synthetic core size)",
    ]
    return TableResult(
        "F5",
        "Figure 5: detection precision for different cores",
        ["tau"] + labels,
        rows,
        notes=notes,
    )


# ----------------------------------------------------------------------
# F6 / S46 — absolute mass
# ----------------------------------------------------------------------


def run_figure6(ctx: ReproductionContext) -> TableResult:
    """Figure 6: the distribution of estimated absolute mass — a power
    law on the positive side (paper exponent -2.31), a two-curve
    superposition on the negative side."""
    scaled_mass = ctx.estimates.scaled_absolute()
    dist = mass_distribution(scaled_mass, fit_xmin=10.0)
    noncore_panel, core_panel = negative_mass_decomposition(
        scaled_mass, ctx.core
    )
    rows = [
        ["min mass", round(dist.min_mass, 1)],
        ["max mass", round(dist.max_mass, 1)],
        ["% positive", round(100 * dist.frac_positive, 1)],
        ["% negative", round(100 * dist.frac_negative, 1)],
        [
            "positive power-law exponent",
            round(-dist.positive_fit.alpha, 2) if dist.positive_fit else "n/a",
        ],
        ["positive histogram bins", len(dist.positive_bins)],
        ["negative histogram bins", len(dist.negative_bins)],
        [
            "negative curves (non-core / core median |mass|)",
            (
                f"{_median_of_panel(noncore_panel):.2f} / "
                f"{_median_of_panel(core_panel):.2f}"
            ),
        ],
    ]
    return TableResult(
        "F6",
        "Figure 6: distribution of estimated absolute mass (scaled)",
        ["metric", "value"],
        rows,
        notes=[
            "paper: positive side power law with exponent -2.31; "
            "negative side superposes the natural distribution with the "
            "core-biased one (core members pushed far negative)",
        ],
    )


def _median_of_panel(panel: Tuple[np.ndarray, np.ndarray]) -> float:
    bins, fractions = panel
    if len(bins) == 0:
        return float("nan")
    order = np.argsort(bins)
    cumulative = np.cumsum(fractions[order])
    if cumulative[-1] <= 0:
        return float("nan")
    idx = int(np.searchsorted(cumulative, cumulative[-1] / 2.0))
    return float(bins[order][min(idx, len(bins) - 1)])


def run_absolute_mass_ranking(
    ctx: ReproductionContext, top: int = 15
) -> TableResult:
    """Section 4.6: ranking by absolute mass intermixes popular good
    hosts with spam (the www.macromedia.com effect), so no usable
    cut-off exists — unlike the relative-mass ranking."""
    scaled_mass = ctx.estimates.scaled_absolute()
    order = np.argsort(-scaled_mass, kind="stable")[:top]
    rows = []
    for rank, node in enumerate(order, start=1):
        rows.append(
            [
                rank,
                ctx.graph.name_of(int(node)),
                round(scaled_mass[node], 1),
                round(ctx.estimates.relative[node], 3),
                ctx.world.label_of(int(node)),
            ]
        )
    top_abs_good = sum(1 for row in rows if row[4] == "good")
    rel_order = [
        int(x)
        for x in np.argsort(-ctx.estimates.relative, kind="stable")
        if ctx.eligible_mask[x]
    ][:top]
    top_rel_good = sum(
        1 for node in rel_order if not ctx.world.spam_mask[node]
    )
    return TableResult(
        "S46",
        "Section 4.6: top hosts by estimated absolute mass",
        ["rank", "host", "M_est (scaled)", "m_est", "truth"],
        rows,
        notes=[
            f"good hosts in top-{top} by absolute mass: {top_abs_good} "
            "(paper: popular good hosts intermixed, e.g. "
            "www.macromedia.com at #3)",
            f"good hosts in top-{top} by relative mass (eligible): "
            f"{top_rel_good}",
        ],
    )


# ----------------------------------------------------------------------
# S442 — core repair
# ----------------------------------------------------------------------


def run_core_repair(
    ctx: ReproductionContext, portal_domain: str = "megaportal.com"
) -> TableResult:
    """Section 4.4.2: add the portal community's few hub hosts to the
    core and recompute — the portal members' relative mass must
    collapse while everyone else's barely moves (paper: mean absolute
    change 0.0298 among positive-mass hosts; Alibaba samples dropped
    from 0.99 to below 0.53)."""
    hubs = ctx.world.group(f"portal:{portal_domain}:hubs")
    members = ctx.world.group(f"portal:{portal_domain}")
    repaired = repair_core(ctx.core, hubs)
    after = estimate_spam_mass(ctx.graph, repaired, gamma=ctx.gamma)

    before_rel = ctx.estimates.relative
    after_rel = after.relative
    member_mask = np.zeros(ctx.graph.num_nodes, dtype=bool)
    member_mask[members] = True
    eligible_members = member_mask & ctx.eligible_mask
    others_positive = (
        ~member_mask & ctx.eligible_mask & (before_rel > 0)
    )
    member_before = float(before_rel[eligible_members].mean())
    member_after = float(after_rel[eligible_members].mean())
    others_change = float(
        np.abs(after_rel[others_positive] - before_rel[others_positive]).mean()
    ) if others_positive.any() else 0.0
    rows = [
        ["hub hosts added to core", len(hubs)],
        ["eligible portal members", int(eligible_members.sum())],
        ["portal mean m~ before", round(member_before, 4)],
        ["portal mean m~ after", round(member_after, 4)],
        ["mean |change| elsewhere (positive m~)", round(others_change, 4)],
    ]
    return TableResult(
        "S442",
        "Section 4.4.2: anomaly elimination by core repair",
        ["metric", "value"],
        rows,
        notes=[
            "paper: adding 12 alibaba.com hosts dropped the anomalous "
            "hosts' m~ from ~0.99 to <=0.53 while the average absolute "
            "change elsewhere was 0.0298",
        ],
    )


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


def run_gamma_ablation(ctx: ReproductionContext) -> TableResult:
    """Section 3.5 ablation: the unscaled core jump ``v^{Ṽ⁺}`` makes
    ``‖p′‖ ≪ ‖p‖`` so absolute mass collapses onto PageRank and
    relative mass saturates near 1 for nearly everyone — scaling to
    ``‖w‖ = γ`` fixes it."""
    unscaled = estimate_spam_mass(ctx.graph, ctx.core, gamma=None)
    scaled = ctx.estimates
    spam_eligible = ctx.world.spam_mask & ctx.eligible_mask
    good_eligible = ~ctx.world.spam_mask & ctx.eligible_mask

    def describe(est: MassEstimates) -> List[float]:
        norm_ratio = float(est.core_pagerank.sum() / est.pagerank.sum())
        near_pr = float(
            (
                np.abs(est.absolute - est.pagerank)
                < 0.05 * np.maximum(est.pagerank, 1e-300)
            ).mean()
        )
        sep = float(
            est.relative[spam_eligible].mean()
            - est.relative[good_eligible].mean()
        )
        return [
            round(norm_ratio, 4),
            round(100 * near_pr, 1),
            round(float(est.relative[good_eligible].mean()), 3),
            round(float(est.relative[spam_eligible].mean()), 3),
            round(sep, 3),
        ]

    columns = [
        "variant",
        "||p'|| / ||p||",
        "% nodes with M~ ~= p",
        "mean m~ (good, eligible)",
        "mean m~ (spam, eligible)",
        "separation",
    ]
    rows = [
        ["unscaled v^core"] + describe(unscaled),
        [f"scaled w (gamma={ctx.gamma})"] + describe(scaled),
    ]
    return TableResult(
        "A1",
        "Ablation: gamma-scaling of the core jump vector (Section 3.5)",
        columns,
        rows,
        notes=[
            "paper: with the unscaled jump the absolute mass estimates "
            "were 'virtually identical to the PageRank scores for most "
            "hosts' — useless; scaling restores the good/spam separation",
        ],
    )


def run_solver_ablation(
    ctx: ReproductionContext,
    methods: Sequence[str] = ("jacobi", "gauss_seidel", "power", "bicgstab"),
    tol: float = 1e-10,
) -> TableResult:
    """Solver ablation (Section 2.2): the linear-system solvers reach
    the same PageRank vector; Gauss–Seidel converges in fewer sweeps
    than Jacobi (the "regularly faster" remark), and the power-iteration
    fixed point equals the normalized linear solution."""
    import time

    from ..core.pagerank import pagerank as run_pagerank

    graph = ctx.graph
    reference = None
    rows = []
    for method in methods:
        start = time.perf_counter()
        result = run_pagerank(
            graph, method=method, tol=tol, raise_on_divergence=False
        )
        elapsed = time.perf_counter() - start
        scores = result.scores
        normalized = scores / scores.sum()
        if reference is None:
            reference = normalized
            deviation = 0.0
        else:
            deviation = float(np.abs(normalized - reference).sum())
        rows.append(
            [
                method,
                result.iterations,
                round(elapsed, 4),
                f"{result.residual:.2e}",
                result.converged,
                f"{deviation:.2e}",
            ]
        )

    # the batched engine as a final row: one dangling-restricted block
    # iteration solving the same jump vector (stacked width 1)
    from ..perf import PagerankEngine

    engine = PagerankEngine()
    engine.bundle(graph)  # build outside the timed region, like the rows above
    start = time.perf_counter()
    batch = engine.solve_many(graph, [None], tol=tol, check=False)
    elapsed = time.perf_counter() - start
    normalized = batch.scores[:, 0] / batch.scores[:, 0].sum()
    deviation = float(np.abs(normalized - reference).sum())
    rows.append(
        [
            "batched_jacobi",
            int(batch.iterations[0]),
            round(elapsed, 4),
            f"{float(batch.residuals[0]):.2e}",
            bool(batch.converged[0]),
            f"{deviation:.2e}",
        ]
    )
    return TableResult(
        "A2",
        "Ablation: PageRank solver comparison",
        [
            "solver",
            "iterations",
            "seconds",
            "residual",
            "converged",
            "L1 dev. from jacobi (normalized)",
        ],
        rows,
        notes=[
            f"n = {graph.num_nodes}, tol = {tol}; the power method solves "
            "the eigenvector formulation, whose fixed point is the "
            "normalized linear solution (all solutions compared after "
            "normalization)",
        ],
    )


def run_baseline_comparison(ctx: ReproductionContext) -> TableResult:
    """Detector shoot-out on the same world: mass detection vs
    TrustRank-demotion read-out vs naive schemes vs degree outliers vs
    supporter-distribution deviation.

    Paper expectation: mass detection wins on precision at high τ; the
    link-pattern baselines catch only regular/auto-generated structures
    and the naive schemes need oracle in-neighbour labels yet still
    miss indirect boosting.
    """
    world = ctx.world
    graph = ctx.graph
    eligible = ctx.eligible_mask
    spam_mask = world.spam_mask

    detector = MassDetector(tau=0.98, rho=ctx.rho)
    mass_mask = detector.detect(ctx.estimates).candidate_mask

    trust = trustrank(
        graph,
        lambda node: not spam_mask[node],
        seed_budget=max(len(ctx.core) // 20, 20),
    )
    trust_mask = trustrank_detector(
        graph, trust.trust, ctx.estimates.pagerank, rho=ctx.rho
    )

    s1_mask = scheme1_mask(graph, np.flatnonzero(spam_mask)) & eligible
    s2_mask = scheme2_mask(graph, np.flatnonzero(spam_mask)) & eligible
    degree_mask = degree_outlier_mask(graph) & eligible
    supporter_mask = (
        SupporterDeviationDetector(threshold=0.85).detect(
            graph, ctx.estimates.pagerank
        )
        & eligible
    )

    s1_all = scheme1_mask(graph, np.flatnonzero(spam_mask))
    s2_all = scheme2_mask(graph, np.flatnonzero(spam_mask))
    degree_all = degree_outlier_mask(graph)
    supporter_all = SupporterDeviationDetector(threshold=0.85).detect(
        graph, ctx.estimates.pagerank
    )

    rows = []
    for name, elig_mask, all_mask in (
        ("mass (tau=0.98)", mass_mask, mass_mask),
        ("trustrank read-out", trust_mask, trust_mask),
        ("naive scheme 1 (oracle labels)", s1_mask, s1_all),
        ("naive scheme 2 (oracle labels)", s2_mask, s2_all),
        ("degree outliers", degree_mask, degree_all),
        ("supporter deviation", supporter_mask, supporter_all),
    ):
        restricted = detection_metrics(
            elig_mask, spam_mask, restrict_to=eligible
        )
        unrestricted = detection_metrics(all_mask, spam_mask)
        rows.append(
            [
                name,
                restricted["tp"],
                restricted["fp"],
                round(restricted["precision"], 4),
                round(restricted["recall"], 4),
                round(unrestricted["precision"], 4),
                round(unrestricted["recall"], 4),
            ]
        )
    return TableResult(
        "A4",
        "Ablation: detector comparison",
        [
            "detector",
            "tp (elig.)",
            "fp (elig.)",
            "prec (elig.)",
            "recall (elig.)",
            "prec (all)",
            "recall (all)",
        ],
        rows,
        notes=[
            "eligible = PageRank filter passed (the paper's population "
            "of interest: boosting beneficiaries); 'all' evaluates over "
            "every node",
            "naive schemes receive ground-truth in-neighbour labels "
            "(an oracle the realistic methods lack); mass detection at "
            "tau=0.98 trades recall for near-perfect precision and by "
            "design ignores expired-domain spam and sub-threshold hosts",
        ],
    )


def run_combined_ablation(
    ctx: ReproductionContext,
    blacklist_fractions: Sequence[float] = (0.05, 0.25, 0.5),
    seed: int = 17,
) -> TableResult:
    """Section 3.4 ablation: combining the white-list estimate with a
    partial black-list ``M̂ = PR(v^{Ṽ⁻})`` via the paper's average and
    the size-weighted variant."""
    rng = np.random.default_rng(seed)
    spam_nodes = ctx.world.spam_nodes()
    eligible = ctx.eligible_mask
    spam_mask = ctx.world.spam_mask
    spam_eligible = spam_mask & eligible
    good_eligible = ~spam_mask & eligible
    # the combined estimate averages two scales, so the saturated
    # tau = 0.98 of the pure white-list detector is no longer the right
    # operating point; compare all variants at a mid threshold instead
    tau = 0.45
    scaled_p = ctx.estimates.scaled_pagerank()

    def evaluate(relative: np.ndarray) -> List[float]:
        candidate = (scaled_p >= ctx.rho) & (relative >= tau)
        metrics = detection_metrics(
            candidate, spam_mask, restrict_to=eligible
        )
        separation = float(
            relative[spam_eligible].mean() - relative[good_eligible].mean()
        )
        return [
            round(separation, 4),
            round(metrics["precision"], 4),
            round(metrics["recall"], 4),
        ]

    rows = [["white-list only", "-"] + evaluate(ctx.estimates.relative)]
    for fraction in blacklist_fractions:
        take = max(int(round(fraction * len(spam_nodes))), 1)
        blacklist = rng.choice(spam_nodes, size=take, replace=False)
        # scale the spam-core jump to total weight 1 - gamma, the
        # Section 3.5 treatment applied to the black list
        black = blacklist_mass(ctx.graph, blacklist, gamma=ctx.gamma)
        for scheme_name, combined in (
            ("average", combine_average(ctx.estimates, black)),
            (
                "weighted",
                combine_weighted(
                    ctx.estimates,
                    black,
                    good_core_size=len(ctx.core),
                    spam_core_size=take,
                    est_good_size=int(ctx.gamma * ctx.graph.num_nodes),
                    est_spam_size=int(
                        (1 - ctx.gamma) * ctx.graph.num_nodes
                    ),
                ),
            ),
        ):
            rows.append(
                [f"combined ({scheme_name})", f"{100 * fraction:g}% blacklist"]
                + evaluate(combined.relative)
            )
    return TableResult(
        "A3",
        "Ablation: combined white-list + black-list estimators",
        ["estimator", "blacklist", "separation", "precision", "recall"],
        rows,
        notes=[
            "the paper proposes (M~ + M^)/2 and size-weighted variants "
            "when a spam core is also available (Section 3.4); "
            f"detection compared at tau = {tau}",
            "separation = mean relative mass of eligible spam minus "
            "eligible good",
        ],
    )
