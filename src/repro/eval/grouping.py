"""Sample grouping by relative mass (Table 2 and Figure 3).

The paper sorts its evaluation sample by estimated relative mass and
splits it into 20 groups of roughly equal size ("seeking a compromise
between approximately equal group sizes and relevant thresholds"),
then reports each group's mass range (Table 2) and its good/spam/
anomalous composition (Figure 3).  The same machinery reproduces both
artifacts here.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .sampling import LABEL_GOOD, LABEL_SPAM, EvaluationSample

__all__ = ["MassGroup", "split_into_groups", "group_composition"]


class MassGroup:
    """One of the sorted relative-mass groups.

    Attributes
    ----------
    index:
        1-based group number (group 1 holds the most negative mass,
        group 20 the highest — the paper's ordering).
    members:
        Node ids in the group.
    smallest, largest:
        The group's relative-mass range (Table 2's rows).
    num_good, num_spam, num_anomalous, num_excluded:
        Composition after inspection: anomalous counts good hosts in
        anomalous communities separately (Figure 3's gray bars);
        excluded covers unknown/nonexistent hosts.
    """

    __slots__ = (
        "index",
        "members",
        "smallest",
        "largest",
        "num_good",
        "num_spam",
        "num_anomalous",
        "num_excluded",
    )

    def __init__(
        self,
        index: int,
        members: np.ndarray,
        smallest: float,
        largest: float,
        num_good: int,
        num_spam: int,
        num_anomalous: int,
        num_excluded: int,
    ) -> None:
        self.index = index
        self.members = members
        self.smallest = smallest
        self.largest = largest
        self.num_good = num_good
        self.num_spam = num_spam
        self.num_anomalous = num_anomalous
        self.num_excluded = num_excluded

    @property
    def size(self) -> int:
        """Total sampled hosts in the group (before exclusions)."""
        return len(self.members)

    @property
    def usable(self) -> int:
        """Hosts remaining after exclusions (Figure 3's bar heights)."""
        return self.num_good + self.num_spam + self.num_anomalous

    def spam_fraction(self) -> float:
        """Spam share of the usable hosts (Figure 3's black share)."""
        return self.num_spam / self.usable if self.usable else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MassGroup({self.index}: [{self.smallest:.2f}, "
            f"{self.largest:.2f}], n={self.size}, spam={self.num_spam})"
        )


def split_into_groups(
    sample: EvaluationSample,
    relative_mass: np.ndarray,
    num_groups: int = 20,
) -> List[MassGroup]:
    """Sort the sample by relative mass and split into ``num_groups``.

    ``relative_mass`` is the full per-node vector; the sample indexes
    into it.  Groups are near-equal-sized (remainder spread over the
    leading groups, like the paper's 40–48 range around 892/20).
    Group 1 gets the most negative estimates, the last group the
    highest, matching Table 2's ordering.
    """
    if num_groups < 1:
        raise ValueError("num_groups must be positive")
    if len(sample) < num_groups:
        raise ValueError(
            f"cannot split {len(sample)} sample hosts into {num_groups} groups"
        )
    mass = relative_mass[sample.nodes]
    order = np.argsort(mass, kind="stable")
    base_size, remainder = divmod(len(order), num_groups)
    groups: List[MassGroup] = []
    cursor = 0
    for g in range(num_groups):
        size = base_size + (1 if g < remainder else 0)
        chunk = order[cursor : cursor + size]
        cursor += size
        member_nodes = sample.nodes[chunk]
        chunk_mass = mass[chunk]
        num_good = num_spam = num_anomalous = num_excluded = 0
        for local in chunk:
            label = sample.labels[local]
            if label == LABEL_SPAM:
                num_spam += 1
            elif label == LABEL_GOOD:
                if sample.anomalous_mask[local]:
                    num_anomalous += 1
                else:
                    num_good += 1
            else:
                num_excluded += 1
        groups.append(
            MassGroup(
                g + 1,
                member_nodes,
                float(chunk_mass.min()),
                float(chunk_mass.max()),
                num_good,
                num_spam,
                num_anomalous,
                num_excluded,
            )
        )
    return groups


def group_composition(groups: Sequence[MassGroup]) -> Dict[str, List[float]]:
    """Tabulate Figure 3's stacked-bar data from the groups.

    Returns aligned lists: group index, usable size, good count, spam
    count, anomalous count and spam fraction — one entry per group.
    """
    return {
        "group": [g.index for g in groups],
        "usable": [g.usable for g in groups],
        "good": [g.num_good for g in groups],
        "spam": [g.num_spam for g in groups],
        "anomalous": [g.num_anomalous for g in groups],
        "spam_fraction": [g.spam_fraction() for g in groups],
    }
