"""Detection latency: how many crawl events until an attack is caught.

The batch metrics (:mod:`repro.eval.metrics`) ask *whether* the mass
estimator catches a spam structure; a temporal attack asks *when*.  A
gradually grown farm is invisible by construction for its first many
events — the whole point of staying under ρ — so the figure of merit is
the number of stream events between the attack's onset and the first
committed window whose scores put the target over the detector's gate:

* ``expired-takeover`` / ``gradual-farm`` — the Algorithm 2 gate the
  serving daemon's ``top`` queries use: scaled PageRank ≥ ρ **and**
  relative mass ≥ τ.
* ``stale-core`` — the core-audit gate (:func:`repro.eval.audit_core`):
  the stale member's relative mass crossing the audit threshold, which
  is what flags a supposedly-good host for removal from ``Ṽ⁺``.

:class:`LatencyProbe` attaches to a
:class:`~repro.serve.stream.StreamIngestor`'s ``on_commit`` hook and
evaluates the gates against every published epoch, so the measurement
uses exactly the scores the daemon serves — no side re-estimation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..synth.crawler import TemporalAttack

__all__ = ["AttackOutcome", "LatencyProbe", "AUDIT_THRESHOLD"]

#: Relative-mass bound above which a good-core member is considered
#: contaminated (mirrors the core-audit default in repro.eval.audit).
AUDIT_THRESHOLD = 0.5


class AttackOutcome:
    """Detection verdict for one temporal attack."""

    __slots__ = (
        "name",
        "kind",
        "target",
        "onset_id",
        "caught",
        "caught_at_id",
        "events_until_caught",
        "windows_until_caught",
    )

    def __init__(self, attack: TemporalAttack) -> None:
        self.name = attack.name
        self.kind = attack.kind
        self.target = int(attack.target)
        self.onset_id = int(attack.onset_id)
        self.caught = False
        self.caught_at_id: Optional[int] = None
        self.events_until_caught: Optional[int] = None
        self.windows_until_caught: Optional[int] = None

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "target": self.target,
            "onset_id": self.onset_id,
            "caught": self.caught,
            "caught_at_id": self.caught_at_id,
            "events_until_caught": self.events_until_caught,
            "windows_until_caught": self.windows_until_caught,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = (
            f"caught after {self.events_until_caught} events"
            if self.caught
            else "not caught"
        )
        return f"AttackOutcome({self.name}, {status})"


class LatencyProbe:
    """Watches committed stream windows for attack-detection crossings.

    Parameters
    ----------
    attacks:
        The stream's scripted ground truth
        (:attr:`~repro.synth.crawler.CrawlStream.attacks`).
    rho / tau:
        Algorithm 2 gates for the spam-promotion attacks.  The paper's
        ρ = 10 (scaled PageRank) assumes web-scale mass; small worlds
        need a smaller ρ for the gate to be reachable at all.
    audit_threshold:
        Relative-mass gate for ``stale-core`` attacks.

    Attach :meth:`observe` as the ingestor's ``on_commit`` hook, or
    call it manually with ``(info, epoch)`` after each apply.
    """

    def __init__(
        self,
        attacks: Sequence[TemporalAttack],
        *,
        rho: float = 10.0,
        tau: float = 0.98,
        audit_threshold: float = AUDIT_THRESHOLD,
    ) -> None:
        self.rho = float(rho)
        self.tau = float(tau)
        self.audit_threshold = float(audit_threshold)
        self.outcomes: Dict[str, AttackOutcome] = {
            attack.name: AttackOutcome(attack) for attack in attacks
        }
        self.windows_seen = 0

    def observe(self, info: dict, epoch) -> None:
        """Check every still-open attack against one committed epoch."""
        self.windows_seen += 1
        estimates = epoch.estimates
        relative = estimates.relative
        scaled = estimates.scaled_pagerank()
        last_id = int(info["last_id"])
        for outcome in self.outcomes.values():
            if outcome.caught or last_id < outcome.onset_id:
                continue
            target = outcome.target
            if outcome.kind == "stale-core":
                hit = relative[target] >= self.audit_threshold
            else:
                hit = (
                    scaled[target] >= self.rho
                    and relative[target] >= self.tau
                )
            if not bool(hit):
                continue
            outcome.caught = True
            outcome.caught_at_id = last_id
            outcome.events_until_caught = last_id - outcome.onset_id
            outcome.windows_until_caught = self.windows_seen

    def report(self) -> List[dict]:
        """Per-attack verdicts, in scripted order."""
        return [outcome.as_dict() for outcome in self.outcomes.values()]

    def all_caught(self) -> bool:
        return all(o.caught for o in self.outcomes.values())

    def latency(self, name: str) -> Optional[int]:
        return self.outcomes[name].events_until_caught

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        caught = sum(o.caught for o in self.outcomes.values())
        return f"LatencyProbe({caught}/{len(self.outcomes)} caught)"
