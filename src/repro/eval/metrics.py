"""Detection metrics: the precision curves of Figures 4 and 5, plus
standard precision/recall for the baseline comparisons.

The paper's headline metric is

.. math::

    \\mathrm{prec}(\\tau) = \\frac{|\\{\\text{spam sample hosts } x :
    \\tilde m_x \\ge \\tau\\}|}{|\\{\\text{sample hosts } y :
    \\tilde m_y \\ge \\tau\\}|},

evaluated at thresholds derived from the sample-group boundaries, both
counting anomalous good hosts as false positives ("anomalous hosts
included") and discarding them ("excluded") — the two curves of
Figure 4.  Figure 4 also annotates each threshold with the total number
of filtered hosts above it; :func:`counts_above_thresholds` supplies
that row.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .sampling import EvaluationSample

__all__ = [
    "PrecisionPoint",
    "precision_at",
    "precision_curve",
    "counts_above_thresholds",
    "paper_thresholds",
    "detection_metrics",
]

#: The threshold grid of Figures 4 and 5, derived by the paper from its
#: sample-group boundaries (non-uniformly spaced).
PAPER_THRESHOLDS = (
    0.98, 0.91, 0.84, 0.76, 0.66, 0.56, 0.45, 0.34, 0.23, 0.10, 0.0,
)


def paper_thresholds() -> Tuple[float, ...]:
    """The non-uniform τ grid the paper's precision figures use."""
    return PAPER_THRESHOLDS


class PrecisionPoint:
    """One point of a precision curve.

    Attributes
    ----------
    tau:
        The relative-mass threshold.
    precision:
        ``prec(τ)``; ``nan`` when no usable sample host clears τ.
    num_spam, num_total:
        Numerator and denominator of the precision ratio.
    """

    __slots__ = ("tau", "precision", "num_spam", "num_total")

    def __init__(
        self, tau: float, precision: float, num_spam: int, num_total: int
    ) -> None:
        self.tau = tau
        self.precision = precision
        self.num_spam = num_spam
        self.num_total = num_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PrecisionPoint(tau={self.tau}, prec={self.precision:.3f}, "
            f"{self.num_spam}/{self.num_total})"
        )


def precision_at(
    sample: EvaluationSample,
    relative_mass: np.ndarray,
    tau: float,
    *,
    exclude_anomalous: bool = False,
) -> PrecisionPoint:
    """Compute ``prec(τ)`` on a labeled sample.

    Unknown/non-existent hosts never count; anomalous good hosts count
    as false positives unless ``exclude_anomalous``.
    """
    mass = relative_mass[sample.nodes]
    above = mass >= tau
    usable = sample.usable_mask()
    if exclude_anomalous:
        usable = usable & ~sample.anomalous_mask
    counted = above & usable
    num_total = int(counted.sum())
    num_spam = int((counted & sample.spam_sample_mask()).sum())
    precision = num_spam / num_total if num_total else float("nan")
    return PrecisionPoint(tau, precision, num_spam, num_total)


def precision_curve(
    sample: EvaluationSample,
    relative_mass: np.ndarray,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    *,
    exclude_anomalous: bool = False,
) -> List[PrecisionPoint]:
    """``prec(τ)`` over a threshold grid (one Figure 4/5 curve)."""
    return [
        precision_at(
            sample,
            relative_mass,
            tau,
            exclude_anomalous=exclude_anomalous,
        )
        for tau in thresholds
    ]


def counts_above_thresholds(
    relative_mass: np.ndarray,
    eligible_mask: np.ndarray,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
) -> List[int]:
    """Total filtered hosts at or above each threshold — the top axis
    annotation of Figure 4 (46,635 hosts above 0.98, etc.)."""
    if relative_mass.shape != eligible_mask.shape:
        raise ValueError("mass and eligibility vectors must align")
    eligible_mass = relative_mass[eligible_mask]
    return [int((eligible_mass >= tau).sum()) for tau in thresholds]


def detection_metrics(
    candidate_mask: np.ndarray,
    spam_mask: np.ndarray,
    *,
    restrict_to: Optional[np.ndarray] = None,
) -> Dict[str, float]:
    """Precision/recall/F1 of a boolean detector against ground truth.

    ``restrict_to`` optionally limits the evaluation universe (e.g. to
    the PageRank-eligible set, which is the population the paper's
    method is defined over — recall against *all* spam nodes would
    unfairly count boosting leaf nodes no detector targets).
    """
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    spam_mask = np.asarray(spam_mask, dtype=bool)
    if candidate_mask.shape != spam_mask.shape:
        raise ValueError("masks must have identical shapes")
    if restrict_to is not None:
        universe = np.asarray(restrict_to, dtype=bool)
        candidate_mask = candidate_mask & universe
        spam_mask = spam_mask & universe
    tp = int((candidate_mask & spam_mask).sum())
    fp = int((candidate_mask & ~spam_mask).sum())
    fn = int((~candidate_mask & spam_mask).sum())
    precision = tp / (tp + fp) if (tp + fp) else float("nan")
    recall = tp / (tp + fn) if (tp + fn) else float("nan")
    if tp and (precision + recall):
        f1 = 2 * precision * recall / (precision + recall)
    else:
        f1 = 0.0 if (tp + fp + fn) else float("nan")
    return {
        "tp": tp,
        "fp": fp,
        "fn": fn,
        "precision": precision,
        "recall": recall,
        "f1": f1,
    }
