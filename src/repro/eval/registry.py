"""The experiment registry: every reproduced artifact behind one id.

DESIGN.md assigns each table/figure/ablation a short id (``T1``,
``F4``, ``A5``, ``FW1``, …).  This module is the programmatic index:

>>> from repro.eval import run_experiment, list_experiments
>>> run_experiment("T1")                       # standalone experiment
>>> run_experiment("F4", ctx=my_context)       # context experiment

Standalone experiments need at most a :class:`WorldConfig`; contextual
ones need a built :class:`ReproductionContext` (pass ``ctx``, or let
``run_experiment`` build one from ``config``).  The CLI's ``reproduce``
subcommand and the benchmark suite are both thin layers over this
registry, so the set of reproducible artifacts lives in exactly one
place.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..synth.scenario import WorldConfig
from .results import TableResult

__all__ = [
    "EXPERIMENTS",
    "list_experiments",
    "is_contextual",
    "run_experiment",
]


class _Entry:
    __slots__ = ("runner", "contextual", "title")

    def __init__(self, runner: Callable, contextual: bool, title: str):
        self.runner = runner
        self.contextual = contextual
        self.title = title


def _build_registry() -> Dict[str, _Entry]:
    from ..extensions.content import run_content_filter_experiment
    from . import experiment as exp
    from .adversarial import run_robustness_experiment
    from .sensitivity import run_gamma_sensitivity, run_rho_sensitivity
    from .stability import run_stability_experiment
    from .trustrank_study import run_trustrank_study

    return {
        "T1": _Entry(
            lambda config: exp.run_table1(),
            False,
            "Table 1: Figure 2 node features",
        ),
        "F1": _Entry(
            lambda config: exp.run_figure1(),
            False,
            "Figure 1: naive labeling schemes",
        ),
        "F2": _Entry(
            lambda config: exp.run_figure2_contributions(),
            False,
            "Figure 2: PageRank contributions",
        ),
        "S41": _Entry(
            exp.run_graph_stats, False, "Section 4.1: data-set statistics"
        ),
        "A6": _Entry(
            run_stability_experiment,
            False,
            "Temporal stability of white/black lists",
        ),
        "S43": _Entry(
            exp.run_pagerank_distribution,
            True,
            "Section 4.3: PageRank distribution",
        ),
        "T2": _Entry(exp.run_table2, True, "Table 2: sample groups"),
        "F3": _Entry(exp.run_figure3, True, "Figure 3: sample composition"),
        "F4": _Entry(exp.run_figure4, True, "Figure 4: precision curves"),
        "F5": _Entry(exp.run_figure5, True, "Figure 5: core size/breadth"),
        "F6": _Entry(exp.run_figure6, True, "Figure 6: mass distribution"),
        "S442": _Entry(exp.run_core_repair, True, "Section 4.4.2: core repair"),
        "S46": _Entry(
            exp.run_absolute_mass_ranking,
            True,
            "Section 4.6: absolute-mass ranking",
        ),
        "A1": _Entry(exp.run_gamma_ablation, True, "Gamma-scaling ablation"),
        "A2": _Entry(exp.run_solver_ablation, True, "Solver comparison"),
        "A3": _Entry(
            exp.run_combined_ablation, True, "Combined estimators"
        ),
        "A4": _Entry(
            exp.run_baseline_comparison, True, "Detector comparison"
        ),
        "A5": _Entry(
            run_robustness_experiment, True, "Adversarial robustness"
        ),
        "A7": _Entry(run_trustrank_study, True, "TrustRank study"),
        "A8A": _Entry(run_gamma_sensitivity, True, "Gamma sensitivity"),
        "A8B": _Entry(run_rho_sensitivity, True, "Rho sensitivity"),
        "FW1": _Entry(
            run_content_filter_experiment,
            True,
            "Future work: content analysis",
        ),
    }


EXPERIMENTS: Dict[str, _Entry] = _build_registry()


def list_experiments() -> List[str]:
    """All experiment ids, standalone first, in registry order."""
    return list(EXPERIMENTS)


def is_contextual(experiment_id: str) -> bool:
    """Whether an experiment needs a built :class:`ReproductionContext`."""
    return _entry(experiment_id).contextual


def _entry(experiment_id: str) -> _Entry:
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]


def run_experiment(
    experiment_id: str,
    *,
    ctx=None,
    config: Optional[WorldConfig] = None,
) -> TableResult:
    """Run one reproduced experiment by its DESIGN.md id.

    Standalone experiments take an optional ``config`` (defaulting to
    the stock medium world for S41/A6, and ignored by the worked
    examples).  Contextual experiments use ``ctx`` when given,
    otherwise build a fresh :class:`ReproductionContext` from
    ``config`` — expensive, so pass a shared context when running
    several.
    """
    entry = _entry(experiment_id)
    if not entry.contextual:
        return entry.runner(config)
    if ctx is None:
        from .experiment import ReproductionContext

        ctx = ReproductionContext.build(config)
    return entry.runner(ctx)
