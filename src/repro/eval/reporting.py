"""Terminal rendering of reproduced figures.

The paper's figures are bar charts and curves; for a library whose
benches run in a terminal, ASCII renderings are the honest equivalent.
Three renderers cover every figure shape used:

* :func:`render_stacked_bars` — Figure 3's per-group good/anomalous/
  spam composition;
* :func:`render_curves` — the precision-vs-threshold curves of
  Figures 4 and 5 (multiple named series over a shared x grid);
* :func:`render_loglog` — the Figure 6 mass-distribution panels.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["render_stacked_bars", "render_curves", "render_loglog"]


def render_stacked_bars(
    labels: Sequence[str],
    stacks: Dict[str, Sequence[float]],
    *,
    width: int = 50,
    symbols: Optional[Dict[str, str]] = None,
) -> str:
    """Horizontal stacked bars, one row per label.

    ``stacks`` maps series name → per-row values; ``symbols`` maps
    series name → the fill character (defaults cycle ``# + .``).
    """
    names = list(stacks)
    if not names:
        raise ValueError("need at least one series")
    length = len(labels)
    for name in names:
        if len(stacks[name]) != length:
            raise ValueError(f"series {name!r} is not aligned with labels")
    default_fills = ["#", "+", ".", "o", "*"]
    fills = {
        name: (symbols or {}).get(name, default_fills[i % len(default_fills)])
        for i, name in enumerate(names)
    }
    totals = [
        sum(stacks[name][i] for name in names) for i in range(length)
    ]
    peak = max(max(totals), 1e-12)
    lines = []
    legend = "  ".join(f"{fills[name]}={name}" for name in names)
    lines.append(legend)
    label_width = max(len(str(label)) for label in labels)
    for i, label in enumerate(labels):
        bar = ""
        for name in names:
            span = int(round(stacks[name][i] / peak * width))
            bar += fills[name] * span
        lines.append(f"{str(label).rjust(label_width)} |{bar} ({totals[i]:g})")
    return "\n".join(lines)


def render_curves(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    height: int = 12,
    width: Optional[int] = None,
    y_range: Optional[Tuple[float, float]] = None,
) -> str:
    """Plot one or more aligned series as an ASCII chart.

    Each series gets a distinct marker; x positions are spread evenly
    (the paper's τ grid is non-uniform, and its figures also space the
    ticks evenly).
    """
    if not series:
        raise ValueError("need at least one series")
    num_points = len(x_values)
    for name, values in series.items():
        if len(values) != num_points:
            raise ValueError(f"series {name!r} is not aligned with x grid")
    finite = [
        v
        for values in series.values()
        for v in values
        if v == v  # skip NaN
    ]
    if not finite:
        raise ValueError("all values are NaN")
    lo, hi = y_range if y_range else (min(finite), max(finite))
    if hi <= lo:
        hi = lo + 1.0
    if width is None:
        width = max(num_points * 6, 30)
    markers = "oxv*+#"
    canvas = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        marker = markers[s_idx % len(markers)]
        for i, value in enumerate(values):
            if value != value:
                continue
            col = int(round(i / max(num_points - 1, 1) * (width - 1)))
            frac = (value - lo) / (hi - lo)
            row = height - 1 - int(round(frac * (height - 1)))
            row = min(max(row, 0), height - 1)
            canvas[row][col] = marker
    lines = []
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append(legend)
    for r, row_chars in enumerate(canvas):
        if r == 0:
            axis_label = f"{hi:8.2f} |"
        elif r == height - 1:
            axis_label = f"{lo:8.2f} |"
        else:
            axis_label = "         |"
        lines.append(axis_label + "".join(row_chars))
    ticks = "          "
    tick_line = [" "] * width
    for i in (0, num_points - 1):
        col = int(round(i / max(num_points - 1, 1) * (width - 1)))
        text = f"{x_values[i]:g}"
        start = min(col, width - len(text))
        for j, ch in enumerate(text):
            tick_line[start + j] = ch
    lines.append(ticks + "".join(tick_line))
    return "\n".join(lines)


def render_loglog(
    bins: Sequence[float],
    fractions: Sequence[float],
    *,
    height: int = 10,
    title: str = "",
) -> str:
    """Log-log scatter of (bin, fraction) pairs as ASCII.

    Renders ``log10`` on both axes, the format of Figure 6.
    """
    points = [
        (b, f)
        for b, f in zip(bins, fractions)
        if b > 0 and f > 0
    ]
    if not points:
        return f"{title} (no positive data)"
    xs = [math.log10(b) for b, _ in points]
    ys = [math.log10(f) for _, f in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    width = 60
    canvas = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = height - 1 - int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        canvas[row][col] = "*"
    lines = []
    if title:
        lines.append(title)
    lines.append(f"log10(frac) {y_hi:6.2f}")
    for row_chars in canvas:
        lines.append("  |" + "".join(row_chars))
    lines.append(f"  {y_lo:6.2f}  log10(value): [{x_lo:.2f}, {x_hi:.2f}]")
    return "\n".join(lines)
