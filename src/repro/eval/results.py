"""Result records for reproduced tables and figures.

Every experiment runner in :mod:`repro.eval.experiment` returns a
:class:`TableResult` — a titled, column-named grid of values with
free-form notes — which renders to aligned ASCII (for bench output) or
Markdown (for EXPERIMENTS.md).  Keeping results in one dumb container
means a bench, a test and the documentation generator all consume the
same object.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

__all__ = ["TableResult"]


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if value == int(value) and abs(value) < 1e15:
            return f"{int(value)}"
        if 0 < abs(value) < 0.001 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


class TableResult:
    """A reproduced table/figure as a plain grid.

    Attributes
    ----------
    experiment_id:
        Short id matching DESIGN.md's per-experiment index ("T1",
        "F4", "S442", "A2", ...).
    title:
        Human-readable description.
    columns:
        Column names.
    rows:
        Row tuples (values, any printable type).
    notes:
        Free-form remarks (parameters used, paper-expected shape, ...).
    """

    __slots__ = ("experiment_id", "title", "columns", "rows", "notes")

    def __init__(
        self,
        experiment_id: str,
        title: str,
        columns: Sequence[str],
        rows: Iterable[Sequence[Any]],
        notes: Optional[List[str]] = None,
    ) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.columns = list(columns)
        self.rows = [list(row) for row in rows]
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ValueError(
                    f"row {row!r} does not match columns {self.columns!r}"
                )
        self.notes = list(notes or [])

    def column(self, name: str) -> List[Any]:
        """Extract one column by name."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; have {self.columns}"
            ) from None
        return [row[idx] for row in self.rows]

    def to_ascii(self) -> str:
        """Render as an aligned plain-text table."""
        grid = [self.columns] + [
            [_format_cell(cell) for cell in row] for row in self.rows
        ]
        widths = [
            max(len(grid[r][c]) for r in range(len(grid)))
            for c in range(len(self.columns))
        ]
        lines = [f"[{self.experiment_id}] {self.title}"]
        header = "  ".join(
            name.ljust(widths[i]) for i, name in enumerate(grid[0])
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in grid[1:]:
            lines.append(
                "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavored Markdown table."""
        lines = [f"### {self.experiment_id}: {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(_format_cell(cell) for cell in row) + " |"
            )
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TableResult({self.experiment_id}, rows={len(self.rows)}, "
            f"cols={len(self.columns)})"
        )
