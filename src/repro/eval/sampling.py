"""Evaluation sampling and the simulated manual-inspection oracle
(Section 4.4.1).

The paper evaluates on ``T′``, a uniform random 0.1% sample of the
883,328 hosts passing the PageRank filter, manually inspected and
labeled: 63.2% good, 25.7% spam, 6.1% *unknown* (East Asian hosts the
authors could not judge) and 5% *non-existent* (pages gone by
inspection time).  Unknown and non-existent hosts are excluded from the
precision analysis.

Here the ground truth comes from the synthetic world, and
:class:`InspectionOracle` layers the same two exclusion channels on top
— a configurable fraction of hosts randomly comes back ``unknown`` or
``nonexistent`` — so that sample bookkeeping (and its effect on group
sizes) is faithfully reproduced.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..synth.assembler import SyntheticWorld

__all__ = [
    "LABEL_GOOD",
    "LABEL_SPAM",
    "LABEL_UNKNOWN",
    "LABEL_NONEXISTENT",
    "InspectionOracle",
    "EvaluationSample",
    "uniform_sample",
    "build_evaluation_sample",
]

LABEL_GOOD = "good"
LABEL_SPAM = "spam"
LABEL_UNKNOWN = "unknown"
LABEL_NONEXISTENT = "nonexistent"


def uniform_sample(
    nodes: np.ndarray,
    rng: np.random.Generator,
    *,
    fraction: Optional[float] = None,
    size: Optional[int] = None,
) -> np.ndarray:
    """Uniform random sample of ``nodes`` without replacement.

    Exactly one of ``fraction`` / ``size`` must be given.  The paper
    samples 0.1% of its filtered set ``T``.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if (fraction is None) == (size is None):
        raise ValueError("specify exactly one of fraction or size")
    if fraction is not None:
        if not (0.0 < fraction <= 1.0):
            raise ValueError("fraction must be in (0, 1]")
        size = max(int(round(fraction * len(nodes))), 1)
    assert size is not None
    if size > len(nodes):
        raise ValueError(
            f"cannot sample {size} from {len(nodes)} nodes without replacement"
        )
    return np.sort(rng.choice(nodes, size=size, replace=False))


class InspectionOracle:
    """Simulated manual inspection of hosts.

    Returns the ground-truth label, except that a host may randomly be
    ``unknown`` (default 6.1%, the paper's East Asian fraction) or
    ``nonexistent`` (default 5%).  The exclusion channels are
    independent of the true label, keeping them label-noise-free
    exclusions rather than bias.

    ``frac_disputed`` models the paper's footnote that "the real web
    includes a voluminous gray area of nodes that some call spam while
    others argue against that label": with that probability the
    inspector *disagrees* with the ground truth and returns the
    opposite label.  Zero by default — turn it on to study how labeling
    disagreement blurs measured precision.
    """

    def __init__(
        self,
        world: SyntheticWorld,
        rng: np.random.Generator,
        *,
        frac_unknown: float = 0.061,
        frac_nonexistent: float = 0.05,
        frac_disputed: float = 0.0,
    ) -> None:
        if frac_unknown < 0 or frac_nonexistent < 0:
            raise ValueError("exclusion fractions must be non-negative")
        if frac_unknown + frac_nonexistent >= 1.0:
            raise ValueError("exclusion fractions must sum below 1")
        if not (0.0 <= frac_disputed < 1.0):
            raise ValueError("frac_disputed must be in [0, 1)")
        self.world = world
        self._rng = rng
        self.frac_unknown = frac_unknown
        self.frac_nonexistent = frac_nonexistent
        self.frac_disputed = frac_disputed

    def inspect(self, node: int) -> str:
        """Label a single host (stochastic exclusion channels)."""
        draw = self._rng.random()
        if draw < self.frac_unknown:
            return LABEL_UNKNOWN
        if draw < self.frac_unknown + self.frac_nonexistent:
            return LABEL_NONEXISTENT
        truth = LABEL_SPAM if self.world.spam_mask[node] else LABEL_GOOD
        if self.frac_disputed and self._rng.random() < self.frac_disputed:
            return LABEL_GOOD if truth == LABEL_SPAM else LABEL_SPAM
        return truth

    def inspect_all(self, nodes: np.ndarray) -> List[str]:
        """Label many hosts at once."""
        return [self.inspect(int(node)) for node in nodes]


class EvaluationSample:
    """A labeled evaluation sample (the paper's ``T′``).

    Attributes
    ----------
    nodes:
        The sampled node ids.
    labels:
        Inspection label per node (aligned with ``nodes``).
    anomalous_mask:
        Whether each sampled node belongs to an anomalous good
        community (the gray hosts of Figure 3), aligned with ``nodes``.
    """

    __slots__ = ("nodes", "labels", "anomalous_mask")

    def __init__(
        self,
        nodes: np.ndarray,
        labels: Sequence[str],
        anomalous_mask: np.ndarray,
    ) -> None:
        if len(labels) != len(nodes) or len(anomalous_mask) != len(nodes):
            raise ValueError("sample arrays must be aligned")
        self.nodes = nodes
        self.labels = list(labels)
        self.anomalous_mask = anomalous_mask

    def __len__(self) -> int:
        return len(self.nodes)

    def usable_mask(self) -> np.ndarray:
        """Hosts that are neither unknown nor nonexistent."""
        return np.asarray(
            [label in (LABEL_GOOD, LABEL_SPAM) for label in self.labels]
        )

    def spam_sample_mask(self) -> np.ndarray:
        """Hosts labeled spam."""
        return np.asarray([label == LABEL_SPAM for label in self.labels])

    def good_sample_mask(self) -> np.ndarray:
        """Hosts labeled good."""
        return np.asarray([label == LABEL_GOOD for label in self.labels])

    def composition(self) -> Dict[str, int]:
        """Label histogram (the Section 4.4.1 breakdown)."""
        counts: Dict[str, int] = {
            LABEL_GOOD: 0,
            LABEL_SPAM: 0,
            LABEL_UNKNOWN: 0,
            LABEL_NONEXISTENT: 0,
        }
        for label in self.labels:
            counts[label] += 1
        return counts


def build_evaluation_sample(
    world: SyntheticWorld,
    eligible_nodes: np.ndarray,
    rng: np.random.Generator,
    *,
    fraction: Optional[float] = None,
    size: Optional[int] = None,
    frac_unknown: float = 0.061,
    frac_nonexistent: float = 0.05,
    frac_disputed: float = 0.0,
) -> EvaluationSample:
    """Sample ``T′`` from the filtered set and inspect every member.

    When neither ``fraction`` nor ``size`` is given, the whole eligible
    set is inspected (affordable at synthetic-world scale, and it
    removes sampling noise from the reproduced curves).
    """
    if fraction is None and size is None:
        nodes = np.sort(np.asarray(eligible_nodes, dtype=np.int64))
    else:
        nodes = uniform_sample(
            eligible_nodes, rng, fraction=fraction, size=size
        )
    oracle = InspectionOracle(
        world,
        rng,
        frac_unknown=frac_unknown,
        frac_nonexistent=frac_nonexistent,
        frac_disputed=frac_disputed,
    )
    labels = oracle.inspect_all(nodes)
    anomalous = np.zeros(len(nodes), dtype=bool)
    anomalous_ids = world.anomalous_nodes()
    if len(anomalous_ids):
        anomalous = np.isin(nodes, anomalous_ids)
    return EvaluationSample(nodes, labels, anomalous)
