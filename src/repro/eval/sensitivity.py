"""Parameter sensitivity of mass-based detection (Sections 3.5, 3.6,
4.3, 4.4).

The paper fixes its two auxiliary parameters informally: γ comes from
"the conservative estimate that at least 15% of the hosts are spam"
(the true rate in their own sample was ~26%), and ρ = 10 is "the
arbitrarily selected scaled PageRank threshold".  For the method to be
deployable, detection quality must be forgiving to both choices —
this module sweeps them:

* :func:`run_gamma_sensitivity` — γ from badly under- to
  over-estimated.  The prediction: precision at high τ is *stable*
  (scaling moves every node's `p′` proportionally, so the relative
  ordering near the top barely moves), while the negative-mass region
  and the absolute estimates shift.
* :func:`run_rho_sensitivity` — ρ from permissive to strict.  The
  prediction: higher ρ trades candidate volume for precision (the
  paper's three arguments for the filter), with diminishing returns.
"""

from __future__ import annotations

from typing import List, Sequence


from ..core.detector import MassDetector
from ..core.mass import estimate_spam_mass
from .metrics import detection_metrics
from .results import TableResult

__all__ = ["run_gamma_sensitivity", "run_rho_sensitivity"]


def run_gamma_sensitivity(
    ctx,
    gammas: Sequence[float] = (0.5, 0.7, 0.85, 0.95, 0.99),
    *,
    tau: float = 0.98,
) -> TableResult:
    """Sweep the good-fraction estimate γ (Section 3.5's knob).

    ``ctx`` is a :class:`~repro.eval.experiment.ReproductionContext`;
    the true good fraction of its world is reported for reference.
    """
    spam_mask = ctx.world.spam_mask
    true_gamma = float((~spam_mask).sum() / ctx.world.num_nodes)
    rows: List[list] = []
    for gamma in gammas:
        # operator comes from the shared engine cache — built once for
        # the whole sweep; each γ's (p, p′) pair solves as one batch
        estimates = estimate_spam_mass(ctx.graph, ctx.core, gamma=gamma)
        result = MassDetector(tau=tau, rho=ctx.rho).detect(estimates)
        metrics = detection_metrics(
            result.candidate_mask,
            spam_mask,
            restrict_to=result.eligible_mask,
        )
        eligible = result.eligible_mask
        good_eligible = eligible & ~spam_mask
        rows.append(
            [
                gamma,
                round(metrics["precision"], 3),
                round(metrics["recall"], 3),
                result.num_candidates,
                round(float((estimates.relative[good_eligible] < 0).mean()), 3),
            ]
        )
    return TableResult(
        "A8a",
        "Sensitivity to the good-fraction estimate gamma (Section 3.5)",
        [
            "gamma",
            "precision (elig.)",
            "recall (elig.)",
            "candidates",
            "frac good w/ negative m~",
        ],
        rows,
        notes=[
            f"true good fraction of this world: {true_gamma:.3f}; the "
            "paper used the conservative 0.85 while its own sample "
            "suggested ~0.74",
            "prediction: detection quality is forgiving to gamma "
            "mis-estimation (scaling shifts all of p' proportionally); "
            "what moves is how much of the good web goes mass-negative",
        ],
    )


def run_rho_sensitivity(
    ctx,
    rhos: Sequence[float] = (2.0, 5.0, 10.0, 25.0, 100.0),
    *,
    tau: float = 0.98,
) -> TableResult:
    """Sweep the PageRank filter ρ (the Section 3.6 threshold the paper
    sets 'arbitrarily' to 10)."""
    spam_mask = ctx.world.spam_mask
    scaled = ctx.estimates.scaled_pagerank()
    rows: List[list] = []
    for rho in rhos:
        result = MassDetector(tau=tau, rho=rho).detect(ctx.estimates)
        metrics = detection_metrics(
            result.candidate_mask,
            spam_mask,
            restrict_to=result.eligible_mask,
        )
        rows.append(
            [
                rho,
                int(result.eligible_mask.sum()),
                result.num_candidates,
                round(metrics["precision"], 3),
            ]
        )
    return TableResult(
        "A8b",
        "Sensitivity to the PageRank filter rho (Section 3.6)",
        ["rho (scaled)", "|T| eligible", "candidates", "precision (elig.)"],
        rows,
        notes=[
            "the paper's three reasons for the filter: low-rank nodes "
            "are not boosting beneficiaries, carry too little evidence, "
            "and amplify estimation error in the relative form — so "
            "precision should not degrade as rho tightens",
        ],
    )
