"""Temporal stability of white-lists vs black-lists (Section 3.4).

The paper justifies building the method around a *good* core:

    "Note that one can expect the good core to be more stable over
    time than Ṽ⁻, as spam nodes come and go on the web. For instance,
    spammers frequently abandon their pages once there is some
    indication that search engines adopted anti-spam measures against
    them."

This module makes that argument measurable.  :func:`world_at_epoch`
re-generates the world with the *same* good web (base graph,
communities, core families — all drawn from the same streams) but a
fresh spam layer (``spam_seed`` varied): new farms on new throwaway
domains, the previous crop gone.  Host lists — a white-list core or a
black-list of spam hosts — are carried across epochs *by host name*,
exactly how real lists persist, and resolved against each epoch's
graph.

:func:`run_stability_experiment` then compares, epoch by epoch:

* the epoch-0 **good core**: keeps resolving fully (good hosts
  persist) and keeps delivering the same detection quality;
* an epoch-0 **black-list** of spam hosts: stops resolving (the hosts
  are gone) and the black-list-based mass estimate decays to nothing.
"""

from __future__ import annotations

import copy
from typing import List, Optional, Sequence

import numpy as np

from ..core.detector import MassDetector
from ..core.mass import blacklist_mass, estimate_spam_mass
from ..synth.assembler import SyntheticWorld
from ..synth.scenario import WorldConfig, build_world, default_good_core
from .metrics import detection_metrics
from .results import TableResult

__all__ = ["world_at_epoch", "resolve_hosts", "run_stability_experiment"]


def world_at_epoch(config: WorldConfig, epoch: int) -> SyntheticWorld:
    """The world at a later time: same good web, fresh spam layer.

    Epoch 0 is the configured world itself; epoch ``e > 0`` replaces
    every farm/alliance/expired-domain/paid-link decision with draws
    from a shifted ``spam_seed``, modelling the paper's "spam nodes
    come and go" while the good web (and therefore any good core) stays
    put.
    """
    if epoch < 0:
        raise ValueError("epoch must be non-negative")
    if epoch == 0:
        return build_world(config)
    shifted = copy.copy(config)
    base_spam_seed = (
        config.seed if config.spam_seed is None else config.spam_seed
    )
    shifted.spam_seed = base_spam_seed + 1_000_003 * epoch
    return build_world(shifted)


def resolve_hosts(
    world: SyntheticWorld, names: Sequence[str]
) -> np.ndarray:
    """Resolve a host-name list against a world; unresolvable names
    (hosts gone from the web) are silently dropped, like a search
    engine refreshing a stale list against a new crawl."""
    if world.graph.names is None:
        raise ValueError("world graph carries no host names")
    lookup = {name: i for i, name in enumerate(world.graph.names)}
    resolved = [lookup[name] for name in names if name in lookup]
    return np.asarray(sorted(resolved), dtype=np.int64)


def run_stability_experiment(
    config: Optional[WorldConfig] = None,
    *,
    epochs: int = 3,
    tau: float = 0.75,
    rho: float = 10.0,
    gamma: float = 0.85,
    blacklist_fraction: float = 0.5,
    seed: int = 13,
) -> TableResult:
    """Carry an epoch-0 white-list and black-list through ``epochs``.

    Reports, per epoch: how much of each list still resolves, the
    white-list detector's precision/recall on that epoch's eligible
    spam, and the recall of a detector driven purely by the black-list
    estimate ``M̂`` (relative form, same τ/ρ).
    """
    if config is None:
        config = WorldConfig.small()
    if epochs < 1:
        raise ValueError("need at least one epoch")
    rng = np.random.default_rng(seed)

    world0 = world_at_epoch(config, 0)
    core_ids0 = default_good_core(world0)
    core_names = [world0.graph.name_of(int(i)) for i in core_ids0]
    spam0 = world0.spam_nodes()
    take = max(int(round(blacklist_fraction * len(spam0))), 1)
    black_ids0 = rng.choice(spam0, size=take, replace=False)
    black_names = [world0.graph.name_of(int(i)) for i in black_ids0]

    rows: List[list] = []
    for epoch in range(epochs):
        world = world_at_epoch(config, epoch)
        core = resolve_hosts(world, core_names)
        black = resolve_hosts(world, black_names)
        detector = MassDetector(tau=tau, rho=rho)
        estimates = estimate_spam_mass(world.graph, core, gamma=gamma)
        result = detector.detect(estimates)
        white_metrics = detection_metrics(
            result.candidate_mask,
            world.spam_mask,
            restrict_to=result.eligible_mask,
        )
        if len(black):
            m_hat = blacklist_mass(world.graph, black, gamma=gamma)
            with np.errstate(divide="ignore", invalid="ignore"):
                rel_hat = m_hat / estimates.pagerank
            rel_hat[~np.isfinite(rel_hat)] = 0.0
            black_candidates = result.eligible_mask & (rel_hat >= tau)
            black_metrics = detection_metrics(
                black_candidates,
                world.spam_mask,
                restrict_to=result.eligible_mask,
            )
            black_recall = black_metrics["recall"]
        else:
            black_recall = 0.0
        rows.append(
            [
                epoch,
                round(100 * len(core) / len(core_names), 1),
                round(white_metrics["precision"], 3),
                round(white_metrics["recall"], 3),
                round(100 * len(black) / len(black_names), 1),
                round(black_recall, 3),
            ]
        )
    return TableResult(
        "A6",
        "Temporal stability: epoch-0 white-list vs black-list "
        "(Section 3.4)",
        [
            "epoch",
            "core resolved %",
            "white prec",
            "white recall",
            "blacklist resolved %",
            "blacklist recall",
        ],
        rows,
        notes=[
            "each epoch keeps the good web and replaces the spam layer "
            "(new farms on new domains); lists persist by host name",
            "paper: 'one can expect the good core to be more stable "
            "over time than V~-, as spam nodes come and go on the web'",
        ],
    )
