"""Threshold selection and uncertainty quantification for deployment.

The paper leaves "the selection of the threshold τ" as the key
operational knob (Section 4.4.2) and derives its precision numbers
from a manually labeled 0.1% sample.  This module provides the tooling
a search engine deploying Algorithm 2 would need on top:

* :func:`choose_tau` — pick the loosest τ whose *sample* precision
  meets a target (e.g. "99% precision"), maximizing the number of spam
  hosts caught at that quality bar;
* :func:`bootstrap_precision` — a bootstrap confidence interval for
  ``prec(τ)``, quantifying how far the sample estimate can stray from
  the population value (the paper's 892-host sample leaves each
  point with ~45 hosts of evidence);
* :func:`detection_volume` — how many filtered hosts a τ would label,
  the paper's "total number of hosts above threshold" annotation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .metrics import PAPER_THRESHOLDS, PrecisionPoint, precision_at
from .sampling import EvaluationSample

__all__ = [
    "choose_tau",
    "bootstrap_precision",
    "detection_volume",
    "BootstrapInterval",
]


class BootstrapInterval:
    """A bootstrap confidence interval for a precision estimate.

    Attributes
    ----------
    point:
        The plug-in estimate on the full sample.
    lower, upper:
        The percentile-interval bounds.
    level:
        The confidence level (e.g. 0.95).
    num_resamples:
        Bootstrap replicates drawn.
    """

    __slots__ = ("point", "lower", "upper", "level", "num_resamples")

    def __init__(
        self,
        point: float,
        lower: float,
        upper: float,
        level: float,
        num_resamples: int,
    ) -> None:
        self.point = point
        self.lower = lower
        self.upper = upper
        self.level = level
        self.num_resamples = num_resamples

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.lower - 1e-12 <= value <= self.upper + 1e-12

    @property
    def width(self) -> float:
        """Interval width (evidence sparsity indicator)."""
        return self.upper - self.lower

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BootstrapInterval({self.point:.3f} in "
            f"[{self.lower:.3f}, {self.upper:.3f}] @ {self.level:.0%})"
        )


def choose_tau(
    sample: EvaluationSample,
    relative_mass: np.ndarray,
    target_precision: float,
    *,
    thresholds: Sequence[float] = PAPER_THRESHOLDS,
    exclude_anomalous: bool = False,
    min_evidence: int = 5,
) -> Optional[Tuple[float, PrecisionPoint]]:
    """Pick the loosest τ meeting ``target_precision`` on the sample.

    Scans ``thresholds`` from loose to strict and returns the first
    (i.e. loosest, hence highest-recall) τ whose sample precision
    reaches the target with at least ``min_evidence`` sample hosts
    above it; ``None`` when no threshold qualifies.
    """
    if not (0.0 < target_precision <= 1.0):
        raise ValueError("target_precision must be in (0, 1]")
    qualifying: Optional[Tuple[float, PrecisionPoint]] = None
    for tau in sorted(thresholds):
        point = precision_at(
            sample,
            relative_mass,
            tau,
            exclude_anomalous=exclude_anomalous,
        )
        if point.num_total < min_evidence:
            continue
        if point.precision >= target_precision:
            return tau, point
    return None


def bootstrap_precision(
    sample: EvaluationSample,
    relative_mass: np.ndarray,
    tau: float,
    *,
    num_resamples: int = 2_000,
    level: float = 0.95,
    rng: Optional[np.random.Generator] = None,
    exclude_anomalous: bool = False,
) -> BootstrapInterval:
    """Percentile-bootstrap confidence interval for ``prec(τ)``.

    Resamples the labeled hosts with replacement; replicates with no
    host above τ are skipped (they carry no information about the
    ratio).
    """
    if num_resamples < 10:
        raise ValueError("need at least 10 bootstrap resamples")
    if not (0.0 < level < 1.0):
        raise ValueError("confidence level must be in (0, 1)")
    if rng is None:
        rng = np.random.default_rng(0)
    mass = relative_mass[sample.nodes]
    usable = sample.usable_mask()
    if exclude_anomalous:
        usable = usable & ~sample.anomalous_mask
    above = (mass >= tau) & usable
    spam_above = above & sample.spam_sample_mask()
    point = (
        float(spam_above.sum()) / float(above.sum())
        if above.any()
        else float("nan")
    )
    size = len(sample)
    replicates: List[float] = []
    for _ in range(num_resamples):
        picks = rng.integers(0, size, size=size)
        total = int(above[picks].sum())
        if total == 0:
            continue
        replicates.append(float(spam_above[picks].sum()) / total)
    if not replicates:
        return BootstrapInterval(point, float("nan"), float("nan"), level, 0)
    alpha = (1.0 - level) / 2.0
    lower, upper = np.quantile(replicates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        point, float(lower), float(upper), level, len(replicates)
    )


def detection_volume(
    relative_mass: np.ndarray,
    eligible_mask: np.ndarray,
    tau: float,
) -> int:
    """How many filtered hosts a threshold would label as candidates —
    the figure the paper annotates above its precision plots."""
    if relative_mass.shape != eligible_mask.shape:
        raise ValueError("mass and eligibility vectors must align")
    return int((relative_mass[eligible_mask] >= tau).sum())
