"""TrustRank vs spam mass: demotion vs detection (Sections 3.4 and 5).

The paper positions the two methods as complementary:

    "TrustRank helps cleansing top ranking results by identifying
    reputable nodes. While spam is demoted, it is not detected — this
    is a gap that we strive to fill in this paper."

and notes that the mass core differs from a TrustRank seed in being
orders of magnitude larger and not restricted to the highest-quality
nodes.  This study quantifies both points on one world:

* **demotion quality** — how far down a trust-ordered ranking the spam
  hosts move, measured by the spam share of the top-k trust ranking
  versus the top-k PageRank ranking (TrustRank's actual job, which it
  does well even with tiny seeds);
* **detection quality** — precision/recall of thresholding trust
  (the natural read-out) versus Algorithm 2, across seed budgets
  (where TrustRank stays behind: low trust means "not near my seed",
  not "spam");
* **the seed/core size axis** — budgets swept from TrustRank-tiny to
  mass-core-large.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..baselines.trustrank import trustrank, trustrank_detector
from ..core.detector import MassDetector
from .metrics import detection_metrics
from .results import TableResult

__all__ = ["demotion_quality", "run_trustrank_study"]


def demotion_quality(
    ranking: np.ndarray, spam_mask: np.ndarray, top_k: int
) -> float:
    """Spam share of the top ``top_k`` of a ranking (lower = better
    cleansing of top results, the TrustRank objective)."""
    if top_k < 1:
        raise ValueError("top_k must be positive")
    top = ranking[:top_k]
    return float(spam_mask[top].mean())


def run_trustrank_study(
    ctx,
    budgets: Sequence[int] = (20, 100, 500),
    *,
    top_k: int = 100,
    tau: float = 0.98,
) -> TableResult:
    """Sweep TrustRank seed budgets against mass-based detection.

    ``ctx`` is a :class:`~repro.eval.experiment.ReproductionContext`.
    The oracle answering TrustRank's seed-inspection queries is the
    world's ground truth (the realistic upper bound for TrustRank).
    """
    world = ctx.world
    graph = ctx.graph
    spam_mask = world.spam_mask
    eligible = ctx.eligible_mask

    pagerank_ranking = np.argsort(-ctx.estimates.pagerank, kind="stable")
    baseline_topk_spam = demotion_quality(
        pagerank_ranking, spam_mask, top_k
    )

    rows: List[list] = [
        [
            "PageRank (no defense)",
            "-",
            round(baseline_topk_spam, 3),
            "-",
            "-",
        ]
    ]
    for budget in budgets:
        result = trustrank(
            graph,
            lambda node: not spam_mask[node],
            seed_budget=budget,
        )
        trust_ranking = np.argsort(-result.trust, kind="stable")
        topk_spam = demotion_quality(trust_ranking, spam_mask, top_k)
        detector_mask = trustrank_detector(
            graph, result.trust, ctx.estimates.pagerank, rho=ctx.rho
        )
        metrics = detection_metrics(
            detector_mask, spam_mask, restrict_to=eligible
        )
        rows.append(
            [
                f"TrustRank, budget {budget}",
                len(result.seed),
                round(topk_spam, 3),
                round(metrics["precision"], 3),
                round(metrics["recall"], 3),
            ]
        )
    mass_result = MassDetector(tau=tau, rho=ctx.rho).detect(ctx.estimates)
    mass_metrics = detection_metrics(
        mass_result.candidate_mask, spam_mask, restrict_to=eligible
    )
    anomalous = np.zeros(world.num_nodes, dtype=bool)
    anomalous[world.anomalous_nodes()] = True
    repaired_metrics = detection_metrics(
        mass_result.candidate_mask,
        spam_mask,
        restrict_to=eligible & ~anomalous,
    )
    # mass-based "demotion": rank by PageRank with candidates removed
    demoted = pagerank_ranking[
        ~mass_result.candidate_mask[pagerank_ranking]
    ]
    rows.append(
        [
            f"spam mass (tau={tau})",
            len(ctx.core),
            round(demotion_quality(demoted, spam_mask, top_k), 3),
            round(mass_metrics["precision"], 3),
            round(mass_metrics["recall"], 3),
        ]
    )
    rows.append(
        [
            f"spam mass (tau={tau}, anomalies repaired)",
            len(ctx.core),
            "-",
            round(repaired_metrics["precision"], 3),
            round(repaired_metrics["recall"], 3),
        ]
    )
    return TableResult(
        "A7",
        "TrustRank vs spam mass: demotion and detection (Section 5)",
        [
            "method",
            "seed/core size",
            f"spam in top-{top_k}",
            "det. precision",
            "det. recall",
        ],
        rows,
        notes=[
            "TrustRank cleanses top rankings even with tiny seeds "
            "(its job: demotion); mass-based candidate removal only "
            "demotes what it detects — the methods are complementary, "
            "as the paper argues",
            "mass detection's false positives are the anomalous good "
            "communities; the 'anomalies repaired' row is its precision "
            "after the Section 4.4.2 core-repair workflow",
        ],
    )
