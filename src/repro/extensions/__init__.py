"""Extensions beyond the paper's evaluated system: the future-work
ideas Section 6 sketches, made executable."""

from .content import (
    ContentModel,
    content_filter,
    run_content_filter_experiment,
)

__all__ = [
    "ContentModel",
    "content_filter",
    "run_content_filter_experiment",
]
