"""Content-analysis filtering — the paper's future work, executable.

Section 6 conjectures: *"many false positives could be eliminated by
complementary (textual) content analysis. This issue remains to be
addressed in future work."*  This module addresses it on the synthetic
world:

* :class:`ContentModel` attaches a per-host **content-spam score** to a
  built world, simulating a term-stuffing/boilerplate classifier with
  realistic blind spots:

  - ordinary spam hosts (farm nodes, expired-domain fills) read as
    spammy — they are machine-generated;
  - **honeypots look clean** (they offer genuinely valuable content;
    that is the whole trick);
  - **paid-link customers look clean** (real businesses that bought
    links) — content analysis alone misses them, mass catches them;
  - good hosts — including the anomalous communities that are the mass
    detector's false positives — read as clean.

* :func:`content_filter` intersects a mass-detection candidate set with
  the content verdict.

* :func:`run_content_filter_experiment` regenerates the future-work
  experiment: precision of Algorithm 2 with anomalous hosts counted as
  false positives, before and after the content filter — the filter
  should remove most anomalous false positives (they are clean-content
  good hosts) at a modest recall cost (the honeypot-fronted and
  bought-links spam it wrongly exonerates).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.detector import MassDetector
from ..eval.metrics import detection_metrics
from ..eval.results import TableResult
from ..synth.assembler import SyntheticWorld

__all__ = ["ContentModel", "content_filter", "run_content_filter_experiment"]


class ContentModel:
    """Simulated textual content-spam classifier.

    Scores are in ``[0, 1]``: high means the host's *content* looks
    machine-generated/keyword-stuffed.  Drawn from Beta distributions
    whose parameters encode the blind spots above; ``noise`` blends in
    uniform noise to model classifier error.

    Parameters
    ----------
    spammy:
        Beta parameters for content-spammy hosts (default (6, 2):
        mass near 0.75).
    clean:
        Beta parameters for clean-content hosts (default (2, 8):
        mass near 0.2).
    noise:
        Probability that a host's score is drawn uniformly instead —
        classifier mistakes in both directions.
    """

    def __init__(
        self,
        *,
        spammy: tuple = (6.0, 2.0),
        clean: tuple = (2.0, 8.0),
        noise: float = 0.05,
    ) -> None:
        if not (0.0 <= noise < 1.0):
            raise ValueError("noise must be in [0, 1)")
        self.spammy = spammy
        self.clean = clean
        self.noise = noise

    def score(
        self, world: SyntheticWorld, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Per-host content-spam scores for a built world."""
        if rng is None:
            rng = np.random.default_rng(0)
        n = world.num_nodes
        spammy_content = world.spam_mask.copy()
        # honeypots host genuinely valuable content
        for name, ids in world.groups_matching("farm:").items():
            if name.endswith(":honeypots"):
                spammy_content[ids] = False
        # paid-link customers are real sites that bought visibility
        if "paid:customers" in world.groups:
            spammy_content[world.group("paid:customers")] = False
        # sophisticated farms mimic reputable content (the paper's
        # Section 5 point about content/pattern detectors): targets of
        # farms that bothered to hijack links or build relay tiers have
        # plausible, copied content
        for name, ids in world.groups_matching("farm:").items():
            if name.endswith(":hijacked_sources") or name.endswith(":relays"):
                farm_tag = name.rsplit(":", 1)[0]
                target_group = f"{farm_tag}:target"
                if target_group in world.groups:
                    spammy_content[world.group(target_group)] = False

        scores = np.empty(n, dtype=np.float64)
        num_spammy = int(spammy_content.sum())
        scores[spammy_content] = rng.beta(*self.spammy, size=num_spammy)
        scores[~spammy_content] = rng.beta(*self.clean, size=n - num_spammy)
        if self.noise > 0:
            flip = rng.random(n) < self.noise
            scores[flip] = rng.random(int(flip.sum()))
        return scores


def content_filter(
    candidate_mask: np.ndarray,
    content_scores: np.ndarray,
    threshold: float = 0.5,
) -> np.ndarray:
    """Keep only candidates whose content also looks spammy."""
    candidate_mask = np.asarray(candidate_mask, dtype=bool)
    if candidate_mask.shape != content_scores.shape:
        raise ValueError("mask and scores must have identical shapes")
    if not (0.0 <= threshold <= 1.0):
        raise ValueError("threshold must be in [0, 1]")
    return candidate_mask & (content_scores >= threshold)


def run_content_filter_experiment(
    ctx,
    *,
    tau: float = 0.75,
    content_threshold: float = 0.5,
    seed: int = 41,
) -> TableResult:
    """The future-work experiment: mass detection ± content filtering.

    ``ctx`` is a :class:`~repro.eval.experiment.ReproductionContext`.
    Anomalous good hosts are counted as false positives throughout
    (that is the population the filter is conjectured to clean up).
    """
    rng = np.random.default_rng(seed)
    content = ContentModel().score(ctx.world, rng)
    detector = MassDetector(tau=tau, rho=ctx.rho)
    mass_mask = detector.detect(ctx.estimates).candidate_mask
    filtered_mask = content_filter(mass_mask, content, content_threshold)
    content_only = ctx.eligible_mask & (content >= content_threshold)

    anomalous = np.zeros(ctx.world.num_nodes, dtype=bool)
    anomalous[ctx.world.anomalous_nodes()] = True

    union_mask = mass_mask | content_only

    rows = []
    for name, mask in (
        (f"mass only (tau={tau})", mass_mask),
        ("mass AND content", filtered_mask),
        ("content only (eligible)", content_only),
        ("mass OR content", union_mask),
    ):
        metrics = detection_metrics(
            mask, ctx.world.spam_mask, restrict_to=ctx.eligible_mask
        )
        anomalous_fps = int((mask & anomalous).sum())
        rows.append(
            [
                name,
                metrics["tp"],
                metrics["fp"],
                anomalous_fps,
                round(metrics["precision"], 4),
                round(metrics["recall"], 4),
            ]
        )
    return TableResult(
        "FW1",
        "Future work (Section 6): content analysis removes mass false "
        "positives",
        ["detector", "tp", "fp", "anomalous fps", "precision", "recall"],
        rows,
        notes=[
            "the paper conjectures that 'many false positives could be "
            "eliminated by complementary (textual) content analysis'",
            "blind spots modelled: honeypots and paid-link customers "
            "have clean content (content-only misses them; mass catches "
            "them) — the two signals are complementary",
        ],
    )
