"""Web-graph substrate: model, construction, I/O and structural ops.

This package implements the web-graph model of Section 2.1 of the paper
(directed, unweighted, no self-links, any granularity — we work at host
level, like the paper's experiments) plus the supporting machinery the
rest of the library builds on.
"""

from ..errors import (
    DeltaError,
    EmptyGraphError,
    GraphFormatError,
    GraphIOError,
    GraphIOWarning,
    ManifestVersionError,
    ShardDigestMismatchError,
    ShardIntegrityError,
    ShardMissingError,
    ShardTruncatedError,
    TruncatedFileError,
)
from .backend import GraphBackend, backend_name_of
from .builder import GraphBuilder
from .delta import (
    DeltaApplication,
    GraphDelta,
    compose_applications,
    compose_deltas,
    read_delta,
    write_delta,
)
from .collapse import CollapseResult, collapse_by_key, collapse_page_graph
from .components import (
    component_sizes,
    largest_component,
    strongly_connected_components,
    weakly_connected_components,
)
from .hosts import HostName, HostRegistry, clean_url, parse_host
from .io import (
    read_edge_list,
    read_npz,
    read_graph_bundle,
    read_host_list,
    read_labels,
    read_scores,
    write_edge_list,
    write_graph_bundle,
    write_npz,
    write_host_list,
    write_labels,
    write_scores,
)
from .ops import (
    adjacency_matrix,
    degree_histogram,
    merge_graphs,
    reachable_from,
    reaches,
    remove_nodes,
    subgraph,
    from_networkx,
    to_networkx,
    transition_matrix,
)
from .sharded import (
    ShardedWebGraph,
    ShardMeta,
    default_boundaries,
    iter_edge_chunks,
    partition_graph,
    sharded_from_edges,
    verify_store,
)
from .webgraph import GraphStats, WebGraph

__all__ = [
    "WebGraph",
    "GraphStats",
    "GraphBackend",
    "backend_name_of",
    "ShardedWebGraph",
    "ShardMeta",
    "sharded_from_edges",
    "partition_graph",
    "iter_edge_chunks",
    "default_boundaries",
    "verify_store",
    "EmptyGraphError",
    "GraphIOError",
    "ShardMissingError",
    "ShardIntegrityError",
    "ShardTruncatedError",
    "ShardDigestMismatchError",
    "ManifestVersionError",
    "GraphDelta",
    "DeltaApplication",
    "compose_deltas",
    "compose_applications",
    "read_delta",
    "write_delta",
    "DeltaError",
    "GraphFormatError",
    "TruncatedFileError",
    "GraphIOWarning",
    "GraphBuilder",
    "HostName",
    "HostRegistry",
    "parse_host",
    "clean_url",
    "transition_matrix",
    "adjacency_matrix",
    "subgraph",
    "remove_nodes",
    "reachable_from",
    "reaches",
    "degree_histogram",
    "merge_graphs",
    "to_networkx",
    "from_networkx",
    "CollapseResult",
    "collapse_by_key",
    "collapse_page_graph",
    "weakly_connected_components",
    "strongly_connected_components",
    "component_sizes",
    "largest_component",
    "read_edge_list",
    "write_edge_list",
    "read_npz",
    "write_npz",
    "read_host_list",
    "write_host_list",
    "read_labels",
    "write_labels",
    "read_scores",
    "write_scores",
    "read_graph_bundle",
    "write_graph_bundle",
]
