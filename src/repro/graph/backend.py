"""The graph backend interface.

The paper's subject is a 73.3M-host graph; our in-memory CSR model
(:class:`~repro.graph.webgraph.WebGraph`) tops out around a few million
hosts before the transpose and operator arrays stop fitting comfortably
in RAM.  :class:`GraphBackend` is the minimal surface the solver stack
actually consumes, so that the block-partitioned out-of-core backend
(:mod:`repro.graph.sharded`) can slot in underneath
``estimate_spam_mass`` and the detector pipeline without those layers
knowing which representation they are holding.

The contract is deliberately small — everything downstream of the
operator cache works from these five members:

``num_nodes`` / ``num_edges``
    Graph dimensions (``n = |V|``, ``|E|``).
``out_degree()``
    The full out-degree vector (``int64``); per-node lookups take a
    node id.
``dangling_mask()``
    Boolean mask of zero-out-degree nodes (Section 2.2's dangling set).
``structural_fingerprint()``
    The canonical content fingerprint string
    (:func:`~repro.graph.webgraph.compose_fingerprint` format) — the
    operator-cache key and the equality witness of the differential
    test harness.

:class:`~repro.graph.webgraph.WebGraph` is registered as a *virtual*
subclass: it predates the interface and already satisfies it, and
registration keeps its hot constructor free of ABC machinery.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from .webgraph import WebGraph

__all__ = ["GraphBackend", "backend_name_of"]


class GraphBackend(abc.ABC):
    """Minimal graph surface consumed by the solver stack."""

    #: Short identifier of the storage strategy (``"memory"``,
    #: ``"sharded"``); diagnostics and CLI output key on it.
    backend_name: str = "abstract"

    @property
    @abc.abstractmethod
    def num_nodes(self) -> int:
        """Number of nodes ``n = |V|``."""

    @property
    @abc.abstractmethod
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""

    @abc.abstractmethod
    def out_degree(self, node: Optional[int] = None):
        """Out-degree of ``node``, or the full ``int64`` vector."""

    @abc.abstractmethod
    def structural_fingerprint(self) -> str:
        """Canonical structural fingerprint (cache key / parity witness)."""

    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling (zero out-degree) nodes."""
        return self.out_degree() == 0

    def __len__(self) -> int:
        return self.num_nodes


# WebGraph predates the interface and already provides every member.
GraphBackend.register(WebGraph)


def backend_name_of(graph) -> str:
    """The backend identifier of ``graph`` (``"memory"`` for the
    in-memory CSR, which predates the ``backend_name`` attribute)."""
    return getattr(graph, "backend_name", "memory")
