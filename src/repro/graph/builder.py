"""Incremental construction of :class:`~repro.graph.webgraph.WebGraph`.

The synthetic-world generators (``repro.synth``) assemble graphs edge by
edge: first the reputable web core, then spam farms, hijacked links and
community structures layered on top.  :class:`GraphBuilder` supports this
incremental style, applying the paper's host-graph conventions on the
fly:

* self-links are silently dropped (the model of Section 2.1 disallows
  them);
* duplicate edges are collapsed into a single unweighted link, the way
  the Yahoo! host graph collapses all page-level hyperlinks between two
  hosts (Section 4.1);
* nodes may be registered by name, in which case ids are assigned in
  registration order.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from .webgraph import WebGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable accumulator that produces an immutable :class:`WebGraph`.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> g0 = b.add_node("g0.example.com")
    >>> g1 = b.add_node("g1.example.com")
    >>> b.add_edge(g0, g1)
    True
    >>> graph = b.build()
    >>> graph.num_edges
    1
    """

    def __init__(self, num_nodes: int = 0) -> None:
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        self._num_nodes = num_nodes
        self._sources: List[int] = []
        self._dests: List[int] = []
        self._names: Dict[int, str] = {}
        self._name_to_id: Dict[str, int] = {}
        self._edge_set: Optional[Set[Tuple[int, int]]] = set()

    # ------------------------------------------------------------------
    # nodes
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes registered so far."""
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        """Number of distinct edges added so far."""
        if self._edge_set is not None:
            return len(self._edge_set)
        return len(set(zip(self._sources, self._dests)))

    def add_node(self, name: Optional[str] = None) -> int:
        """Register a new node and return its id.

        When ``name`` is given it must be unique; re-registering an
        existing name raises ``ValueError`` (use :meth:`node_id` to look
        names up instead).
        """
        if name is not None:
            if name in self._name_to_id:
                raise ValueError(f"node name {name!r} already registered")
            self._name_to_id[name] = self._num_nodes
            self._names[self._num_nodes] = name
        node = self._num_nodes
        self._num_nodes += 1
        return node

    def add_nodes(self, count: int) -> range:
        """Register ``count`` anonymous nodes; return their id range."""
        if count < 0:
            raise ValueError("count must be non-negative")
        start = self._num_nodes
        self._num_nodes += count
        return range(start, self._num_nodes)

    def node_id(self, name: str) -> int:
        """Return the id of a previously registered named node."""
        try:
            return self._name_to_id[name]
        except KeyError:
            raise KeyError(f"unknown node name {name!r}") from None

    def ensure_node(self, name: str) -> int:
        """Return the id for ``name``, registering it if necessary."""
        if name in self._name_to_id:
            return self._name_to_id[name]
        return self.add_node(name)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------

    def add_edge(self, source: int, dest: int) -> bool:
        """Add the directed edge ``(source, dest)``.

        Returns ``True`` when a new edge was recorded, ``False`` when the
        edge was a self-link or a duplicate (both are ignored, matching
        the unweighted host-graph model).
        """
        self._check(source)
        self._check(dest)
        if source == dest:
            return False
        if self._edge_set is not None:
            if (source, dest) in self._edge_set:
                return False
            self._edge_set.add((source, dest))
        self._sources.append(source)
        self._dests.append(dest)
        return True

    def add_edges(self, edges: Iterable[Tuple[int, int]]) -> int:
        """Add many edges; return the number actually recorded."""
        added = 0
        for source, dest in edges:
            if self.add_edge(source, dest):
                added += 1
        return added

    def add_bidirectional(self, a: int, b: int) -> int:
        """Add both ``(a, b)`` and ``(b, a)``; return how many were new."""
        return int(self.add_edge(a, b)) + int(self.add_edge(b, a))

    def has_edge(self, source: int, dest: int) -> bool:
        """Return ``True`` when ``(source, dest)`` was already added."""
        if self._edge_set is None:
            return (source, dest) in set(zip(self._sources, self._dests))
        return (source, dest) in self._edge_set

    def disable_dedup_tracking(self) -> None:
        """Drop the in-memory edge set to save RAM on huge builds.

        Duplicate collapsing still happens in :meth:`build` (inside
        ``WebGraph.from_edges``); only the incremental ``has_edge`` /
        duplicate-skip bookkeeping is disabled.
        """
        self._edge_set = None

    def _check(self, node: int) -> None:
        if not (0 <= node < self._num_nodes):
            raise IndexError(
                f"node {node} not registered (have {self._num_nodes} nodes)"
            )

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------

    def build(self) -> WebGraph:
        """Freeze the accumulated structure into a :class:`WebGraph`."""
        if self._names:
            names: Optional[List[str]] = [
                self._names.get(i, f"node{i}") for i in range(self._num_nodes)
            ]
        else:
            names = None
        edges = np.column_stack(
            (
                np.asarray(self._sources, dtype=np.int64),
                np.asarray(self._dests, dtype=np.int64),
            )
        ) if self._sources else np.empty((0, 2), dtype=np.int64)
        return WebGraph.from_edges(self._num_nodes, edges, names)
