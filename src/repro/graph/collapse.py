"""Building a host-level graph from page-level data (Section 4.1).

The paper's host graph "was obtained by collapsing all hyperlinks
between any pair of pages on two different hosts into a single
directed edge", with host names taken as the URL part between the
scheme and the first ``/``.  This module is that ingest step, for
adopters who start from a page-level crawl:

* :func:`collapse_page_graph` — page URLs + page-level edges → a
  host-level :class:`WebGraph`;
* :func:`collapse_by_key` — the generic form: any page → group key
  function (e.g. collapse to registrable *domains* instead of hosts —
  the paper's granularity discussion allows either).

Intra-host links disappear (they become self-links, which the model
disallows), duplicate host pairs collapse to one unweighted edge, and
pages with unparseable URLs are dropped like the paper's URL cleaning
step.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .hosts import clean_url, parse_host
from .webgraph import WebGraph

__all__ = ["collapse_page_graph", "collapse_by_key", "CollapseResult"]


class CollapseResult:
    """Outcome of a page→group collapse.

    Attributes
    ----------
    graph:
        The collapsed host/domain-level graph (names attached).
    page_to_node:
        For each input page index, the collapsed node id, or ``-1`` for
        pages whose URL could not be mapped.
    num_dropped_pages:
        Pages with unmappable URLs (the paper's "cleaning").
    num_intra_edges:
        Page edges discarded because both ends collapsed to the same
        node.
    """

    __slots__ = (
        "graph",
        "page_to_node",
        "num_dropped_pages",
        "num_intra_edges",
    )

    def __init__(
        self,
        graph: WebGraph,
        page_to_node: List[int],
        num_dropped_pages: int,
        num_intra_edges: int,
    ) -> None:
        self.graph = graph
        self.page_to_node = page_to_node
        self.num_dropped_pages = num_dropped_pages
        self.num_intra_edges = num_intra_edges

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CollapseResult(nodes={self.graph.num_nodes}, "
            f"edges={self.graph.num_edges}, "
            f"dropped_pages={self.num_dropped_pages}, "
            f"intra_edges={self.num_intra_edges})"
        )


def collapse_by_key(
    pages: Sequence[str],
    edges: Iterable[Tuple[int, int]],
    key: Callable[[str], Optional[str]],
) -> CollapseResult:
    """Collapse a page graph by an arbitrary page → group-name function.

    ``pages[i]`` is the identifier (usually URL) of page ``i``; ``key``
    maps it to a group name or ``None`` to drop the page.  Group node
    ids are assigned in order of first appearance.
    """
    name_to_node: Dict[str, int] = {}
    names: List[str] = []
    page_to_node: List[int] = []
    dropped = 0
    for page in pages:
        group = key(page)
        if group is None:
            page_to_node.append(-1)
            dropped += 1
            continue
        if group not in name_to_node:
            name_to_node[group] = len(names)
            names.append(group)
        page_to_node.append(name_to_node[group])
    host_edges = []
    intra = 0
    for u, v in edges:
        if not (0 <= u < len(pages) and 0 <= v < len(pages)):
            raise ValueError(f"page edge ({u}, {v}) out of range")
        a, b = page_to_node[u], page_to_node[v]
        if a < 0 or b < 0:
            continue
        if a == b:
            intra += 1
            continue
        host_edges.append((a, b))
    graph = WebGraph.from_edges(len(names), host_edges, names)
    return CollapseResult(graph, page_to_node, dropped, intra)


def collapse_page_graph(
    urls: Sequence[str],
    edges: Iterable[Tuple[int, int]],
    *,
    granularity: str = "host",
) -> CollapseResult:
    """Collapse page URLs + page edges into a host or domain graph.

    ``granularity`` is ``"host"`` (the paper's choice: the URL part
    before the first ``/``; no alias detection, so ``www-cs`` and
    ``cs`` subdomains stay distinct) or ``"domain"`` (registrable
    domain, e.g. ``blogger.com.br`` — the paper's "web of sites"
    granularity).
    """
    if granularity == "host":
        key = clean_url
    elif granularity == "domain":

        def key(url: str) -> Optional[str]:
            host = clean_url(url)
            if host is None:
                return None
            return parse_host(host).domain

    else:
        raise ValueError(
            f"granularity must be 'host' or 'domain', got {granularity!r}"
        )
    return collapse_by_key(urls, edges, key)
