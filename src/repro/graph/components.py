"""Connected-component analysis for web graphs.

The anomaly post-mortem of Section 4.4.1 hinges on *isolated
communities*: large groups of good hosts (Alibaba subdomains, Brazilian
blogs) that are densely connected internally but only weakly connected
to the good core.  Weak/strong component extraction is the structural
tool for finding and characterising such groups, and the Section 4.1
statistics count fully isolated hosts.

Implementations are iterative (no recursion) so they scale to the
synthetic host graphs of a few hundred thousand nodes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .webgraph import WebGraph

__all__ = [
    "weakly_connected_components",
    "strongly_connected_components",
    "component_sizes",
    "largest_component",
]


def weakly_connected_components(graph: WebGraph) -> np.ndarray:
    """Label nodes by weakly connected component.

    Returns an ``int64`` array ``labels`` with ``labels[x]`` in
    ``[0, num_components)``; label ids are assigned in order of the
    smallest node id in each component.
    """
    n = graph.num_nodes
    labels = -np.ones(n, dtype=np.int64)
    t_graph = graph.transpose()
    current = 0
    stack: List[int] = []
    for start in range(n):
        if labels[start] >= 0:
            continue
        labels[start] = current
        stack.append(start)
        while stack:
            x = stack.pop()
            for y in graph.out_neighbors(x):
                if labels[y] < 0:
                    labels[y] = current
                    stack.append(int(y))
            for y in t_graph.out_neighbors(x):
                if labels[y] < 0:
                    labels[y] = current
                    stack.append(int(y))
        current += 1
    return labels


def strongly_connected_components(graph: WebGraph) -> np.ndarray:
    """Label nodes by strongly connected component (Tarjan, iterative).

    Returns an ``int64`` label array; labels are renumbered so that the
    component containing the smallest node id gets label 0, the next
    distinct one label 1, and so on.
    """
    n = graph.num_nodes
    index = -np.ones(n, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = -np.ones(n, dtype=np.int64)
    counter = 0
    comp_count = 0
    tarjan_stack: List[int] = []

    for root in range(n):
        if index[root] >= 0:
            continue
        # work stack holds (node, iterator position into out-neighbours)
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            x, pos = work[-1]
            if pos == 0:
                index[x] = counter
                lowlink[x] = counter
                counter += 1
                tarjan_stack.append(x)
                on_stack[x] = True
            neighbors = graph.out_neighbors(x)
            advanced = False
            while pos < len(neighbors):
                y = int(neighbors[pos])
                pos += 1
                if index[y] < 0:
                    work[-1] = (x, pos)
                    work.append((y, 0))
                    advanced = True
                    break
                if on_stack[y]:
                    lowlink[x] = min(lowlink[x], index[y])
            if advanced:
                continue
            work.pop()
            if lowlink[x] == index[x]:
                while True:
                    w = tarjan_stack.pop()
                    on_stack[w] = False
                    comp[w] = comp_count
                    if w == x:
                        break
                comp_count += 1
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[x])

    # renumber by smallest member id for deterministic output
    order: Dict[int, int] = {}
    for x in range(n):
        c = int(comp[x])
        if c not in order:
            order[c] = len(order)
    return np.asarray([order[int(c)] for c in comp], dtype=np.int64)


def component_sizes(labels: np.ndarray) -> np.ndarray:
    """Size of each component, indexed by label."""
    if labels.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.bincount(labels).astype(np.int64)


def largest_component(labels: np.ndarray) -> np.ndarray:
    """Node ids of the largest component (ties: smallest label wins)."""
    sizes = component_sizes(labels)
    if sizes.size == 0:
        return np.empty(0, dtype=np.int64)
    label = int(np.argmax(sizes))
    return np.flatnonzero(labels == label)
