"""Edge deltas over immutable web graphs.

The paper's deployment story (Section 5) is a crawl that keeps moving:
between two rankings only a sliver of the host graph changes — a spam
farm appears, a re-crawled hub gains and loses a few links.  This module
models that sliver as a first-class value, :class:`GraphDelta`: a set of
edge insertions and deletions over a fixed node universe.  Applying a
delta to a :class:`~repro.graph.webgraph.WebGraph` splices a brand-new
CSR (the base graph stays immutable) and reports exactly which nodes
were structurally touched, which is the seed set the incremental
PageRank solver (:mod:`repro.perf.incremental`) pushes from.

Two design points matter downstream:

* **Strictness.**  Inserting an edge that already exists or deleting one
  that does not is rejected (:class:`~repro.errors.DeltaError`) rather
  than ignored — a silently-collapsed delta would desynchronize the
  residual seeding from the actual structural change.
* **Fingerprint derivation.**  A graph's structural fingerprint is a
  commutative sum of per-edge hashes
  (:func:`~repro.graph.webgraph.edge_digest`), so the mutated graph's
  fingerprint is derived in O(|delta|) from the parent's and stamped on
  the new instance — bit-identical to recomputing from the full CSR,
  which the property tests pin.

File format (``.delta``)::

    # comment lines start with '#'
    + <src> <dst>      (insertion)
    - <src> <dst>      (deletion)
"""

from __future__ import annotations

from pathlib import Path
from typing import IO, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DeltaError, GraphFormatError
from .io import _open_text, _write_atomic
from .webgraph import WebGraph, compose_fingerprint, _mix_edge_keys

__all__ = [
    "GraphDelta",
    "DeltaApplication",
    "compose_deltas",
    "compose_applications",
    "read_delta",
    "write_delta",
]

PathLike = Union[str, Path]


def _as_edge_array(edges, what: str) -> np.ndarray:
    """Normalize an edge collection to a (m, 2) int64 array."""
    if isinstance(edges, np.ndarray):
        array = np.asarray(edges, dtype=np.int64)
    else:
        array = np.asarray(list(edges), dtype=np.int64)
    if array.size == 0:
        return array.reshape(0, 2)
    if array.ndim != 2 or array.shape[1] != 2:
        raise DeltaError(f"{what} must be (source, destination) pairs")
    return array


class GraphDelta:
    """An immutable set of edge insertions and deletions.

    Parameters
    ----------
    insertions, deletions:
        Iterables of ``(source, destination)`` pairs.  Within each list
        duplicates are rejected, as are self-links and negative node
        ids; an edge may not appear in both lists (the composition is
        ambiguous).  Node-range and existence checks happen at
        :meth:`apply` time, against the concrete base graph.
    """

    __slots__ = ("_insertions", "_deletions")

    def __init__(
        self,
        insertions: Iterable[Tuple[int, int]] = (),
        deletions: Iterable[Tuple[int, int]] = (),
    ) -> None:
        ins = _as_edge_array(insertions, "insertions")
        dels = _as_edge_array(deletions, "deletions")
        for what, array in (("insertion", ins), ("deletion", dels)):
            if len(array) == 0:
                continue
            if array.min() < 0:
                raise DeltaError(f"negative node id in {what}s")
            if np.any(array[:, 0] == array[:, 1]):
                bad = array[array[:, 0] == array[:, 1]][0]
                raise DeltaError(
                    f"self-link ({bad[0]}, {bad[1]}) in {what}s is not allowed"
                )
        # canonical order: sort by (source, destination); detect duplicates
        ins = self._canonical(ins, "insertions")
        dels = self._canonical(dels, "deletions")
        if len(ins) and len(dels):
            merged = np.concatenate([ins, dels])
            uniq = np.unique(merged, axis=0)
            if len(uniq) != len(merged):
                raise DeltaError(
                    "an edge appears in both insertions and deletions"
                )
        self._insertions = ins
        self._insertions.setflags(write=False)
        self._deletions = dels
        self._deletions.setflags(write=False)

    @staticmethod
    def _canonical(array: np.ndarray, what: str) -> np.ndarray:
        if len(array) == 0:
            return array
        order = np.lexsort((array[:, 1], array[:, 0]))
        array = array[order]
        if np.any(np.all(array[1:] == array[:-1], axis=1)):
            raise DeltaError(f"duplicate edge in {what}")
        return array

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------

    @property
    def insertions(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of inserted edges, sorted."""
        return self._insertions

    @property
    def deletions(self) -> np.ndarray:
        """Read-only ``(m, 2)`` array of deleted edges, sorted."""
        return self._deletions

    @property
    def num_insertions(self) -> int:
        return len(self._insertions)

    @property
    def num_deletions(self) -> int:
        return len(self._deletions)

    def __len__(self) -> int:
        """Total number of edge changes."""
        return len(self._insertions) + len(self._deletions)

    def is_empty(self) -> bool:
        return len(self) == 0

    def touched_sources(self) -> np.ndarray:
        """Sorted unique source nodes of all changed edges.

        These are the nodes whose transition-matrix *rows* change — the
        exact seed set for residual-push updates.
        """
        return np.unique(
            np.concatenate([self._insertions[:, 0], self._deletions[:, 0]])
        ).astype(np.int64)

    def touched_nodes(self) -> np.ndarray:
        """Sorted unique endpoints (sources and targets) of all changes."""
        return np.unique(
            np.concatenate([self._insertions.ravel(), self._deletions.ravel()])
        ).astype(np.int64)

    def inverse(self) -> "GraphDelta":
        """The delta that undoes this one (swap insertions/deletions)."""
        return GraphDelta(self._deletions.copy(), self._insertions.copy())

    def compose(self, other: "GraphDelta") -> "GraphDelta":
        """The single delta equivalent to applying ``self`` then ``other``.

        Net cancellation: an edge inserted by ``self`` and deleted by
        ``other`` (or deleted then re-inserted) drops out entirely — its
        source leaves the touched set, exactly as the base graph's row
        is net unchanged.  Strictness is preserved: an edge inserted (or
        deleted) by *both* deltas raises :class:`DeltaError`, because the
        sequential application would fail at the second delta; any
        remaining conflict with the base graph still surfaces at
        :meth:`apply` time.  ``compose(d1, d2).apply(g)`` splices the
        same CSR, bit for bit, as ``d2.apply(d1.apply(g).after)``.
        """
        ins1 = {(int(u), int(v)) for u, v in self._insertions}
        del1 = {(int(u), int(v)) for u, v in self._deletions}
        ins2 = {(int(u), int(v)) for u, v in other._insertions}
        del2 = {(int(u), int(v)) for u, v in other._deletions}
        twice = ins1 & ins2
        if twice:
            u, v = min(twice)
            raise DeltaError(
                f"cannot compose: edge ({u}, {v}) is inserted by both "
                "deltas (the second insertion would find it present)"
            )
        twice = del1 & del2
        if twice:
            u, v = min(twice)
            raise DeltaError(
                f"cannot compose: edge ({u}, {v}) is deleted by both "
                "deltas (the second deletion would find it absent)"
            )
        cancel_fwd = ins1 & del2  # inserted, then deleted: net no-op
        cancel_back = del1 & ins2  # deleted, then restored: net no-op
        insertions = sorted((ins1 - cancel_fwd) | (ins2 - cancel_back))
        deletions = sorted((del1 - cancel_back) | (del2 - cancel_fwd))
        return GraphDelta(insertions, deletions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphDelta(+{self.num_insertions}, -{self.num_deletions})"
        )

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------

    def derive_fingerprint(self, graph: WebGraph) -> str:
        """O(|delta|) fingerprint of ``apply(graph).after``.

        Adds the per-edge hashes of the insertions to the parent digest
        and subtracts those of the deletions (mod 2^64); commutativity
        of the sum makes the result equal to hashing the spliced CSR
        from scratch.
        """
        parent = graph.structural_fingerprint()
        digest = int(parent.rsplit("h=", 1)[1], 16)
        n = np.uint64(graph.num_nodes)
        for sign, edges in ((1, self._insertions), (-1, self._deletions)):
            if len(edges) == 0:
                continue
            keys = edges[:, 0].astype(np.uint64) * n + edges[:, 1].astype(
                np.uint64
            )
            mixed = int(_mix_edge_keys(keys).sum(dtype=np.uint64))
            digest = (digest + sign * mixed) & 0xFFFFFFFFFFFFFFFF
        num_edges = graph.num_edges + self.num_insertions - self.num_deletions
        return compose_fingerprint(graph.num_nodes, num_edges, int(digest))

    def apply(self, graph: WebGraph) -> "DeltaApplication":
        """Splice this delta into ``graph``'s CSR; return the application.

        The base graph is untouched; the result carries the new
        :class:`WebGraph` (with a derived fingerprint stamped on it) and
        the touched-node sets.  Raises :class:`DeltaError` when an
        endpoint is out of range, an insertion already exists, or a
        deletion does not.
        """
        n = graph.num_nodes
        for what, edges in (
            ("insertion", self._insertions),
            ("deletion", self._deletions),
        ):
            if len(edges) and edges.max() >= n:
                raise DeltaError(
                    f"{what} endpoint out of range for n={n}"
                )
        indptr = graph.indptr
        indices = graph.indices
        sources = np.repeat(
            np.arange(n, dtype=np.int64), graph.out_degree()
        )
        # global keys u*n+v are strictly increasing over the whole CSR,
        # so membership and splice positions are binary searches
        keys = sources * n + indices
        counts = np.zeros(n, dtype=np.int64)

        if len(self._deletions):
            del_keys = self._deletions[:, 0] * n + self._deletions[:, 1]
            pos = np.searchsorted(keys, del_keys)
            if len(keys):
                present = (pos < len(keys)) & (
                    keys[np.minimum(pos, len(keys) - 1)] == del_keys
                )
            else:
                present = np.zeros(len(del_keys), dtype=bool)
            if not present.all():
                bad = self._deletions[~present][0]
                raise DeltaError(
                    f"cannot delete edge ({bad[0]}, {bad[1]}): not present"
                )
            keep = np.ones(len(keys), dtype=bool)
            keep[pos] = False
            keys = keys[keep]
            np.subtract.at(counts, self._deletions[:, 0], 1)

        if len(self._insertions):
            ins_keys = self._insertions[:, 0] * n + self._insertions[:, 1]
            pos = np.searchsorted(keys, ins_keys)
            if len(keys):
                exists = (pos < len(keys)) & (
                    keys[np.minimum(pos, len(keys) - 1)] == ins_keys
                )
                if exists.any():
                    bad = self._insertions[exists][0]
                    raise DeltaError(
                        f"cannot insert edge ({bad[0]}, {bad[1]}): "
                        "already present"
                    )
            keys = np.insert(keys, pos, ins_keys)
            np.add.at(counts, self._insertions[:, 0], 1)

        new_indptr = np.zeros(n + 1, dtype=np.int64)
        new_indptr[1:] = np.cumsum(graph.out_degree() + counts)
        new_indices = keys % n
        after = WebGraph(new_indptr, new_indices, graph.names, validate=False)
        after._stamp_fingerprint(self.derive_fingerprint(graph))
        return DeltaApplication(graph, after, self)


class DeltaApplication:
    """The result of applying a :class:`GraphDelta` to a base graph.

    Bundles the ``before``/``after`` graphs with the delta itself and
    the touched-node sets; this is the unit the incremental solver and
    the operator cache consume (both need the *pair* of graphs, not just
    the mutated one).
    """

    __slots__ = ("before", "after", "delta")

    def __init__(
        self, before: WebGraph, after: WebGraph, delta: GraphDelta
    ) -> None:
        self.before = before
        self.after = after
        self.delta = delta

    @property
    def touched_sources(self) -> np.ndarray:
        """Nodes whose out-rows changed (residual seed set)."""
        return self.delta.touched_sources()

    @property
    def touched_nodes(self) -> np.ndarray:
        """All endpoints involved in the change."""
        return self.delta.touched_nodes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeltaApplication({self.delta!r}, "
            f"n={self.after.num_nodes}, e={self.after.num_edges})"
        )


# ----------------------------------------------------------------------
# composition
# ----------------------------------------------------------------------


def compose_deltas(deltas: Sequence[GraphDelta]) -> GraphDelta:
    """Left-fold a sequence of deltas into one equivalent delta.

    ``compose_deltas([d1, d2, d3])`` is ``d1.compose(d2).compose(d3)``;
    an empty sequence composes to the empty delta.  Raises
    :class:`~repro.errors.DeltaError` whenever applying the sequence
    one by one would fail on a double insertion/deletion.
    """
    composed = GraphDelta()
    for delta in deltas:
        composed = composed.compose(delta)
    return composed


def compose_applications(
    applications: Sequence[DeltaApplication],
) -> DeltaApplication:
    """Collapse a chain of applications into one spanning application.

    The inputs must chain: each application's ``before`` graph is the
    previous one's ``after`` (checked by structural fingerprint).  The
    result reuses the already-spliced final graph — no re-splice — and
    carries the composed delta, so the incremental solver seeds one
    residual for the whole batch and derives one operator.
    """
    if not applications:
        raise DeltaError("cannot compose an empty application chain")
    for prev, nxt in zip(applications, applications[1:]):
        if nxt.before is not prev.after and (
            nxt.before.structural_fingerprint()
            != prev.after.structural_fingerprint()
        ):
            raise DeltaError(
                "applications do not chain: fingerprint "
                f"{nxt.before.structural_fingerprint()!r} does not "
                f"follow {prev.after.structural_fingerprint()!r}"
            )
    delta = compose_deltas([app.delta for app in applications])
    return DeltaApplication(
        applications[0].before, applications[-1].after, delta
    )


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------


def write_delta(delta: GraphDelta, path: PathLike) -> None:
    """Write a delta file (atomic; ``+``/``-`` prefixed edge lines)."""

    def _body(fh: IO[str]) -> None:
        fh.write("# edge delta: '+ src dst' inserts, '- src dst' deletes\n")
        for u, v in delta.insertions:
            fh.write(f"+ {u} {v}\n")
        for u, v in delta.deletions:
            fh.write(f"- {u} {v}\n")

    _write_atomic(path, _body)


def read_delta(path: PathLike) -> GraphDelta:
    """Read a delta file written by :func:`write_delta`.

    Malformed lines raise :class:`~repro.errors.GraphFormatError` naming
    the file and line; semantic problems (duplicates, self-links) raise
    :class:`~repro.errors.DeltaError`.
    """
    insertions: List[Tuple[int, int]] = []
    deletions: List[Tuple[int, int]] = []
    with _open_text(path, "r") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 3 or parts[0] not in ("+", "-"):
                raise GraphFormatError(
                    f"{path}:{lineno}: expected '+|- <src> <dst>', "
                    f"got {line!r}"
                )
            try:
                u, v = int(parts[1]), int(parts[2])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer node id in {line!r}"
                ) from exc
            (insertions if parts[0] == "+" else deletions).append((u, v))
    return GraphDelta(insertions, deletions)
