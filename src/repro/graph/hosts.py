"""Host-name machinery for the host-level web graph.

Section 4 of the paper works at host granularity: a host name is the part
of the URL between ``http://`` and the first ``/``.  The good core of
Section 4.2 is assembled from host families recognised by name —
``.gov`` hosts, educational hosts, hosts listed in a directory — and the
anomaly analysis of Section 4.4.1 groups hosts by domain suffix
(``.alibaba.com``, ``.blogger.com.br``, ``.pl``).  This module provides
the name parsing and registry that those steps need.

No DNS or alias detection is performed, matching the paper (which counts
``www-cs.stanford.edu`` and ``cs.stanford.edu`` as distinct hosts).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = [
    "HostName",
    "HostRegistry",
    "parse_host",
    "clean_url",
]

# Country-code second-level domains that behave like TLD suffixes, so the
# registrable domain of e.g. ``blogA.blogger.com.br`` is ``blogger.com.br``.
_COMPOSITE_SUFFIXES = frozenset(
    {
        "com.br",
        "com.cn",
        "com.au",
        "co.uk",
        "ac.uk",
        "gov.uk",
        "co.jp",
        "ac.jp",
        "edu.cn",
        "edu.pl",
        "com.pl",
        "edu.it",
        "gov.it",
    }
)


class HostName:
    """A parsed host name.

    Attributes
    ----------
    raw:
        The host name exactly as given (lower-cased).
    labels:
        The dot-separated labels, left to right.
    tld:
        The top-level domain (last label), e.g. ``"br"``.
    suffix:
        The effective public suffix: either the TLD or a recognised
        composite suffix such as ``"com.br"``.
    domain:
        The registrable domain: suffix plus one label, e.g.
        ``"blogger.com.br"`` or ``"alibaba.com"``.
    """

    __slots__ = ("raw", "labels", "tld", "suffix", "domain")

    def __init__(self, raw: str) -> None:
        raw = raw.strip().lower().rstrip(".")
        if not raw:
            raise ValueError("empty host name")
        if any(not label for label in raw.split(".")):
            raise ValueError(f"malformed host name {raw!r}")
        self.raw = raw
        self.labels = tuple(raw.split("."))
        self.tld = self.labels[-1]
        if len(self.labels) >= 2:
            two = ".".join(self.labels[-2:])
            self.suffix = two if two in _COMPOSITE_SUFFIXES else self.tld
        else:
            self.suffix = self.tld
        suffix_labels = self.suffix.count(".") + 1
        if len(self.labels) > suffix_labels:
            self.domain = ".".join(self.labels[-(suffix_labels + 1) :])
        else:
            self.domain = self.raw

    def is_subdomain_of(self, domain: str) -> bool:
        """Return ``True`` if this host is within ``domain`` (inclusive)."""
        domain = domain.strip().lower().strip(".")
        return self.raw == domain or self.raw.endswith("." + domain)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostName({self.raw!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, HostName):
            return self.raw == other.raw
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.raw)


def parse_host(name: str) -> HostName:
    """Parse ``name`` into a :class:`HostName`."""
    return HostName(name)


def clean_url(url: str) -> Optional[str]:
    """Extract a host name from a URL, per the paper's definition.

    Returns the part between the scheme and the first ``/``, lower-cased,
    with ports and credentials stripped; ``None`` when no plausible host
    can be extracted (the paper's core construction "cleaned" incorrect
    and broken URLs the same way).
    """
    url = url.strip()
    if not url:
        return None
    lowered = url.lower()
    for scheme in ("http://", "https://"):
        if lowered.startswith(scheme):
            url = url[len(scheme) :]
            break
    host = url.split("/", 1)[0]
    if "@" in host:  # credentials
        host = host.rsplit("@", 1)[1]
    if ":" in host:  # port
        host = host.split(":", 1)[0]
    host = host.strip().lower().rstrip(".")
    if not host or "." not in host:
        return None
    if any(not label for label in host.split(".")):
        return None
    if any(c in host for c in " \t\r\n?#"):
        return None
    return host


class HostRegistry:
    """Bidirectional mapping between host names and node ids.

    The registry is the naming layer on top of a :class:`WebGraph`: the
    synthetic-world generators register every host they create, and the
    good-core builder then selects hosts by suffix or domain
    (e.g. "all ``.gov`` hosts", "all hosts of educational institutions").
    """

    def __init__(self) -> None:
        self._names: List[str] = []
        self._ids: Dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._names)

    def register(self, name: str) -> int:
        """Register ``name`` and return its node id (must be new)."""
        key = name.strip().lower()
        if key in self._ids:
            raise ValueError(f"host {name!r} already registered")
        node = len(self._names)
        self._names.append(key)
        self._ids[key] = node
        return node

    def register_all(self, names: Iterable[str]) -> List[int]:
        """Register many hosts; return their ids in order."""
        return [self.register(name) for name in names]

    def id_of(self, name: str) -> int:
        """Node id of ``name`` (raises ``KeyError`` when unknown)."""
        return self._ids[name.strip().lower()]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name.strip().lower() in self._ids

    def name_of(self, node: int) -> str:
        """Host name of node id ``node``."""
        return self._names[node]

    def names(self) -> Tuple[str, ...]:
        """All registered names, in id order."""
        return tuple(self._names)

    def iter_ids(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(range(len(self._names)))

    # ------------------------------------------------------------------
    # suffix / domain selection (core construction, anomaly analysis)
    # ------------------------------------------------------------------

    def with_suffix(self, suffix: str) -> List[int]:
        """Ids of hosts whose name ends in ``suffix`` (e.g. ``".gov"``).

        A leading dot is implied: ``with_suffix("gov")`` matches
        ``www.nasa.gov`` but not ``notgov``.
        """
        suffix = suffix.strip().lower().lstrip(".")
        dotted = "." + suffix
        return [
            i
            for i, name in enumerate(self._names)
            if name.endswith(dotted) or name == suffix
        ]

    def in_domain(self, domain: str) -> List[int]:
        """Ids of hosts inside ``domain`` (inclusive of the apex host)."""
        domain = domain.strip().lower().strip(".")
        dotted = "." + domain
        return [
            i
            for i, name in enumerate(self._names)
            if name == domain or name.endswith(dotted)
        ]

    def domains(self) -> Dict[str, List[int]]:
        """Group all hosts by registrable domain."""
        groups: Dict[str, List[int]] = {}
        for i, name in enumerate(self._names):
            domain = HostName(name).domain
            groups.setdefault(domain, []).append(i)
        return groups
