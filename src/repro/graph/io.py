"""Serialization of web graphs, label sets and score vectors.

A reproduction pipeline produces several on-disk artifacts: the host
graph itself, the good core (a host list, like the paper's directory +
``.gov`` + educational compilation), ground-truth label files, and score
vectors (PageRank, core-biased PageRank, mass estimates).  This module
defines plain-text formats for each so that every experiment is
re-runnable from files, plus gzip support because host graphs compress
well.

Formats
-------
Edge list (``.edges`` / ``.edges.gz``)::

    # comment lines start with '#'
    <num_nodes>
    <src> <dst>
    ...

Host list (``.hosts``): one host name per line, id = line number.

Label file (``.labels``): ``<node> <label>`` per line.

Score vector (``.scores``): ``<node> <value>`` per line (float repr).
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, IO, List, Optional, Sequence, Tuple, Union

import numpy as np

from .webgraph import WebGraph

__all__ = [
    "write_npz",
    "read_npz",
    "write_edge_list",
    "read_edge_list",
    "write_host_list",
    "read_host_list",
    "write_labels",
    "read_labels",
    "write_scores",
    "read_scores",
    "write_graph_bundle",
    "read_graph_bundle",
]

PathLike = Union[str, Path]


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


# ----------------------------------------------------------------------
# binary (npz) graphs
# ----------------------------------------------------------------------


def write_npz(graph: WebGraph, path: PathLike) -> None:
    """Write a graph as a compressed ``.npz`` (CSR arrays + names).

    Orders of magnitude faster to reload than the text edge list for
    the ~100k-host benchmark worlds; the text formats remain the
    interchange/diff-friendly option.
    """
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.names is not None:
        arrays["names"] = np.asarray(graph.names, dtype=np.str_)
    np.savez_compressed(Path(path), **arrays)


def read_npz(path: PathLike) -> WebGraph:
    """Read a graph written by :func:`write_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        indptr = data["indptr"]
        indices = data["indices"]
        names = (
            [str(name) for name in data["names"]]
            if "names" in data
            else None
        )
    return WebGraph(indptr, indices, names, validate=True)


# ----------------------------------------------------------------------
# edge lists
# ----------------------------------------------------------------------


def write_edge_list(graph: WebGraph, path: PathLike) -> None:
    """Write ``graph`` as a plain-text edge list (optionally gzipped)."""
    with _open_text(path, "w") as fh:
        fh.write("# repro edge list v1\n")
        fh.write(f"{graph.num_nodes}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: PathLike) -> WebGraph:
    """Read a graph previously written by :func:`write_edge_list`."""
    with _open_text(path, "r") as fh:
        num_nodes: Optional[int] = None
        edges: List[Tuple[int, int]] = []
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if num_nodes is None:
                try:
                    num_nodes = int(line)
                except ValueError:
                    raise ValueError(
                        f"{path}:{lineno}: expected node count, got {line!r}"
                    ) from None
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected '<src> <dst>', got {line!r}"
                )
            edges.append((int(parts[0]), int(parts[1])))
    if num_nodes is None:
        raise ValueError(f"{path}: missing node-count header")
    return WebGraph.from_edges(num_nodes, edges)


# ----------------------------------------------------------------------
# host lists
# ----------------------------------------------------------------------


def write_host_list(names: Sequence[str], path: PathLike) -> None:
    """Write host names, one per line, id = line index."""
    with _open_text(path, "w") as fh:
        for name in names:
            if "\n" in name or "\r" in name:
                raise ValueError(f"host name {name!r} contains a newline")
            fh.write(name + "\n")


def read_host_list(path: PathLike) -> List[str]:
    """Read a host list written by :func:`write_host_list`."""
    with _open_text(path, "r") as fh:
        return [line.rstrip("\n") for line in fh if line.rstrip("\n")]


# ----------------------------------------------------------------------
# labels
# ----------------------------------------------------------------------


def write_labels(labels: Dict[int, str], path: PathLike) -> None:
    """Write a node → label mapping (e.g. good/spam ground truth)."""
    with _open_text(path, "w") as fh:
        for node in sorted(labels):
            label = labels[node]
            if any(c.isspace() for c in label):
                raise ValueError(f"label {label!r} contains whitespace")
            fh.write(f"{node} {label}\n")


def read_labels(path: PathLike) -> Dict[int, str]:
    """Read a label file written by :func:`write_labels`."""
    labels: Dict[int, str] = {}
    with _open_text(path, "r") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"{path}:{lineno}: expected '<node> <label>', got {line!r}"
                )
            labels[int(parts[0])] = parts[1]
    return labels


# ----------------------------------------------------------------------
# score vectors
# ----------------------------------------------------------------------


def write_scores(scores: np.ndarray, path: PathLike) -> None:
    """Write a dense score vector (PageRank, mass estimates, ...)."""
    scores = np.asarray(scores, dtype=np.float64)
    with _open_text(path, "w") as fh:
        fh.write(f"# {len(scores)} scores\n")
        for node, value in enumerate(scores):
            # repr of a Python float round-trips the double exactly
            fh.write(f"{node} {float(value)!r}\n")


def read_scores(path: PathLike) -> np.ndarray:
    """Read a score vector written by :func:`write_scores`."""
    pairs: List[Tuple[int, float]] = []
    with _open_text(path, "r") as fh:
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            node_str, value_str = line.split()
            pairs.append((int(node_str), float(value_str)))
    if not pairs:
        return np.empty(0, dtype=np.float64)
    n = max(node for node, _ in pairs) + 1
    out = np.zeros(n, dtype=np.float64)
    for node, value in pairs:
        out[node] = value
    return out


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------


def write_graph_bundle(
    graph: WebGraph,
    directory: PathLike,
    *,
    labels: Optional[Dict[int, str]] = None,
    metadata: Optional[dict] = None,
    compress: bool = False,
) -> Path:
    """Write a graph plus its sidecar files into ``directory``.

    Produces ``graph.edges[.gz]``, optionally ``graph.hosts``,
    ``graph.labels`` and ``metadata.json``.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".edges.gz" if compress else ".edges"
    write_edge_list(graph, directory / f"graph{suffix}")
    if graph.names is not None:
        write_host_list(list(graph.names), directory / "graph.hosts")
    if labels is not None:
        write_labels(labels, directory / "graph.labels")
    if metadata is not None:
        with open(directory / "metadata.json", "w", encoding="utf-8") as fh:
            json.dump(metadata, fh, indent=2, sort_keys=True)
    return directory


def read_graph_bundle(
    directory: PathLike,
) -> Tuple[WebGraph, Optional[Dict[int, str]], Optional[dict]]:
    """Read a bundle written by :func:`write_graph_bundle`.

    Returns ``(graph, labels_or_None, metadata_or_None)``.
    """
    directory = Path(directory)
    edge_path = directory / "graph.edges"
    if not edge_path.exists():
        edge_path = directory / "graph.edges.gz"
    if not edge_path.exists():
        raise FileNotFoundError(f"no graph.edges[.gz] in {directory}")
    graph = read_edge_list(edge_path)
    hosts_path = directory / "graph.hosts"
    if hosts_path.exists():
        names = read_host_list(hosts_path)
        graph = WebGraph(
            graph.indptr.copy(), graph.indices.copy(), names, validate=False
        )
    labels = None
    labels_path = directory / "graph.labels"
    if labels_path.exists():
        labels = read_labels(labels_path)
    metadata = None
    meta_path = directory / "metadata.json"
    if meta_path.exists():
        with open(meta_path, encoding="utf-8") as fh:
            metadata = json.load(fh)
    return graph, labels, metadata
