"""Serialization of web graphs, label sets and score vectors.

A reproduction pipeline produces several on-disk artifacts: the host
graph itself, the good core (a host list, like the paper's directory +
``.gov`` + educational compilation), ground-truth label files, and score
vectors (PageRank, core-biased PageRank, mass estimates).  This module
defines plain-text formats for each so that every experiment is
re-runnable from files, plus gzip support because host graphs compress
well.

Formats
-------
Edge list (``.edges`` / ``.edges.gz``)::

    # comment lines start with '#'
    <num_nodes>
    <src> <dst>
    ...

Host list (``.hosts``): one host name per line, id = line number.

Label file (``.labels``): ``<node> <label>`` per line.

Score vector (``.scores``): ``<node> <value>`` per line (float repr).

Robustness
----------
All writers are **atomic** (write to a ``.tmp`` sibling, then
``os.replace``) and retry transient ``OSError`` with backoff, so a
crash or flaky filesystem can never leave a half-written artifact under
the final name.  All readers take ``strict=``:

* ``strict=True`` (default) raises a typed
  :class:`~repro.errors.GraphFormatError` naming the file and line for
  any malformed content;
* ``strict=False`` (lenient) skips malformed lines, out-of-range node
  ids and duplicate edges, then emits a single
  :class:`~repro.errors.GraphIOWarning` carrying per-category skip
  counts.

A truncated or corrupt gzip stream raises
:class:`~repro.errors.TruncatedFileError` in *both* modes — there is no
principled way to skip past a broken compression stream.
"""

from __future__ import annotations

import gzip
import os
import zipfile
import zlib
from collections import Counter
import json
import warnings
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import GraphFormatError, GraphIOWarning, TruncatedFileError
from ..runtime.retry import with_retries
from .webgraph import WebGraph

__all__ = [
    "write_npz",
    "read_npz",
    "write_edge_list",
    "read_edge_list",
    "write_host_list",
    "read_host_list",
    "write_labels",
    "read_labels",
    "write_scores",
    "read_scores",
    "write_graph_bundle",
    "read_graph_bundle",
]

PathLike = Union[str, Path]


#: gzip/zlib raise these when a stream was cut mid-member (interrupted
#: transfer, partial copy).  ``EOFError`` is what ``gzip`` raises on
#: truncation; ``zlib.error`` on corrupt deflate data;
#: ``zipfile.BadZipFile`` when an ``.npz`` archive lost its central
#: directory (it lives at the end, so truncation always destroys it).
_TRUNCATION_ERRORS = (EOFError, zlib.error, gzip.BadGzipFile, zipfile.BadZipFile)


def _open_text(path: PathLike, mode: str) -> IO[str]:
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _write_atomic(
    path: PathLike,
    body: Callable[[IO[str]], None],
    *,
    binary: bool = False,
    retries: int = 2,
    backoff: float = 0.05,
) -> None:
    """Write a file atomically with retry-with-backoff.

    The payload goes to a ``.tmp`` sibling which is ``os.replace``-d
    over the final name, so readers never observe a torn file; each
    retry restarts the write from scratch (the body re-runs against a
    fresh handle).  gzip-ness is decided by the *final* suffix, not the
    temporary one.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")

    def _attempt() -> None:
        try:
            if binary:
                fh: IO = open(tmp, "wb")
            elif path.suffix == ".gz":
                fh = gzip.open(tmp, "wt", encoding="utf-8")
            else:
                fh = open(tmp, "w", encoding="utf-8")
            with fh:
                body(fh)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    with_retries(_attempt, retries=retries, backoff=backoff)


def _warn_skips(path: PathLike, counts: Counter) -> None:
    summary = ", ".join(f"{n} {kind}" for kind, n in sorted(counts.items()))
    warnings.warn(
        GraphIOWarning(
            f"{path}: lenient read (skipped: {summary})", counts
        ),
        stacklevel=3,
    )


# ----------------------------------------------------------------------
# binary (npz) graphs
# ----------------------------------------------------------------------


def write_npz(graph: WebGraph, path: PathLike) -> None:
    """Write a graph as a compressed ``.npz`` (CSR arrays + names).

    Orders of magnitude faster to reload than the text edge list for
    the ~100k-host benchmark worlds; the text formats remain the
    interchange/diff-friendly option.
    """
    arrays = {
        "indptr": graph.indptr,
        "indices": graph.indices,
    }
    if graph.names is not None:
        arrays["names"] = np.asarray(graph.names, dtype=np.str_)
    _write_atomic(
        Path(path), lambda fh: np.savez_compressed(fh, **arrays), binary=True
    )


def read_npz(path: PathLike) -> WebGraph:
    """Read a graph written by :func:`write_npz`.

    A truncated archive (interrupted copy) raises
    :class:`~repro.errors.TruncatedFileError`.
    """
    try:
        with np.load(Path(path), allow_pickle=False) as data:
            indptr = data["indptr"]
            indices = data["indices"]
            names = (
                [str(name) for name in data["names"]]
                if "names" in data
                else None
            )
    except _TRUNCATION_ERRORS as exc:
        raise TruncatedFileError(
            f"{path}: truncated or corrupt npz archive ({exc})"
        ) from exc
    return WebGraph(indptr, indices, names, validate=True)


# ----------------------------------------------------------------------
# edge lists
# ----------------------------------------------------------------------


def write_edge_list(graph: WebGraph, path: PathLike) -> None:
    """Write ``graph`` as a plain-text edge list (optionally gzipped).

    Atomic: the file appears under its final name only once complete.
    """

    def _body(fh: IO[str]) -> None:
        fh.write("# repro edge list v1\n")
        fh.write(f"{graph.num_nodes}\n")
        for u, v in graph.edges():
            fh.write(f"{u} {v}\n")

    _write_atomic(path, _body)


def read_edge_list(path: PathLike, *, strict: bool = True) -> WebGraph:
    """Read a graph previously written by :func:`write_edge_list`.

    ``strict=False`` skips malformed lines and out-of-range node ids
    (counting them into one :class:`~repro.errors.GraphIOWarning`)
    instead of raising; the node-count header is structural and its
    absence raises in both modes, as does gzip truncation.
    """
    counts: Counter = Counter()
    num_nodes: Optional[int] = None
    edges: List[Tuple[int, int]] = []
    try:
        with _open_text(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                if num_nodes is None:
                    try:
                        num_nodes = int(line)
                    except ValueError:
                        raise GraphFormatError(
                            f"{path}:{lineno}: expected node count, "
                            f"got {line!r}"
                        ) from None
                    if num_nodes < 0:
                        raise GraphFormatError(
                            f"{path}:{lineno}: negative node count "
                            f"{num_nodes}"
                        )
                    continue
                parts = line.split()
                if len(parts) != 2:
                    if strict:
                        raise GraphFormatError(
                            f"{path}:{lineno}: expected '<src> <dst>', "
                            f"got {line!r}"
                        )
                    counts["malformed"] += 1
                    continue
                try:
                    src, dst = int(parts[0]), int(parts[1])
                except ValueError:
                    if strict:
                        raise GraphFormatError(
                            f"{path}:{lineno}: non-integer node id in "
                            f"{line!r}"
                        ) from None
                    counts["malformed"] += 1
                    continue
                if not (0 <= src < num_nodes and 0 <= dst < num_nodes):
                    if strict:
                        raise GraphFormatError(
                            f"{path}:{lineno}: node id out of range "
                            f"[0, {num_nodes}) in {line!r}"
                        )
                    counts["out-of-range"] += 1
                    continue
                edges.append((src, dst))
    except _TRUNCATION_ERRORS as exc:
        raise TruncatedFileError(
            f"{path}: truncated or corrupt gzip stream ({exc}) — "
            "the file was likely cut mid-transfer"
        ) from exc
    if num_nodes is None:
        raise GraphFormatError(f"{path}: missing node-count header")
    if not strict and edges:
        # count duplicates (and self-links) the graph constructor will
        # collapse/drop, so the warning reflects everything ignored
        arr = np.asarray(edges, dtype=np.int64)
        loops = int((arr[:, 0] == arr[:, 1]).sum())
        keyed = arr[arr[:, 0] != arr[:, 1]]
        dupes = len(keyed) - len(
            np.unique(keyed[:, 0] * num_nodes + keyed[:, 1])
        )
        if dupes:
            counts["duplicate"] += dupes
        if loops:
            counts["self-link"] += loops
    if counts:
        _warn_skips(path, counts)
    return WebGraph.from_edges(num_nodes, edges)


# ----------------------------------------------------------------------
# host lists
# ----------------------------------------------------------------------


def write_host_list(names: Sequence[str], path: PathLike) -> None:
    """Write host names, one per line, id = line index (atomic)."""
    for name in names:
        if "\n" in name or "\r" in name:
            raise ValueError(f"host name {name!r} contains a newline")

    def _body(fh: IO[str]) -> None:
        for name in names:
            fh.write(name + "\n")

    _write_atomic(path, _body)


def read_host_list(path: PathLike) -> List[str]:
    """Read a host list written by :func:`write_host_list`."""
    with _open_text(path, "r") as fh:
        return [line.rstrip("\n") for line in fh if line.rstrip("\n")]


# ----------------------------------------------------------------------
# labels
# ----------------------------------------------------------------------


def write_labels(labels: Dict[int, str], path: PathLike) -> None:
    """Write a node → label mapping (atomic)."""
    for label in labels.values():
        if any(c.isspace() for c in label):
            raise ValueError(f"label {label!r} contains whitespace")

    def _body(fh: IO[str]) -> None:
        for node in sorted(labels):
            fh.write(f"{node} {labels[node]}\n")

    _write_atomic(path, _body)


def read_labels(path: PathLike, *, strict: bool = True) -> Dict[int, str]:
    """Read a label file written by :func:`write_labels`.

    Lenient mode skips (and counts) malformed lines.
    """
    labels: Dict[int, str] = {}
    counts: Counter = Counter()
    try:
        with _open_text(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                try:
                    if len(parts) != 2:
                        raise ValueError(line)
                    node = int(parts[0])
                    if node < 0:
                        raise ValueError(line)
                except ValueError:
                    if strict:
                        raise GraphFormatError(
                            f"{path}:{lineno}: expected '<node> <label>', "
                            f"got {line!r}"
                        ) from None
                    counts["malformed"] += 1
                    continue
                labels[node] = parts[1]
    except _TRUNCATION_ERRORS as exc:
        raise TruncatedFileError(
            f"{path}: truncated or corrupt gzip stream ({exc})"
        ) from exc
    if counts:
        _warn_skips(path, counts)
    return labels


# ----------------------------------------------------------------------
# score vectors
# ----------------------------------------------------------------------


def write_scores(scores: np.ndarray, path: PathLike) -> None:
    """Write a dense score vector (PageRank, mass estimates, ...);
    atomic, like every writer in this module."""
    scores = np.asarray(scores, dtype=np.float64)

    def _body(fh: IO[str]) -> None:
        fh.write(f"# {len(scores)} scores\n")
        for node, value in enumerate(scores):
            # repr of a Python float round-trips the double exactly
            fh.write(f"{node} {float(value)!r}\n")

    _write_atomic(path, _body)


def read_scores(path: PathLike, *, strict: bool = True) -> np.ndarray:
    """Read a score vector written by :func:`write_scores`.

    Lenient mode skips (and counts) malformed lines and negative node
    ids; missing nodes read as 0.
    """
    pairs: List[Tuple[int, float]] = []
    counts: Counter = Counter()
    try:
        with _open_text(path, "r") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    node_str, value_str = line.split()
                    node, value = int(node_str), float(value_str)
                    if node < 0:
                        raise ValueError(line)
                except ValueError:
                    if strict:
                        raise GraphFormatError(
                            f"{path}:{lineno}: expected '<node> <value>', "
                            f"got {line!r}"
                        ) from None
                    counts["malformed"] += 1
                    continue
                pairs.append((node, value))
    except _TRUNCATION_ERRORS as exc:
        raise TruncatedFileError(
            f"{path}: truncated or corrupt gzip stream ({exc})"
        ) from exc
    if counts:
        _warn_skips(path, counts)
    if not pairs:
        return np.empty(0, dtype=np.float64)
    n = max(node for node, _ in pairs) + 1
    out = np.zeros(n, dtype=np.float64)
    for node, value in pairs:
        out[node] = value
    return out


# ----------------------------------------------------------------------
# bundles
# ----------------------------------------------------------------------


def write_graph_bundle(
    graph: WebGraph,
    directory: PathLike,
    *,
    labels: Optional[Dict[int, str]] = None,
    metadata: Optional[dict] = None,
    compress: bool = False,
) -> Path:
    """Write a graph plus its sidecar files into ``directory``.

    Produces ``graph.edges[.gz]``, optionally ``graph.hosts``,
    ``graph.labels`` and ``metadata.json``.  Returns the directory path.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".edges.gz" if compress else ".edges"
    write_edge_list(graph, directory / f"graph{suffix}")
    if graph.names is not None:
        write_host_list(list(graph.names), directory / "graph.hosts")
    if labels is not None:
        write_labels(labels, directory / "graph.labels")
    if metadata is not None:
        _write_atomic(
            directory / "metadata.json",
            lambda fh: json.dump(metadata, fh, indent=2, sort_keys=True),
        )
    return directory


def read_graph_bundle(
    directory: PathLike,
    *,
    strict: bool = True,
) -> Tuple[WebGraph, Optional[Dict[int, str]], Optional[dict]]:
    """Read a bundle written by :func:`write_graph_bundle`.

    Returns ``(graph, labels_or_None, metadata_or_None)``.  ``strict``
    is threaded to the edge-list and label readers; a corrupt
    ``metadata.json`` raises :class:`~repro.errors.GraphFormatError` in
    strict mode and is dropped (with a warning) in lenient mode.
    """
    directory = Path(directory)
    edge_path = directory / "graph.edges"
    if not edge_path.exists():
        edge_path = directory / "graph.edges.gz"
    if not edge_path.exists():
        raise FileNotFoundError(f"no graph.edges[.gz] in {directory}")
    graph = read_edge_list(edge_path, strict=strict)
    hosts_path = directory / "graph.hosts"
    if hosts_path.exists():
        names = read_host_list(hosts_path)
        graph = WebGraph(
            graph.indptr.copy(), graph.indices.copy(), names, validate=False
        )
    labels = None
    labels_path = directory / "graph.labels"
    if labels_path.exists():
        labels = read_labels(labels_path, strict=strict)
    metadata = None
    meta_path = directory / "metadata.json"
    if meta_path.exists():
        try:
            with open(meta_path, encoding="utf-8") as fh:
                metadata = json.load(fh)
        except json.JSONDecodeError as exc:
            if strict:
                raise GraphFormatError(
                    f"{meta_path}: invalid JSON ({exc})"
                ) from exc
            _warn_skips(meta_path, Counter({"invalid-metadata": 1}))
    return graph, labels, metadata
