"""Structural operations on :class:`~repro.graph.webgraph.WebGraph`.

These are the graph-level utilities that the spam-mass pipeline and the
synthetic-world generators lean on: building the (sub)stochastic
transition matrix of Section 2.2, taking subgraphs, BFS reachability for
walk-based contribution checks, and degree-distribution extraction for
the Section 4.1 / Figure 6 style analyses.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Sequence, Tuple

import numpy as np
from scipy import sparse

from .webgraph import WebGraph

__all__ = [
    "transition_matrix",
    "adjacency_matrix",
    "subgraph",
    "remove_nodes",
    "reachable_from",
    "reaches",
    "degree_histogram",
    "merge_graphs",
    "to_networkx",
    "from_networkx",
]


def transition_matrix(graph: WebGraph) -> sparse.csr_matrix:
    """Return the substochastic transition matrix ``T`` of Section 2.2.

    ``T[x, y] = 1 / out(x)`` when ``(x, y) ∈ E`` and 0 otherwise.  Rows of
    dangling nodes are all zero (T is substochastic, not stochastic); the
    linear PageRank formulation of the paper works directly with this
    matrix, no dangling patch needed.
    """
    n = graph.num_nodes
    out_deg = graph.out_degree().astype(np.float64)
    inv = np.zeros(n, dtype=np.float64)
    nonzero = out_deg > 0
    inv[nonzero] = 1.0 / out_deg[nonzero]
    data = np.repeat(inv, graph.out_degree())
    return sparse.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )


def adjacency_matrix(graph: WebGraph) -> sparse.csr_matrix:
    """Return the 0/1 adjacency matrix ``A`` with ``A[x, y] = 1`` iff
    ``(x, y) ∈ E``."""
    n = graph.num_nodes
    data = np.ones(graph.num_edges, dtype=np.float64)
    return sparse.csr_matrix(
        (data, graph.indices.copy(), graph.indptr.copy()), shape=(n, n)
    )


def subgraph(graph: WebGraph, nodes: Sequence[int]) -> Tuple[WebGraph, np.ndarray]:
    """Return the induced subgraph on ``nodes`` and the id mapping.

    The second return value maps new ids to old ids
    (``mapping[new_id] == old_id``).  Node order follows ``nodes``;
    duplicates are rejected.
    """
    nodes_arr = np.asarray(nodes, dtype=np.int64)
    if len(np.unique(nodes_arr)) != len(nodes_arr):
        raise ValueError("duplicate node ids in subgraph selection")
    old_to_new = -np.ones(graph.num_nodes, dtype=np.int64)
    old_to_new[nodes_arr] = np.arange(len(nodes_arr))
    edges = []
    for new_u, old_u in enumerate(nodes_arr):
        for old_v in graph.out_neighbors(int(old_u)):
            new_v = old_to_new[old_v]
            if new_v >= 0:
                edges.append((new_u, int(new_v)))
    names = None
    if graph.names is not None:
        names = [graph.names[int(old)] for old in nodes_arr]
    return WebGraph.from_edges(len(nodes_arr), edges, names), nodes_arr


def remove_nodes(graph: WebGraph, nodes: Iterable[int]) -> Tuple[WebGraph, np.ndarray]:
    """Return the graph with ``nodes`` deleted, plus the id mapping.

    Used e.g. to measure the PageRank a target *would* have in the
    absence of its spam farm (the link-contribution argument around
    Figure 1).
    """
    drop = set(int(x) for x in nodes)
    keep = [x for x in range(graph.num_nodes) if x not in drop]
    return subgraph(graph, keep)


def reachable_from(graph: WebGraph, sources: Iterable[int]) -> np.ndarray:
    """Boolean mask of nodes reachable from ``sources`` by directed walks.

    Sources themselves are included (the zero-length virtual circuit of
    Section 3.2 means every node contributes to itself).
    """
    seen = np.zeros(graph.num_nodes, dtype=bool)
    queue = deque()
    for s in sources:
        s = int(s)
        if not seen[s]:
            seen[s] = True
            queue.append(s)
    while queue:
        x = queue.popleft()
        for y in graph.out_neighbors(x):
            if not seen[y]:
                seen[y] = True
                queue.append(int(y))
    return seen


def reaches(graph: WebGraph, targets: Iterable[int]) -> np.ndarray:
    """Boolean mask of nodes from which some node in ``targets`` is
    reachable (reverse reachability)."""
    return reachable_from(graph.transpose(), targets)


def degree_histogram(
    degrees: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(degree_values, counts)`` for a degree vector.

    Zero-count degrees are omitted, giving the sparse log-log-ready
    histogram used in power-law analyses (Fetterly-style baselines,
    Figure 6 analogues).
    """
    degrees = np.asarray(degrees)
    if degrees.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values.astype(np.int64), counts.astype(np.int64)


def merge_graphs(
    graphs: Sequence[WebGraph],
    cross_edges: Sequence[Tuple[int, int, int, int]] = (),
) -> Tuple[WebGraph, List[int]]:
    """Disjoint-union several graphs, with optional cross edges.

    ``cross_edges`` entries are ``(graph_a, node_a, graph_b, node_b)``
    meaning a directed edge from node ``node_a`` of ``graphs[graph_a]``
    to node ``node_b`` of ``graphs[graph_b]``.  Returns the merged graph
    and the list of id offsets of each input graph.

    This is how scenario composition glues the reputable web, spam
    farms, and isolated communities together.
    """
    offsets: List[int] = []
    total = 0
    for g in graphs:
        offsets.append(total)
        total += g.num_nodes
    edges: List[Tuple[int, int]] = []
    for g, off in zip(graphs, offsets):
        for u, v in g.edges():
            edges.append((u + off, v + off))
    for ga, na, gb, nb in cross_edges:
        if not (0 <= ga < len(graphs) and 0 <= gb < len(graphs)):
            raise IndexError("cross edge references unknown graph")
        graphs[ga]._check_node(na)
        graphs[gb]._check_node(nb)
        edges.append((na + offsets[ga], nb + offsets[gb]))
    names = None
    if all(g.names is not None for g in graphs) and graphs:
        names = [name for g in graphs for name in g.names]  # type: ignore[union-attr]
    return WebGraph.from_edges(total, edges, names), offsets


def to_networkx(graph: WebGraph):
    """Convert to a :class:`networkx.DiGraph` (test/debug convenience)."""
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_nodes))
    g.add_edges_from(graph.edges())
    return g


def from_networkx(nx_graph) -> WebGraph:
    """Build a :class:`WebGraph` from a :class:`networkx.DiGraph`.

    Node labels may be arbitrary hashables; they are mapped to dense
    ids in sorted-by-insertion order and kept as names when they are
    strings.  Self-loops are dropped per the web-graph model.
    """
    nodes = list(nx_graph.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    edges = [
        (index[u], index[v]) for u, v in nx_graph.edges() if u != v
    ]
    names = (
        [str(node) for node in nodes]
        if all(isinstance(node, str) for node in nodes) and nodes
        else None
    )
    return WebGraph.from_edges(len(nodes), edges, names)
