"""Block-partitioned out-of-core graph backend.

The paper's host graph (73.3M hosts, 979M edges — Section 4.1) does not
fit the in-memory CSR model this library grew up on.  This module
stores a graph as ``K`` contiguous node-range *shards* on disk and
loads them lazily through a bounded LRU, so million-host worlds solve
in bounded memory:

* shard ``k`` owns the node range ``[boundaries[k], boundaries[k+1])``
  and persists, in one ``.npz`` file, the local out-CSR of its sources
  (``indptr`` / ``indices``, destinations global) **and** the local
  transpose CSR of its destinations (``t_indptr`` / ``t_indices``,
  sources global, sorted ascending within each row) — the transpose
  blocks are exactly the row blocks of the PageRank operator ``Tᵀ``,
  which is what makes shard-by-shard block Jacobi
  (:mod:`repro.perf.sharded`) *bitwise identical* to the in-memory
  kernel;
* a JSON manifest records the partition, per-shard edge counts and
  per-shard edge digests.  The digest is the commutative splitmix64 sum
  of :func:`~repro.graph.webgraph.edge_digest`, so the shard digests
  **compose**: their sum (mod 2^64) is the whole-graph digest, and the
  manifest fingerprint is the same
  :func:`~repro.graph.webgraph.compose_fingerprint` string the
  in-memory graph computes — one string proves the store and the
  in-memory CSR carry the same edge set;
* shard files are written uncompressed (``np.savez``), so loading
  memory-maps the arrays straight out of the zip members instead of
  copying them through the heap; a bounded LRU
  (:class:`ShardedWebGraph` ``cache_shards=``) bounds how many shards
  are resident at once;
* :func:`sharded_from_edges` builds a store *out of core* from a
  stream of edge chunks via a three-pass external bucket sort (bucket
  by source shard → per-shard dedup/sort + transpose bucketing → per
  destination shard sort), never holding more than one shard's edges
  in memory plus one ``O(n)`` degree vector.

Failure semantics: every loader error is a typed
:class:`~repro.errors.GraphIOError` subclass —
:class:`~repro.errors.ShardMissingError`,
:class:`~repro.errors.ShardTruncatedError`,
:class:`~repro.errors.ShardDigestMismatchError`,
:class:`~repro.errors.ManifestVersionError` — raised *before* any graph
object is handed out.  A sharded store never yields a partial graph.

See ``docs/scale.md`` for the file layout, manifest schema and the
``repro-spam shard verify`` runbook.
"""

from __future__ import annotations

import json
import zipfile
import zlib
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    DeltaError,
    EmptyGraphError,
    GraphIOError,
    ManifestVersionError,
    ShardDigestMismatchError,
    ShardIntegrityError,
    ShardMissingError,
    ShardTruncatedError,
)
from .backend import GraphBackend
from .delta import DeltaApplication, GraphDelta
from .io import _write_atomic
from .webgraph import (
    WebGraph,
    _mix_edge_keys,
    compose_fingerprint,
    edge_digest,
)

__all__ = [
    "ShardedWebGraph",
    "ShardMeta",
    "sharded_from_edges",
    "partition_graph",
    "iter_edge_chunks",
    "default_boundaries",
    "verify_store",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = "repro-shard-store"
MANIFEST_VERSION = 1

#: Default bound of the resident-shard LRU.  Eight shards of a 1M-host
#: world at ~5 edges/host are ~50 MB resident — small enough for a
#: laptop, large enough that a full block-Jacobi sweep over an 8-way
#: store never evicts mid-iteration.
DEFAULT_CACHE_SHARDS = 8

_MASK64 = 0xFFFFFFFFFFFFFFFF
_ARRAY_NAMES = ("indptr", "indices", "t_indptr", "t_indices")

PathLike = Union[str, Path]


def _shard_filename(k: int) -> str:
    return f"shard_{k:05d}.npz"


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------


class ShardMeta:
    """Manifest record of one shard.

    ``digest`` is the commutative edge digest of the shard's *out*
    edges (sources in ``[start, stop)``); the per-shard digests sum
    (mod 2^64) to the whole-graph digest.
    """

    __slots__ = ("file", "start", "stop", "num_edges", "num_in_edges", "digest")

    def __init__(
        self,
        file: str,
        start: int,
        stop: int,
        num_edges: int,
        num_in_edges: int,
        digest: int,
    ) -> None:
        self.file = file
        self.start = start
        self.stop = stop
        self.num_edges = num_edges
        self.num_in_edges = num_in_edges
        self.digest = digest & _MASK64

    @property
    def width(self) -> int:
        return self.stop - self.start

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "start": self.start,
            "stop": self.stop,
            "edges": self.num_edges,
            "in_edges": self.num_in_edges,
            "digest": f"{self.digest:016x}",
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ShardMeta":
        return cls(
            str(record["file"]),
            int(record["start"]),
            int(record["stop"]),
            int(record["edges"]),
            int(record["in_edges"]),
            int(str(record["digest"]), 16),
        )

    def replace(self, **changes) -> "ShardMeta":
        fields = {
            "file": self.file,
            "start": self.start,
            "stop": self.stop,
            "num_edges": self.num_edges,
            "num_in_edges": self.num_in_edges,
            "digest": self.digest,
        }
        fields.update(changes)
        return ShardMeta(**fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardMeta([{self.start}, {self.stop}), edges={self.num_edges})"
        )


def _write_manifest(
    directory: Path,
    num_nodes: int,
    num_edges: int,
    boundaries: np.ndarray,
    metas: Sequence[ShardMeta],
) -> str:
    digest = sum(meta.digest for meta in metas) & _MASK64
    fingerprint = compose_fingerprint(num_nodes, num_edges, digest)
    payload = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "num_nodes": num_nodes,
        "num_edges": num_edges,
        "num_shards": len(metas),
        "boundaries": [int(b) for b in boundaries],
        "digest": f"{digest:016x}",
        "fingerprint": fingerprint,
        "shards": [meta.as_dict() for meta in metas],
    }
    _write_atomic(
        directory / MANIFEST_NAME,
        lambda fh: fh.write(json.dumps(payload, indent=1) + "\n"),
    )
    return fingerprint


def _read_manifest(directory: Path) -> dict:
    """Read and structurally validate a manifest; typed errors only."""
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise ShardMissingError(
            f"{directory}: no {MANIFEST_NAME} — not a shard store"
        )
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ShardIntegrityError(
            f"{path}: manifest is not valid JSON ({exc})"
        ) from exc
    if not isinstance(payload, dict) or payload.get("format") != MANIFEST_FORMAT:
        raise ShardIntegrityError(
            f"{path}: not a {MANIFEST_FORMAT} manifest"
        )
    version = payload.get("version")
    if version != MANIFEST_VERSION:
        raise ManifestVersionError(
            f"{path}: manifest version {version!r} is not supported "
            f"(this build reads version {MANIFEST_VERSION}); the store "
            "was written by an incompatible release",
            found=version,
            supported=MANIFEST_VERSION,
        )
    try:
        num_nodes = int(payload["num_nodes"])
        num_edges = int(payload["num_edges"])
        boundaries = np.asarray(payload["boundaries"], dtype=np.int64)
        metas = [ShardMeta.from_dict(rec) for rec in payload["shards"]]
        digest = int(str(payload["digest"]), 16)
        fingerprint = str(payload["fingerprint"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ShardIntegrityError(
            f"{path}: malformed manifest field ({exc})"
        ) from exc
    if num_nodes <= 0:
        raise EmptyGraphError(
            f"{path}: manifest declares {num_nodes} nodes"
        )
    if (
        len(boundaries) != len(metas) + 1
        or boundaries[0] != 0
        or boundaries[-1] != num_nodes
        or np.any(np.diff(boundaries) < 0)
    ):
        raise ShardIntegrityError(
            f"{path}: shard boundaries do not partition [0, {num_nodes})"
        )
    for k, meta in enumerate(metas):
        if (meta.start, meta.stop) != (
            int(boundaries[k]),
            int(boundaries[k + 1]),
        ):
            raise ShardIntegrityError(
                f"{path}: shard {k} range disagrees with boundaries"
            )
    if sum(meta.num_edges for meta in metas) != num_edges:
        raise ShardIntegrityError(
            f"{path}: per-shard edge counts do not sum to {num_edges}"
        )
    composed = sum(meta.digest for meta in metas) & _MASK64
    if composed != digest or compose_fingerprint(
        num_nodes, num_edges, composed
    ) != fingerprint:
        raise ShardDigestMismatchError(
            f"{path}: shard digests do not compose to the manifest "
            "fingerprint — the manifest is internally inconsistent",
            expected=fingerprint,
            actual=compose_fingerprint(num_nodes, num_edges, composed),
        )
    return {
        "num_nodes": num_nodes,
        "num_edges": num_edges,
        "boundaries": boundaries,
        "metas": metas,
        "digest": digest,
        "fingerprint": fingerprint,
    }


# ----------------------------------------------------------------------
# shard files: memory-mapped npz loading
# ----------------------------------------------------------------------


class _LoadedShard:
    """The four CSR arrays of one resident shard (possibly memmaps)."""

    __slots__ = ("indptr", "indices", "t_indptr", "t_indices")

    def __init__(self, indptr, indices, t_indptr, t_indices) -> None:
        self.indptr = indptr
        self.indices = indices
        self.t_indptr = t_indptr
        self.t_indices = t_indices

    def nbytes(self) -> int:
        return sum(
            getattr(self, name).nbytes for name in _ARRAY_NAMES
        )


def _read_npy_header(fh) -> Tuple[tuple, np.dtype]:
    version = np.lib.format.read_magic(fh)
    if version == (1, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
    elif version == (2, 0):
        shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
    else:  # pragma: no cover - future numpy format
        raise ValueError(f"unsupported npy format version {version}")
    if fortran:  # pragma: no cover - 1-D arrays are never Fortran-ordered
        raise ValueError("Fortran-ordered shard array")
    return shape, dtype


def _mmap_npz_member(path: Path, info: zipfile.ZipInfo) -> np.ndarray:
    """Memory-map one *stored* (uncompressed) member of an npz archive.

    ``np.load(..., mmap_mode=...)`` cannot map inside a zip, so this
    resolves the member's data offset from its local file header and
    maps the raw bytes directly.  Only valid for ``ZIP_STORED`` members
    (which is how :func:`np.savez` writes them).
    """
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        local = raw.read(30)
        if len(local) < 30 or local[:4] != b"PK\x03\x04":
            raise ShardTruncatedError(
                f"{path}: local header of {info.filename!r} is truncated"
            )
        name_len = int.from_bytes(local[26:28], "little")
        extra_len = int.from_bytes(local[28:30], "little")
        raw.seek(info.header_offset + 30 + name_len + extra_len)
        shape, dtype = _read_npy_header(raw)
        offset = raw.tell()
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if count == 0:
        return np.empty(shape, dtype=dtype)
    try:
        array = np.memmap(path, dtype=dtype, mode="r", offset=offset,
                          shape=shape)
    except ValueError as exc:  # mapping extends past end-of-file
        raise ShardTruncatedError(
            f"{path}: {info.filename!r} data is truncated ({exc})"
        ) from exc
    return array


def _load_shard_file(path: Path) -> _LoadedShard:
    """Load (memory-mapping where possible) the four arrays of a shard.

    Raises :class:`ShardMissingError` when the file is absent,
    :class:`ShardTruncatedError` when the archive or a member ends
    mid-stream, and :class:`ShardIntegrityError` for structural rot
    (missing arrays, wrong dtypes).
    """
    if not path.exists():
        raise ShardMissingError(f"{path}: shard file is missing")
    try:
        with zipfile.ZipFile(path) as zf:
            arrays: Dict[str, np.ndarray] = {}
            for name in _ARRAY_NAMES:
                member = name + ".npy"
                try:
                    info = zf.getinfo(member)
                except KeyError as exc:
                    raise ShardIntegrityError(
                        f"{path}: archive has no {member!r} array"
                    ) from exc
                if info.compress_type == zipfile.ZIP_STORED:
                    arrays[name] = _mmap_npz_member(path, info)
                else:  # tolerate compressed stores (full read)
                    with zf.open(info) as fh:
                        arrays[name] = np.lib.format.read_array(
                            fh, allow_pickle=False
                        )
    except (zipfile.BadZipFile, EOFError, OSError) as exc:
        if isinstance(exc, GraphIOError):  # our own typed raises
            raise
        raise ShardTruncatedError(
            f"{path}: truncated or corrupt shard archive ({exc})"
        ) from exc
    except ValueError as exc:
        raise ShardIntegrityError(
            f"{path}: malformed shard array ({exc})"
        ) from exc
    for name, array in arrays.items():
        if array.ndim != 1 or array.dtype != np.int64:
            raise ShardIntegrityError(
                f"{path}: array {name!r} must be 1-D int64, "
                f"got {array.ndim}-D {array.dtype}"
            )
    return _LoadedShard(**arrays)


def _check_shard(
    path: Path,
    shard: _LoadedShard,
    meta: ShardMeta,
    num_nodes: int,
    *,
    verify_digest: bool,
) -> None:
    """Structural + digest validation of a freshly loaded shard."""
    width = meta.width
    for label, indptr, indices in (
        ("out", shard.indptr, shard.indices),
        ("transpose", shard.t_indptr, shard.t_indices),
    ):
        if len(indptr) != width + 1 or (width >= 0 and (
            len(indptr) == 0 or indptr[0] != 0
        )):
            raise ShardIntegrityError(
                f"{path}: {label} indptr does not cover node range "
                f"[{meta.start}, {meta.stop})"
            )
        if indptr[-1] != len(indices) or np.any(np.diff(indptr) < 0):
            raise ShardIntegrityError(
                f"{path}: {label} indptr is inconsistent with its indices"
            )
        if len(indices) and (
            int(indices.min()) < 0 or int(indices.max()) >= num_nodes
        ):
            raise ShardIntegrityError(
                f"{path}: {label} endpoint out of range for n={num_nodes}"
            )
    if len(shard.indices) != meta.num_edges:
        raise ShardIntegrityError(
            f"{path}: shard holds {len(shard.indices)} edges, manifest "
            f"says {meta.num_edges}"
        )
    if len(shard.t_indices) != meta.num_in_edges:
        raise ShardIntegrityError(
            f"{path}: shard holds {len(shard.t_indices)} in-edges, "
            f"manifest says {meta.num_in_edges}"
        )
    if verify_digest:
        sources = meta.start + np.repeat(
            np.arange(width, dtype=np.int64), np.diff(shard.indptr)
        )
        actual = edge_digest(num_nodes, sources, np.asarray(shard.indices))
        if actual != meta.digest:
            raise ShardDigestMismatchError(
                f"{path}: shard digest {actual:016x} does not match the "
                f"manifest ({meta.digest:016x}) — the file was modified "
                "or corrupted after the manifest was written",
                expected=f"{meta.digest:016x}",
                actual=f"{actual:016x}",
            )


class _ShardLRU:
    """Bounded LRU of resident shards, shared by a store and all the
    delta-derived graphs layered over it."""

    __slots__ = ("maxsize", "_entries", "loads", "hits", "evictions")

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("cache_shards must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[int, _LoadedShard]" = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0

    def get(self, key: int, loader) -> _LoadedShard:
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return entry
        entry = loader()
        self.loads += 1
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
        return entry

    def __len__(self) -> int:
        return len(self._entries)


# ----------------------------------------------------------------------
# the sharded graph
# ----------------------------------------------------------------------


class ShardedWebGraph(GraphBackend):
    """A graph backed by per-shard CSR files with lazy, bounded loading.

    Construct through :meth:`open` (an existing store),
    :func:`sharded_from_edges` (out-of-core build) or
    :func:`partition_graph` (shard an in-memory graph).  Instances are
    immutable like :class:`~repro.graph.webgraph.WebGraph`;
    :meth:`apply_delta` returns a *new* graph layering copy-on-write
    shard overrides on the same on-disk store.
    """

    backend_name = "sharded"

    __slots__ = (
        "_directory",
        "_num_nodes",
        "_num_edges",
        "_boundaries",
        "_metas",
        "_fingerprint",
        "_lru",
        "_verify",
        "_overrides",
        "_out_degree",
        "delta_touched_shards",
    )

    def __init__(
        self,
        directory: Path,
        num_nodes: int,
        num_edges: int,
        boundaries: np.ndarray,
        metas: Sequence[ShardMeta],
        fingerprint: str,
        lru: _ShardLRU,
        *,
        verify: bool = True,
        overrides: Optional[Dict[int, _LoadedShard]] = None,
        out_degree: Optional[np.ndarray] = None,
        delta_touched_shards: Optional[frozenset] = None,
    ) -> None:
        self._directory = Path(directory)
        self._num_nodes = num_nodes
        self._num_edges = num_edges
        self._boundaries = np.asarray(boundaries, dtype=np.int64)
        self._metas = list(metas)
        self._fingerprint = fingerprint
        self._lru = lru
        self._verify = verify
        self._overrides = dict(overrides or {})
        self._out_degree = out_degree
        #: Shards structurally touched by the delta that produced this
        #: instance (``None`` for a base store).  The per-shard operator
        #: derivation keys off this to decide block reuse.
        self.delta_touched_shards = delta_touched_shards

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def open(
        cls,
        directory: PathLike,
        *,
        cache_shards: int = DEFAULT_CACHE_SHARDS,
        verify: bool = True,
    ) -> "ShardedWebGraph":
        """Open an existing store, validating the manifest eagerly.

        Every shard file named by the manifest must exist (missing
        files raise :class:`~repro.errors.ShardMissingError` here, not
        at first touch); shard *contents* are verified lazily on first
        load, digests included unless ``verify=False``.
        """
        directory = Path(directory)
        manifest = _read_manifest(directory)
        for meta in manifest["metas"]:
            if not (directory / meta.file).exists():
                raise ShardMissingError(
                    f"{directory / meta.file}: shard file named by the "
                    "manifest is missing"
                )
        return cls(
            directory,
            manifest["num_nodes"],
            manifest["num_edges"],
            manifest["boundaries"],
            manifest["metas"],
            manifest["fingerprint"],
            _ShardLRU(cache_shards),
            verify=verify,
        )

    # ------------------------------------------------------------------
    # backend surface
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def directory(self) -> Path:
        """The on-disk store this graph reads its base shards from."""
        return self._directory

    @property
    def num_shards(self) -> int:
        return len(self._metas)

    @property
    def boundaries(self) -> np.ndarray:
        """Shard boundaries (length ``num_shards + 1``, read-only)."""
        return self._boundaries

    @property
    def partition_key(self) -> str:
        """Short token identifying the partition geometry.

        The structural fingerprint identifies the *edge set* only — two
        stores sharding the same graph 2- and 32-ways share it.  Cache
        keys of per-shard operator blocks append this token so distinct
        partitions never collide.
        """
        crc = zlib.crc32(self._boundaries.tobytes()) & 0xFFFFFFFF
        return f"{self.num_shards}.{crc:08x}"

    @property
    def names(self) -> None:
        """Sharded stores carry structure only; no host names."""
        return None

    def name_of(self, node: int) -> str:
        return f"node{node}"

    def shard_meta(self, k: int) -> ShardMeta:
        """Manifest record of shard ``k`` (as seen by *this* graph —
        delta-derived instances carry updated digests/counts)."""
        return self._metas[k]

    def shard_range(self, k: int) -> Tuple[int, int]:
        """Global node range ``[start, stop)`` owned by shard ``k``."""
        return int(self._boundaries[k]), int(self._boundaries[k + 1])

    def shard(self, k: int) -> _LoadedShard:
        """The four CSR arrays of shard ``k`` (loaded through the LRU;
        copy-on-write overrides of a delta-derived graph win)."""
        override = self._overrides.get(k)
        if override is not None:
            return override
        return self._lru.get(k, lambda: self._load_base_shard(k))

    def _load_base_shard(self, k: int) -> _LoadedShard:
        # always validate against the *base* manifest: overrides never
        # reach this path, so the on-disk metas are the right oracle
        # even when self is delta-derived
        meta = self._base_meta(k)
        path = self._directory / meta.file
        shard = _load_shard_file(path)
        _check_shard(
            path, shard, meta, self._num_nodes, verify_digest=self._verify
        )
        return shard

    def _base_meta(self, k: int) -> ShardMeta:
        # derived instances rewrite self._metas for overridden shards;
        # the on-disk file still matches the original manifest record,
        # which the shared LRU re-reads from disk
        if k in self._overrides:  # pragma: no cover - defensive
            raise ShardIntegrityError(
                f"shard {k} is overridden; no base file to load"
            )
        return self._metas[k]

    def out_degree(self, node: Optional[int] = None):
        """Out-degree of ``node``, or the full vector (built on first
        use by streaming every shard once through the LRU)."""
        if self._out_degree is None:
            degrees = np.empty(self._num_nodes, dtype=np.int64)
            for k in range(self.num_shards):
                a, b = self.shard_range(k)
                if b > a:
                    degrees[a:b] = np.diff(self.shard(k).indptr)
            degrees.setflags(write=False)
            self._out_degree = degrees
        if node is None:
            return self._out_degree
        return int(self._out_degree[node])

    def dangling_mask(self) -> np.ndarray:
        return self.out_degree() == 0

    def structural_fingerprint(self) -> str:
        return self._fingerprint

    def cache_info(self) -> Dict[str, int]:
        """Counters of the resident-shard LRU."""
        return {
            "loads": self._lru.loads,
            "hits": self._lru.hits,
            "evictions": self._lru.evictions,
            "resident": len(self._lru),
            "maxsize": self._lru.maxsize,
        }

    # ------------------------------------------------------------------
    # materialization (tests, small graphs)
    # ------------------------------------------------------------------

    def to_webgraph(self) -> WebGraph:
        """Assemble the full in-memory CSR (for verification; do not
        call on stores that motivated sharding in the first place).

        The fingerprint is *not* stamped — the returned graph recomputes
        it from scratch, which is what makes the round-trip equality
        ``assembled.structural_fingerprint() == store fingerprint`` a
        real check instead of a tautology.
        """
        n = self._num_nodes
        indptr = np.zeros(n + 1, dtype=np.int64)
        chunks: List[np.ndarray] = []
        for k in range(self.num_shards):
            a, b = self.shard_range(k)
            if b <= a:
                continue
            shard = self.shard(k)
            indptr[a + 1 : b + 1] = indptr[a] + shard.indptr[1:]
            chunks.append(np.asarray(shard.indices))
        indices = (
            np.concatenate(chunks) if chunks
            else np.empty(0, dtype=np.int64)
        )
        return WebGraph(indptr, indices, validate=False)

    def iter_shard_edges(self, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Global ``(sources, destinations)`` of shard ``k``'s out-edges."""
        a, b = self.shard_range(k)
        shard = self.shard(k)
        sources = a + np.repeat(
            np.arange(b - a, dtype=np.int64), np.diff(shard.indptr)
        )
        return sources, np.asarray(shard.indices)

    # ------------------------------------------------------------------
    # deltas: copy-on-write shard overlays
    # ------------------------------------------------------------------

    def shard_of(self, nodes: np.ndarray) -> np.ndarray:
        """Owning shard index of each node id."""
        return (
            np.searchsorted(self._boundaries, nodes, side="right") - 1
        ).astype(np.int64)

    def apply_delta(self, delta: GraphDelta) -> DeltaApplication:
        """Apply an edge delta, splicing only the owning shards.

        Mirrors :meth:`GraphDelta.apply` semantics exactly — the same
        :class:`~repro.errors.DeltaError` conditions, the same O(|δ|)
        derived fingerprint (bit-identical to the in-memory path) — but
        touches only the shards owning a changed edge's source (out-CSR
        splice) or destination (transpose splice).  The base graph and
        the on-disk store are untouched; the returned graph carries
        copy-on-write overrides for the touched shards.
        """
        n = self._num_nodes
        ins = delta.insertions
        dels = delta.deletions
        for what, edges in (("insertion", ins), ("deletion", dels)):
            if len(edges) and edges.max() >= n:
                raise DeltaError(f"{what} endpoint out of range for n={n}")

        overrides = dict(self._overrides)
        metas = list(self._metas)
        touched: set = set()

        def _current(k: int) -> _LoadedShard:
            got = overrides.get(k)
            return got if got is not None else self.shard(k)

        # --- out-CSR splice, grouped by owning source shard ----------
        ins_shards = self.shard_of(ins[:, 0]) if len(ins) else None
        del_shards = self.shard_of(dels[:, 0]) if len(dels) else None
        out_touched = set()
        if ins_shards is not None:
            out_touched.update(int(k) for k in np.unique(ins_shards))
        if del_shards is not None:
            out_touched.update(int(k) for k in np.unique(del_shards))
        for k in sorted(out_touched):
            a, b = self.shard_range(k)
            shard = _current(k)
            local_src = np.repeat(
                np.arange(b - a, dtype=np.int64), np.diff(shard.indptr)
            )
            keys = (local_src + a) * n + np.asarray(shard.indices)
            digest = metas[k].digest
            k_dels = (
                dels[del_shards == k] if del_shards is not None
                else np.empty((0, 2), dtype=np.int64)
            )
            k_ins = (
                ins[ins_shards == k] if ins_shards is not None
                else np.empty((0, 2), dtype=np.int64)
            )
            if len(k_dels):
                del_keys = k_dels[:, 0] * n + k_dels[:, 1]
                pos = np.searchsorted(keys, del_keys)
                if len(keys):
                    present = (pos < len(keys)) & (
                        keys[np.minimum(pos, len(keys) - 1)] == del_keys
                    )
                else:
                    present = np.zeros(len(del_keys), dtype=bool)
                if not present.all():
                    bad = k_dels[~present][0]
                    raise DeltaError(
                        f"cannot delete edge ({bad[0]}, {bad[1]}): "
                        "not present"
                    )
                keep = np.ones(len(keys), dtype=bool)
                keep[pos] = False
                keys = keys[keep]
                digest = (
                    digest
                    - int(
                        _mix_edge_keys(
                            del_keys.astype(np.uint64)
                        ).sum(dtype=np.uint64)
                    )
                ) & _MASK64
            if len(k_ins):
                ins_keys = k_ins[:, 0] * n + k_ins[:, 1]
                pos = np.searchsorted(keys, ins_keys)
                if len(keys):
                    exists = (pos < len(keys)) & (
                        keys[np.minimum(pos, len(keys) - 1)] == ins_keys
                    )
                    if exists.any():
                        bad = k_ins[exists][0]
                        raise DeltaError(
                            f"cannot insert edge ({bad[0]}, {bad[1]}): "
                            "already present"
                        )
                keys = np.insert(keys, pos, ins_keys)
                digest = (
                    digest
                    + int(
                        _mix_edge_keys(
                            ins_keys.astype(np.uint64)
                        ).sum(dtype=np.uint64)
                    )
                ) & _MASK64
            new_local = keys // n - a
            new_indptr = np.zeros(b - a + 1, dtype=np.int64)
            new_indptr[1:] = np.cumsum(
                np.bincount(new_local, minlength=b - a)
            )
            overrides[k] = _LoadedShard(
                new_indptr, keys % n, shard.t_indptr, shard.t_indices
            )
            metas[k] = metas[k].replace(
                num_edges=len(keys), digest=digest
            )
            touched.add(k)

        # --- transpose splice, grouped by owning destination shard ---
        # existence was fully validated by the out pass (every edge has
        # exactly one owning source shard), so this pass only splices
        ins_t = self.shard_of(ins[:, 1]) if len(ins) else None
        del_t = self.shard_of(dels[:, 1]) if len(dels) else None
        t_touched = set()
        if ins_t is not None:
            t_touched.update(int(k) for k in np.unique(ins_t))
        if del_t is not None:
            t_touched.update(int(k) for k in np.unique(del_t))
        for k in sorted(t_touched):
            a, b = self.shard_range(k)
            shard = overrides.get(k) or self.shard(k)
            local_dst = np.repeat(
                np.arange(b - a, dtype=np.int64), np.diff(shard.t_indptr)
            )
            # (destination, source) keys are strictly increasing over
            # the transpose CSR, mirroring the out-CSR's (src, dst) keys
            keys = (local_dst + a) * n + np.asarray(shard.t_indices)
            k_dels = (
                dels[del_t == k] if del_t is not None
                else np.empty((0, 2), dtype=np.int64)
            )
            k_ins = (
                ins[ins_t == k] if ins_t is not None
                else np.empty((0, 2), dtype=np.int64)
            )
            if len(k_dels):
                del_keys = k_dels[:, 1] * n + k_dels[:, 0]
                del_keys.sort()
                pos = np.searchsorted(keys, del_keys)
                keep = np.ones(len(keys), dtype=bool)
                keep[pos] = False
                keys = keys[keep]
            if len(k_ins):
                ins_keys = k_ins[:, 1] * n + k_ins[:, 0]
                ins_keys.sort()
                pos = np.searchsorted(keys, ins_keys)
                keys = np.insert(keys, pos, ins_keys)
            new_local = keys // n - a
            new_t_indptr = np.zeros(b - a + 1, dtype=np.int64)
            new_t_indptr[1:] = np.cumsum(
                np.bincount(new_local, minlength=b - a)
            )
            overrides[k] = _LoadedShard(
                shard.indptr, shard.indices, new_t_indptr, keys % n
            )
            metas[k] = metas[k].replace(num_in_edges=len(keys))
            touched.add(k)

        out_deg = np.array(self.out_degree(), dtype=np.int64)
        if len(ins):
            np.add.at(out_deg, ins[:, 0], 1)
        if len(dels):
            np.subtract.at(out_deg, dels[:, 0], 1)
        out_deg.setflags(write=False)

        after = ShardedWebGraph(
            self._directory,
            n,
            self._num_edges + len(ins) - len(dels),
            self._boundaries,
            metas,
            delta.derive_fingerprint(self),
            self._lru,
            verify=self._verify,
            overrides=overrides,
            out_degree=out_deg,
            delta_touched_shards=frozenset(touched),
        )
        return DeltaApplication(self, after, delta)

    # ------------------------------------------------------------------
    # dunder
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedWebGraph(nodes={self._num_nodes}, "
            f"edges={self._num_edges}, shards={self.num_shards}, "
            f"dir={str(self._directory)!r})"
        )


# ----------------------------------------------------------------------
# construction: out-of-core external bucket sort
# ----------------------------------------------------------------------


def default_boundaries(num_nodes: int, num_shards: int) -> np.ndarray:
    """Evenly split ``[0, num_nodes)`` into ``num_shards`` ranges."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return np.array(
        [(i * num_nodes) // num_shards for i in range(num_shards + 1)],
        dtype=np.int64,
    )


def _normalize_boundaries(
    num_nodes: int,
    num_shards: Optional[int],
    boundaries: Optional[Sequence[int]],
) -> np.ndarray:
    if boundaries is not None:
        if num_shards is not None and num_shards != len(boundaries) - 1:
            raise ValueError(
                f"num_shards={num_shards} disagrees with "
                f"{len(boundaries) - 1} boundary ranges"
            )
        array = np.asarray(boundaries, dtype=np.int64)
        if (
            len(array) < 2
            or array[0] != 0
            or array[-1] != num_nodes
            or np.any(np.diff(array) < 0)
        ):
            raise ValueError(
                "boundaries must be a non-decreasing partition "
                f"[0, ..., {num_nodes}]"
            )
        return array
    return default_boundaries(num_nodes, num_shards or 1)


def iter_edge_chunks(
    graph: WebGraph, chunk_edges: int = 1 << 20
) -> Iterator[np.ndarray]:
    """Stream a graph's edges as ``(m, 2)`` arrays of bounded size."""
    if chunk_edges < 1:
        raise ValueError("chunk_edges must be >= 1")
    indptr = graph.indptr
    indices = graph.indices
    total = graph.num_edges
    for start in range(0, total, chunk_edges):
        stop = min(start + chunk_edges, total)
        positions = np.arange(start, stop, dtype=np.int64)
        sources = np.searchsorted(indptr, positions, side="right") - 1
        yield np.column_stack((sources, indices[start:stop]))


def sharded_from_edges(
    num_nodes: int,
    edge_chunks: Iterable[np.ndarray],
    directory: PathLike,
    *,
    num_shards: Optional[int] = None,
    boundaries: Optional[Sequence[int]] = None,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
) -> ShardedWebGraph:
    """Build a shard store out of core from a stream of edge chunks.

    ``edge_chunks`` yields ``(m, 2)`` integer arrays of ``(source,
    destination)`` pairs, in any order, duplicates and self-links
    allowed (collapsed/dropped exactly like
    :meth:`WebGraph.from_edges`).  Peak memory is one shard's edges
    plus one ``O(n)`` degree vector — the dense edge list is never
    materialized.

    Three passes:

    1. append each edge, as raw int64 pairs, to the bucket file of its
       *source* shard;
    2. per source shard: dedup + sort by ``(src, dst)``, emit the local
       out-CSR and the shard digest, and re-bucket the surviving edges
       by *destination* shard;
    3. per destination shard: sort by ``(dst, src)`` into the local
       transpose CSR and write the final ``.npz``; the manifest goes
       last (atomically), so a crashed build never looks like a store.
    """
    if num_nodes < 0:
        raise ValueError("num_nodes must be non-negative")
    if num_nodes == 0:
        raise EmptyGraphError(
            "cannot build a graph with zero nodes: the uniform jump "
            "vector 1/n is undefined for n=0"
        )
    bounds = _normalize_boundaries(num_nodes, num_shards, boundaries)
    num_shards = len(bounds) - 1
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tmp_dir = directory / "tmp-build"
    tmp_dir.mkdir(exist_ok=True)
    n = num_nodes

    def _bucket_path(prefix: str, k: int) -> Path:
        return tmp_dir / f"{prefix}_{k:05d}.bin"

    def _append(prefix: str, k: int, pairs: np.ndarray) -> None:
        with open(_bucket_path(prefix, k), "ab") as fh:
            fh.write(np.ascontiguousarray(pairs, dtype=np.int64).tobytes())

    def _read_bucket(prefix: str, k: int) -> np.ndarray:
        path = _bucket_path(prefix, k)
        if not path.exists():
            return np.empty((0, 2), dtype=np.int64)
        flat = np.fromfile(path, dtype=np.int64)
        return flat.reshape(-1, 2)

    try:
        # --- pass 1: bucket by source shard -------------------------
        for chunk in edge_chunks:
            arr = np.asarray(chunk, dtype=np.int64)
            if arr.size == 0:
                continue
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError(
                    "edge chunks must be (source, destination) pairs"
                )
            if arr.min() < 0 or arr.max() >= n:
                raise ValueError(f"edge endpoint out of range for n={n}")
            arr = arr[arr[:, 0] != arr[:, 1]]
            if not len(arr):
                continue
            shard_of = np.searchsorted(bounds, arr[:, 0], side="right") - 1
            for k in np.unique(shard_of):
                _append("src", int(k), arr[shard_of == k])

        # --- pass 2: per source shard, dedup + out-CSR + re-bucket --
        out_degree = np.zeros(n, dtype=np.int64)
        digests: List[int] = []
        edge_counts: List[int] = []
        for k in range(num_shards):
            a, b = int(bounds[k]), int(bounds[k + 1])
            pairs = _read_bucket("src", k)
            if len(pairs):
                keys = np.unique(pairs[:, 0] * n + pairs[:, 1])
                srcs = keys // n
                dsts = keys % n
            else:
                srcs = np.empty(0, dtype=np.int64)
                dsts = np.empty(0, dtype=np.int64)
            indptr = np.zeros(b - a + 1, dtype=np.int64)
            if b > a:
                indptr[1:] = np.cumsum(
                    np.bincount(srcs - a, minlength=b - a)
                )
                out_degree[a:b] = np.diff(indptr)
            digests.append(edge_digest(n, srcs, dsts))
            edge_counts.append(len(dsts))
            np.savez(_bucket_path("out", k).with_suffix(".npz"),
                     indptr=indptr, indices=dsts)
            if len(srcs):
                dst_shard = np.searchsorted(bounds, dsts, side="right") - 1
                for j in np.unique(dst_shard):
                    sel = dst_shard == j
                    _append(
                        "dst", int(j), np.column_stack((srcs[sel], dsts[sel]))
                    )
            _bucket_path("src", k).unlink(missing_ok=True)

        # --- pass 3: per destination shard, transpose CSR + final npz
        metas: List[ShardMeta] = []
        for k in range(num_shards):
            a, b = int(bounds[k]), int(bounds[k + 1])
            pairs = _read_bucket("dst", k)
            if len(pairs):
                # (dst, src) keys give destination-major, source-minor
                # order — the within-row ascending-source order the
                # in-memory transpose produces
                tkeys = pairs[:, 1] * n + pairs[:, 0]
                order = np.argsort(tkeys, kind="stable")
                t_srcs = pairs[order, 0]
                t_dsts = pairs[order, 1]
            else:
                t_srcs = np.empty(0, dtype=np.int64)
                t_dsts = np.empty(0, dtype=np.int64)
            t_indptr = np.zeros(b - a + 1, dtype=np.int64)
            if b > a:
                t_indptr[1:] = np.cumsum(
                    np.bincount(t_dsts - a, minlength=b - a)
                )
            with np.load(
                _bucket_path("out", k).with_suffix(".npz")
            ) as stored:
                out_indptr = stored["indptr"]
                out_indices = stored["indices"]
            arrays = {
                "indptr": out_indptr,
                "indices": out_indices,
                "t_indptr": t_indptr,
                "t_indices": t_srcs,
            }
            _write_atomic(
                directory / _shard_filename(k),
                lambda fh, arrays=arrays: np.savez(fh, **arrays),
                binary=True,
            )
            metas.append(
                ShardMeta(
                    _shard_filename(k), a, b,
                    edge_counts[k], len(t_srcs), digests[k],
                )
            )
            _bucket_path("dst", k).unlink(missing_ok=True)
            _bucket_path("out", k).with_suffix(".npz").unlink(missing_ok=True)

        total_edges = int(sum(edge_counts))
        _write_manifest(directory, n, total_edges, bounds, metas)
    finally:
        for leftover in tmp_dir.glob("*"):
            leftover.unlink(missing_ok=True)
        try:
            tmp_dir.rmdir()
        except OSError:  # pragma: no cover - leftover foreign files
            pass

    return ShardedWebGraph.open(directory, cache_shards=cache_shards)


def partition_graph(
    graph: WebGraph,
    directory: PathLike,
    *,
    num_shards: Optional[int] = None,
    boundaries: Optional[Sequence[int]] = None,
    chunk_edges: int = 1 << 20,
    cache_shards: int = DEFAULT_CACHE_SHARDS,
) -> ShardedWebGraph:
    """Shard an in-memory graph into ``directory``.

    Streams the CSR through :func:`sharded_from_edges`, so the write
    path is the same code the out-of-core builder uses; the resulting
    store's fingerprint equals ``graph.structural_fingerprint()``.
    """
    return sharded_from_edges(
        graph.num_nodes,
        iter_edge_chunks(graph, chunk_edges),
        directory,
        num_shards=num_shards,
        boundaries=boundaries,
        cache_shards=cache_shards,
    )


# ----------------------------------------------------------------------
# verification
# ----------------------------------------------------------------------


def verify_store(directory: PathLike, *, deep: bool = False) -> dict:
    """Check a shard store end to end; collect problems, do not raise.

    Shallow mode re-reads every shard, re-checks its structure and
    digest, and re-composes the manifest fingerprint.  ``deep=True``
    additionally cross-checks the transpose arrays against the out
    arrays: the transpose edge multiset must re-compose to the same
    digest, and per-node in-degrees implied by the out-CSRs must equal
    the transpose row widths.

    Returns a report dict: ``{"ok": bool, "problems": [str, ...],
    "fingerprint": str | None, "shards": [per-shard dicts]}``.
    """
    directory = Path(directory)
    report: dict = {
        "directory": str(directory),
        "ok": True,
        "problems": [],
        "fingerprint": None,
        "num_nodes": None,
        "num_edges": None,
        "shards": [],
        "deep": deep,
    }
    try:
        manifest = _read_manifest(directory)
    except Exception as exc:  # typed GraphIOError family
        report["ok"] = False
        report["problems"].append(str(exc))
        return report
    n = manifest["num_nodes"]
    report["num_nodes"] = n
    report["num_edges"] = manifest["num_edges"]
    report["fingerprint"] = manifest["fingerprint"]
    total_digest = 0
    total_edges = 0
    t_digest = 0
    in_counts = np.zeros(n, dtype=np.int64) if deep else None
    loaded: List[Optional[_LoadedShard]] = []
    for k, meta in enumerate(manifest["metas"]):
        path = directory / meta.file
        entry = {
            "shard": k,
            "file": meta.file,
            "range": [meta.start, meta.stop],
            "edges": meta.num_edges,
            "ok": True,
            "error": None,
        }
        try:
            shard = _load_shard_file(path)
            _check_shard(path, shard, meta, n, verify_digest=True)
        except Exception as exc:  # typed GraphIOError family
            entry["ok"] = False
            entry["error"] = str(exc)
            report["ok"] = False
            report["problems"].append(f"shard {k}: {exc}")
            loaded.append(None)
            report["shards"].append(entry)
            continue
        total_digest = (total_digest + meta.digest) & _MASK64
        total_edges += meta.num_edges
        if deep:
            in_counts += np.bincount(
                np.asarray(shard.indices), minlength=n
            )
            t_dsts = meta.start + np.repeat(
                np.arange(meta.width, dtype=np.int64),
                np.diff(shard.t_indptr),
            )
            t_digest = (
                t_digest
                + edge_digest(n, np.asarray(shard.t_indices), t_dsts)
            ) & _MASK64
        loaded.append(shard)
        report["shards"].append(entry)
    if report["ok"]:
        composed = compose_fingerprint(n, total_edges, total_digest)
        if composed != manifest["fingerprint"]:
            report["ok"] = False
            report["problems"].append(
                f"recomposed fingerprint {composed} != manifest "
                f"{manifest['fingerprint']}"
            )
    if deep and report["ok"]:
        if t_digest != total_digest:
            report["ok"] = False
            report["problems"].append(
                "transpose edge multiset does not match the out-edge "
                f"multiset (digest {t_digest:016x} != {total_digest:016x})"
            )
        for k, (meta, shard) in enumerate(zip(manifest["metas"], loaded)):
            if shard is None or meta.width == 0:
                continue
            widths = np.diff(shard.t_indptr)
            expected = in_counts[meta.start : meta.stop]
            if not np.array_equal(widths, expected):
                report["ok"] = False
                report["problems"].append(
                    f"shard {k}: transpose row widths disagree with "
                    "in-degrees implied by the out-CSRs"
                )
    return report
