"""Directed web-graph model (Section 2.1 of the paper).

The paper abstracts the web as a directed graph ``G = (V, E)`` whose nodes
may be pages, hosts, or sites.  Links are unweighted and self-links are
disallowed.  This module provides :class:`WebGraph`, an immutable,
CSR-backed directed graph tuned for the linear-algebra workloads of
PageRank-style computations:

* out-adjacency is stored in compressed sparse row (CSR) form
  (``indptr`` / ``indices`` arrays), so iterating the out-neighbours of a
  node and building the transition matrix are both O(1)-ish per edge;
* the in-adjacency (transpose) is computed lazily and cached, because
  mass estimation needs both directions;
* degree vectors, the dangling-node mask and isolation statistics are
  exposed directly, matching the bookkeeping of Section 4.1.

Graphs are constructed through :class:`repro.graph.builder.GraphBuilder`
or the convenience constructors below; the raw constructor validates its
inputs so that an invalid CSR can never circulate.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EmptyGraphError

__all__ = ["WebGraph", "GraphStats"]


# Constants of the splitmix64 finalizer — a cheap, well-mixed 64-bit hash.
_MIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_M2 = np.uint64(0x94D049BB133111EB)


def _mix_edge_keys(keys: np.ndarray) -> np.ndarray:
    """splitmix64-finalize an array of uint64 edge keys (wraparound)."""
    x = keys.astype(np.uint64, copy=True)
    x += _MIX_GAMMA
    x ^= x >> np.uint64(30)
    x *= _MIX_M1
    x ^= x >> np.uint64(27)
    x *= _MIX_M2
    x ^= x >> np.uint64(31)
    return x


def edge_digest(num_nodes: int, sources: np.ndarray, dests: np.ndarray) -> int:
    """Commutative digest of an edge set: sum of per-edge mixes mod 2^64.

    Because the per-edge hashes are *summed*, the digest of a mutated
    graph is derivable in O(|delta|) from the parent digest (add the
    mixes of inserted edges, subtract those of deleted edges) and is
    bit-identical to recomputing from scratch.
    """
    if len(sources) == 0:
        return 0
    keys = sources.astype(np.uint64) * np.uint64(num_nodes) + dests.astype(
        np.uint64
    )
    return int(_mix_edge_keys(keys).sum(dtype=np.uint64))


def compose_fingerprint(num_nodes: int, num_edges: int, digest: int) -> str:
    """Render the canonical structural-fingerprint string."""
    return f"g:n={num_nodes};e={num_edges};h={digest & 0xFFFFFFFFFFFFFFFF:016x}"


class GraphStats:
    """Aggregate statistics of a :class:`WebGraph`.

    Mirrors the data-set description of Section 4.1, which reports the
    number of hosts, edges, and the fractions of hosts with no inlinks,
    no outlinks, and no links at all (isolated).
    """

    __slots__ = (
        "num_nodes",
        "num_edges",
        "num_no_inlinks",
        "num_no_outlinks",
        "num_isolated",
        "max_outdegree",
        "max_indegree",
        "mean_outdegree",
    )

    def __init__(
        self,
        num_nodes: int,
        num_edges: int,
        num_no_inlinks: int,
        num_no_outlinks: int,
        num_isolated: int,
        max_outdegree: int,
        max_indegree: int,
        mean_outdegree: float,
    ) -> None:
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.num_no_inlinks = num_no_inlinks
        self.num_no_outlinks = num_no_outlinks
        self.num_isolated = num_isolated
        self.max_outdegree = max_outdegree
        self.max_indegree = max_indegree
        self.mean_outdegree = mean_outdegree

    @property
    def frac_no_inlinks(self) -> float:
        """Fraction of nodes without inlinks (paper: 35% of hosts)."""
        return self.num_no_inlinks / self.num_nodes if self.num_nodes else 0.0

    @property
    def frac_no_outlinks(self) -> float:
        """Fraction of dangling nodes (paper: 66.4% of hosts)."""
        return self.num_no_outlinks / self.num_nodes if self.num_nodes else 0.0

    @property
    def frac_isolated(self) -> float:
        """Fraction of completely isolated nodes (paper: 25.8%)."""
        return self.num_isolated / self.num_nodes if self.num_nodes else 0.0

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        return {
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "num_no_inlinks": self.num_no_inlinks,
            "num_no_outlinks": self.num_no_outlinks,
            "num_isolated": self.num_isolated,
            "frac_no_inlinks": self.frac_no_inlinks,
            "frac_no_outlinks": self.frac_no_outlinks,
            "frac_isolated": self.frac_isolated,
            "max_outdegree": self.max_outdegree,
            "max_indegree": self.max_indegree,
            "mean_outdegree": self.mean_outdegree,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GraphStats(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"no_in={self.frac_no_inlinks:.1%}, "
            f"no_out={self.frac_no_outlinks:.1%}, "
            f"isolated={self.frac_isolated:.1%})"
        )


class WebGraph:
    """Immutable directed graph in CSR (out-adjacency) form.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``n + 1``; the out-neighbours of node
        ``x`` are ``indices[indptr[x]:indptr[x + 1]]``.
    indices:
        ``int64`` array of destination node ids, sorted within each row.
    names:
        Optional sequence of node names (host names at host granularity).

    Notes
    -----
    Self-links are rejected (the paper disallows them: the proof of
    Lemma 2 relies on a zero diagonal) and duplicate edges within a row
    are rejected as well, because the model uses unweighted links.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_names",
        "_out_degree",
        "_in_degree",
        "_t_indptr",
        "_t_indices",
        "_stats",
        "_fingerprint",
    )

    #: Number of from-scratch fingerprint computations (cache-hit probe
    #: for tests; derived fingerprints stamped by deltas do not count).
    fingerprint_computations = 0

    #: Backend identifier (see :mod:`repro.graph.backend`).
    backend_name = "memory"

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        names: Optional[Sequence[str]] = None,
        *,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if validate:
            self._validate(indptr, indices)
        self._indptr = indptr
        self._indptr.setflags(write=False)
        self._indices = indices
        self._indices.setflags(write=False)
        if names is not None and len(names) != len(indptr) - 1:
            raise ValueError(
                f"names has {len(names)} entries for {len(indptr) - 1} nodes"
            )
        self._names: Optional[Tuple[str, ...]] = (
            tuple(names) if names is not None else None
        )
        self._out_degree = np.diff(indptr)
        self._out_degree.setflags(write=False)
        self._in_degree: Optional[np.ndarray] = None
        self._t_indptr: Optional[np.ndarray] = None
        self._t_indices: Optional[np.ndarray] = None
        self._stats: Optional[GraphStats] = None
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _validate(indptr: np.ndarray, indices: np.ndarray) -> None:
        if indptr.ndim != 1 or len(indptr) < 1:
            raise ValueError("indptr must be a 1-D array of length >= 1")
        if indptr[0] != 0:
            raise ValueError("indptr must start at 0")
        if indptr[-1] != len(indices):
            raise ValueError(
                f"indptr[-1] ({indptr[-1]}) != number of edges ({len(indices)})"
            )
        if np.any(np.diff(indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise ValueError("edge destination out of range")
        # per-row checks: sorted, no duplicates, no self-links
        for x in range(n):
            row = indices[indptr[x] : indptr[x + 1]]
            if len(row) == 0:
                continue
            if np.any(np.diff(row) <= 0):
                raise ValueError(
                    f"out-neighbours of node {x} must be strictly increasing "
                    "(sorted, no duplicate edges)"
                )
            if np.any(row == x):
                raise ValueError(f"self-link on node {x} is not allowed")

    @classmethod
    def from_edges(
        cls,
        num_nodes: int,
        edges: Iterable[Tuple[int, int]],
        names: Optional[Sequence[str]] = None,
    ) -> "WebGraph":
        """Build a graph from ``(source, destination)`` pairs.

        Duplicate edges are collapsed (the paper collapses all page-level
        hyperlinks between two hosts into a single host-level edge) and
        self-links are dropped.
        """
        if num_nodes < 0:
            raise ValueError("num_nodes must be non-negative")
        if num_nodes == 0:
            raise EmptyGraphError(
                "cannot build a graph with zero nodes: the uniform jump "
                "vector 1/n is undefined for n=0"
            )
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges, dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be (source, destination) pairs")
        if edge_array.size and (
            edge_array.min() < 0 or edge_array.max() >= num_nodes
        ):
            raise ValueError(f"edge endpoint out of range for n={num_nodes}")
        # drop self-links, then dedup by composite key (collapse duplicates)
        keep = edge_array[:, 0] != edge_array[:, 1]
        edge_array = edge_array[keep]
        if len(edge_array):
            key = edge_array[:, 0] * num_nodes + edge_array[:, 1]
            key = np.unique(key)
            sources = key // num_nodes
            dests = key % num_nodes
        else:
            sources = np.empty(0, dtype=np.int64)
            dests = np.empty(0, dtype=np.int64)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(sources, minlength=num_nodes))
        return cls(indptr, dests, names, validate=False)

    @classmethod
    def empty(cls, num_nodes: int) -> "WebGraph":
        """Return a graph with ``num_nodes`` nodes and no edges."""
        return cls.from_edges(num_nodes, [])

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n = |V|``."""
        return len(self._indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return len(self._indices)

    @property
    def indptr(self) -> np.ndarray:
        """Read-only CSR row-pointer array (length ``n + 1``)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Read-only CSR column-index array (length ``|E|``)."""
        return self._indices

    @property
    def names(self) -> Optional[Tuple[str, ...]]:
        """Node names if attached at construction time."""
        return self._names

    def name_of(self, node: int) -> str:
        """Return the name of ``node``, or ``"node<i>"`` if unnamed."""
        if self._names is not None:
            return self._names[node]
        return f"node{node}"

    def __len__(self) -> int:
        return self.num_nodes

    def __contains__(self, node: object) -> bool:
        return isinstance(node, (int, np.integer)) and 0 <= node < self.num_nodes

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------

    def out_neighbors(self, node: int) -> np.ndarray:
        """Out-neighbours of ``node`` (nodes it points to)."""
        self._check_node(node)
        return self._indices[self._indptr[node] : self._indptr[node + 1]]

    def in_neighbors(self, node: int) -> np.ndarray:
        """In-neighbours of ``node`` (nodes pointing to it)."""
        self._check_node(node)
        t_indptr, t_indices = self._transpose_arrays()
        return t_indices[t_indptr[node] : t_indptr[node + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Return ``True`` when the directed edge ``(u, v)`` exists."""
        self._check_node(u)
        self._check_node(v)
        row = self.out_neighbors(u)
        pos = np.searchsorted(row, v)
        return pos < len(row) and row[pos] == v

    def edges(self) -> Iterator[Tuple[int, int]]:
        """Iterate over all directed edges as ``(source, destination)``."""
        for u in range(self.num_nodes):
            for v in self.out_neighbors(u):
                yield u, int(v)

    def out_degree(self, node: Optional[int] = None):
        """Out-degree of ``node``, or the full out-degree vector."""
        if node is None:
            return self._out_degree
        self._check_node(node)
        return int(self._out_degree[node])

    def in_degree(self, node: Optional[int] = None):
        """In-degree of ``node``, or the full in-degree vector."""
        if self._in_degree is None:
            counts = np.bincount(self._indices, minlength=self.num_nodes)
            self._in_degree = counts.astype(np.int64)
            self._in_degree.setflags(write=False)
        if node is None:
            return self._in_degree
        self._check_node(node)
        return int(self._in_degree[node])

    def dangling_mask(self) -> np.ndarray:
        """Boolean mask of dangling nodes (out-degree zero; Section 2.2)."""
        return self._out_degree == 0

    def isolated_mask(self) -> np.ndarray:
        """Boolean mask of nodes with neither inlinks nor outlinks."""
        return (self._out_degree == 0) & (self.in_degree() == 0)

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise IndexError(
                f"node {node} out of range for graph with {self.num_nodes} nodes"
            )

    # ------------------------------------------------------------------
    # derived structures
    # ------------------------------------------------------------------

    def _transpose_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if self._t_indptr is None:
            n = self.num_nodes
            t_indptr = np.zeros(n + 1, dtype=np.int64)
            counts = np.bincount(self._indices, minlength=n)
            t_indptr[1:] = np.cumsum(counts)
            sources = np.repeat(
                np.arange(n, dtype=np.int64), self._out_degree
            )
            order = np.argsort(self._indices, kind="stable")
            t_indices = sources[order]
            # stable sort keeps sources increasing within each row
            t_indptr.setflags(write=False)
            t_indices.setflags(write=False)
            self._t_indptr = t_indptr
            self._t_indices = t_indices
        return self._t_indptr, self._t_indices

    def transpose(self) -> "WebGraph":
        """Return the reverse graph (every edge flipped)."""
        t_indptr, t_indices = self._transpose_arrays()
        return WebGraph(
            t_indptr.copy(), t_indices.copy(), self._names, validate=False
        )

    def stats(self) -> GraphStats:
        """Compute (and cache) aggregate :class:`GraphStats`."""
        if self._stats is None:
            in_deg = self.in_degree()
            out_deg = self._out_degree
            self._stats = GraphStats(
                num_nodes=self.num_nodes,
                num_edges=self.num_edges,
                num_no_inlinks=int(np.count_nonzero(in_deg == 0)),
                num_no_outlinks=int(np.count_nonzero(out_deg == 0)),
                num_isolated=int(
                    np.count_nonzero((in_deg == 0) & (out_deg == 0))
                ),
                max_outdegree=int(out_deg.max()) if self.num_nodes else 0,
                max_indegree=int(in_deg.max()) if self.num_nodes else 0,
                mean_outdegree=(
                    self.num_edges / self.num_nodes if self.num_nodes else 0.0
                ),
            )
        return self._stats

    # ------------------------------------------------------------------
    # structural fingerprint
    # ------------------------------------------------------------------

    def structural_fingerprint(self) -> str:
        """Content fingerprint of the CSR structure (names excluded).

        Computed once and cached on the instance — graphs are immutable,
        so repeated operator-cache lookups never rehash ``indptr`` /
        ``indices``.  The digest is a commutative sum of per-edge hashes
        (see :func:`edge_digest`), which lets
        :class:`~repro.graph.delta.GraphDelta` derive a mutated graph's
        fingerprint in O(|delta|) and stamp it via
        :meth:`_stamp_fingerprint`.
        """
        if self._fingerprint is None:
            WebGraph.fingerprint_computations += 1
            sources = np.repeat(
                np.arange(self.num_nodes, dtype=np.int64), self._out_degree
            )
            digest = edge_digest(self.num_nodes, sources, self._indices)
            self._fingerprint = compose_fingerprint(
                self.num_nodes, self.num_edges, digest
            )
        return self._fingerprint

    def _stamp_fingerprint(self, fingerprint: str) -> None:
        """Install a fingerprint derived externally (delta application).

        The caller guarantees the value equals what
        :meth:`structural_fingerprint` would compute — the commutative
        digest makes the derived and recomputed values bit-identical,
        and the property tests pin that equality.
        """
        self._fingerprint = fingerprint

    # ------------------------------------------------------------------
    # dunder / comparison
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WebGraph):
            return NotImplemented
        return (
            self.num_nodes == other.num_nodes
            and np.array_equal(self._indptr, other._indptr)
            and np.array_equal(self._indices, other._indices)
        )

    def __hash__(self) -> int:
        return hash((self.num_nodes, self.num_edges))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WebGraph(nodes={self.num_nodes}, edges={self.num_edges})"


def _as_edge_list(graph: WebGraph) -> List[Tuple[int, int]]:
    """Materialize a graph's edges as a list (testing helper)."""
    return list(graph.edges())
