"""Observability layer: tracing, metrics and telemetry capture.

The mass-estimation pipeline (Algorithm 2: two PageRank solves over
one operator, then thresholding) runs under a resilient runtime and a
batched perf engine whose *behaviour* — fallback escalations, cache
hits, residual trajectories, checkpoint writes — matters as much as
its output.  This package makes that behaviour a first-class,
assertable signal:

* :mod:`repro.obs.events` — the :class:`Event` record and the sinks
  (:class:`NullSink`, :class:`MemorySink`, :class:`JsonlSink`,
  :class:`TeeSink`);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges and streaming histograms;
* :mod:`repro.obs.tracer` — nested stage spans
  (``graph-gen → operator-build → solve → mass-estimate → detect``);
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade the
  instrumented modules call, with :func:`get_telemetry` /
  :func:`set_telemetry` / :func:`capture`;
* :mod:`repro.obs.manifest` — the per-run JSON manifest written next
  to a ``--trace-out`` trace.

The process default is a **disabled** telemetry that emits zero events
and allocates nothing; the CLI flags ``--trace-out`` /
``--metrics-out`` enable it, and the pytest ``telemetry`` fixture
captures in-process for the telemetry-assertion test harness
(``tests/obs/``).  See ``docs/observability.md``.

This package imports nothing from the rest of :mod:`repro`, so any
layer — including :mod:`repro.graph.io` and :mod:`repro.runtime.retry`
at the bottom of the stack — can emit telemetry without import cycles.
"""

from .events import (
    Event,
    EventSink,
    JsonlSink,
    MemorySink,
    NullSink,
    TeeSink,
)
from .manifest import build_manifest, manifest_path_for, write_manifest
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .telemetry import Telemetry, capture, get_telemetry, set_telemetry
from .tracer import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "Event",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "NoopSpan",
    "NOOP_SPAN",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "capture",
    "build_manifest",
    "write_manifest",
    "manifest_path_for",
]
