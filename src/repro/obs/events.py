"""Telemetry events and sinks: the wire format of the observability layer.

Everything the instrumented pipeline emits is an :class:`Event` — a
``(timestamp, kind, name, attrs)`` record.  Three kinds exist:

``span_start`` / ``span_end``
    Stage boundaries from the :mod:`~repro.obs.tracer` (nested: the
    ``span_start`` carries the nesting ``depth`` and ``parent``; the
    ``span_end`` additionally carries ``duration`` and ``status``).
``event``
    A point-in-time occurrence: a solver escalation, a checkpoint
    write, an I/O retry.

Events flow into an :class:`EventSink`.  Sinks are deliberately dumb —
``emit(event)`` and ``close()`` — so the instrumentation cost is one
method call per *stage boundary* (never per solver iteration):

* :class:`NullSink` — drops everything; the disabled-telemetry path
  never even constructs an event, so this sink exists only as a safe
  default target.
* :class:`MemorySink` — appends to a list; the in-process capture the
  pytest ``telemetry`` fixture builds assertions on.
* :class:`JsonlSink` — one JSON object per line (the CLI's
  ``--trace-out``); crash-tolerant in the sense that every line written
  so far is already valid JSON.
* :class:`TeeSink` — fan-out to several sinks.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, IO, List, Optional, Union

__all__ = [
    "Event",
    "EventSink",
    "NullSink",
    "MemorySink",
    "JsonlSink",
    "TeeSink",
]


class Event:
    """One telemetry record.

    Attributes
    ----------
    ts:
        Unix timestamp (``time.time()``) at emission.
    kind:
        ``"span_start"``, ``"span_end"`` or ``"event"``.
    name:
        The stage or occurrence name (e.g. ``"mass-estimate"``,
        ``"solver.escalation"``).
    attrs:
        Flat JSON-serializable payload.
    """

    __slots__ = ("ts", "kind", "name", "attrs")

    def __init__(self, kind: str, name: str, attrs: Optional[dict] = None,
                 ts: Optional[float] = None) -> None:
        self.ts = time.time() if ts is None else ts
        self.kind = kind
        self.name = name
        self.attrs = attrs if attrs is not None else {}

    def to_dict(self) -> dict:
        return {
            "ts": self.ts,
            "kind": self.kind,
            "name": self.name,
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.kind!r}, {self.name!r}, {self.attrs!r})"


class EventSink:
    """Abstract sink; subclasses override :meth:`emit`."""

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (flush files); idempotent."""


class NullSink(EventSink):
    """Swallows everything (the safe default target)."""

    def emit(self, event: Event) -> None:
        pass


class MemorySink(EventSink):
    """In-process capture used by the test harness.

    Beyond plain storage it offers the queries the telemetry-assertion
    tests are written in terms of: completed span names, events of a
    kind/name, and the normalized ``(kind, name)`` stream the golden
    regression fixture pins.
    """

    def __init__(self) -> None:
        self.events: List[Event] = []

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def clear(self) -> None:
        self.events.clear()

    # -- queries --------------------------------------------------------

    def of_kind(self, kind: str) -> List[Event]:
        """Events of one kind, in emission order."""
        return [e for e in self.events if e.kind == kind]

    def named(self, name: str, kind: Optional[str] = None) -> List[Event]:
        """Events with a given name (optionally restricted by kind)."""
        return [
            e
            for e in self.events
            if e.name == name and (kind is None or e.kind == kind)
        ]

    def span_names(self) -> List[str]:
        """Names of *completed* spans, in completion order."""
        return [e.name for e in self.events if e.kind == "span_end"]

    def span_count(self, name: str) -> int:
        """How many times the named span completed."""
        return sum(
            1
            for e in self.events
            if e.kind == "span_end" and e.name == name
        )

    def normalized(self, keep_attrs: tuple = ("label", "status")) -> List[dict]:
        """The timing-stripped stream the golden fixture stores.

        Each entry keeps only ``kind``, ``name`` and the whitelisted
        stable attributes — timestamps, durations and iteration counts
        (all host- or library-version-dependent) are dropped, so the
        fixture asserts event *kinds and ordering*, nothing volatile.
        """
        out = []
        for e in self.events:
            entry: Dict[str, object] = {"kind": e.kind, "name": e.name}
            for key in keep_attrs:
                if key in e.attrs:
                    entry[key] = e.attrs[key]
            out.append(entry)
        return out


class JsonlSink(EventSink):
    """Append events as JSON lines to a file (the ``--trace-out`` sink)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self.emitted = 0
        self.emitted_by_kind: Dict[str, int] = {}

    def emit(self, event: Event) -> None:
        if self._fh is None:  # pragma: no cover - emit after close
            return
        json.dump(event.to_dict(), self._fh, separators=(",", ":"))
        self._fh.write("\n")
        self.emitted += 1
        self.emitted_by_kind[event.kind] = (
            self.emitted_by_kind.get(event.kind, 0) + 1
        )

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None


class TeeSink(EventSink):
    """Fan one event stream out to several sinks."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = [s for s in sinks if s is not None]

    def emit(self, event: Event) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
