"""Per-run manifest: one JSON document summarizing a traced run.

The manifest is the operator-facing index of a telemetry capture: what
ran, with which arguments, how it ended, how many events of each kind
were emitted and the final metrics snapshot.  The CLI writes it next to
the ``--trace-out`` file (``<trace>.manifest.json``) so a trace on disk
is always self-describing.
"""

from __future__ import annotations

import json
import platform
import time
import uuid
from pathlib import Path
from typing import Optional, Sequence, Union

from .events import JsonlSink, MemorySink
from .telemetry import Telemetry

__all__ = ["build_manifest", "write_manifest", "manifest_path_for"]

MANIFEST_SCHEMA = 1


def manifest_path_for(trace_path: Union[str, Path]) -> Path:
    """The manifest path paired with a trace file.

    ``run.trace.jsonl`` → ``run.trace.manifest.json`` (the trace suffix,
    whatever it is, is replaced).
    """
    trace_path = Path(trace_path)
    return trace_path.with_suffix(".manifest.json")


def build_manifest(
    telemetry: Telemetry,
    *,
    argv: Optional[Sequence[str]] = None,
    exit_code: Optional[int] = None,
    trace_path: Optional[Union[str, Path]] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble the manifest dict for one run.

    Event counts come from the sink when it can report them (memory and
    JSONL sinks can); the metrics snapshot always comes from the
    registry.
    """
    sink = telemetry.sink
    events_by_kind: dict = {}
    events_total: Optional[int] = None
    if isinstance(sink, MemorySink):
        events_total = len(sink)
        for event in sink.events:
            events_by_kind[event.kind] = events_by_kind.get(event.kind, 0) + 1
    elif isinstance(sink, JsonlSink):
        events_total = sink.emitted
        events_by_kind = dict(sink.emitted_by_kind)

    manifest = {
        "schema": MANIFEST_SCHEMA,
        "run_id": str(uuid.uuid4()),
        "timestamp": time.time(),
        "host": platform.node(),
        "python": platform.python_version(),
        "argv": list(argv) if argv is not None else None,
        "exit_code": exit_code,
        "trace_file": str(trace_path) if trace_path is not None else None,
        "events_total": events_total,
        "events_by_kind": events_by_kind or None,
        "metrics": telemetry.snapshot(),
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    telemetry: Telemetry,
    path: Union[str, Path],
    **kwargs,
) -> Path:
    """Build and write the manifest as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(telemetry, **kwargs)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
    return path
