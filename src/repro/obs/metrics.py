"""Metrics registry: counters, gauges and histograms.

Metrics are *aggregates*, not events: incrementing a counter touches a
Python int, never the event sink, so per-occurrence cost stays O(1)
with no I/O.  The registry renders to a flat JSON-serializable snapshot
(the CLI's ``--metrics-out`` and the per-run manifest) and backs the
behavioural assertions of the telemetry test harness — e.g. that
``opcache.hits`` agrees with what :class:`repro.perf.OperatorCache`
itself reports.

Instrumented metric names in this codebase (see docs/observability.md
for the full schema):

=========================  ==========  =======================================
name                       type        meaning
=========================  ==========  =======================================
``opcache.hits``           counter     operator-cache hits
``opcache.misses``         counter     operator-cache misses (bundle builds)
``opcache.evictions``      counter     LRU evictions
``engine.batched_solves``  counter     ``solve_many`` calls
``engine.columns``         counter     stacked columns solved
``solver.attempts``        counter     fallback-chain attempts started
``solver.escalations``     counter     escalations to a later chain method
``solver.resumes``         counter     checkpoint resumes
``checkpoint.writes``      counter     snapshots written
``retry.attempts``         counter     transient-I/O retries
``mc.walks``               counter     Monte-Carlo walks sampled
``detect.candidates``      gauge       size of the last candidate set
``solver.iterations``      histogram   per-solve iteration counts
``solver.residual_curve``  histogram   residuals observed by the monitors
``span.duration.<name>``   histogram   per-stage wall seconds
=========================  ==========  =======================================
"""

from __future__ import annotations

from typing import Dict, Iterable, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Number = Union[int, float]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-write-wins numeric level."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Streaming aggregate of observed values (count/sum/min/max/last).

    No per-value storage: a residual curve of ten thousand points costs
    four floats and an int, so feeding whole trajectories in after an
    attempt finishes is safe at any scale.
    """

    __slots__ = ("name", "count", "total", "min", "max", "last")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def observe(self, value: Number) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    def observe_many(self, values: Iterable[Number]) -> None:
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        if not self.count:
            return {"type": "histogram", "count": 0}
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "last": self.last,
        }


class MetricsRegistry:
    """Named metrics, created on first touch.

    A name is permanently bound to the type of its first use; asking
    for ``counter("x")`` after ``gauge("x")`` raises, which catches
    instrumentation typos at test time instead of silently forking a
    metric.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def value(self, name: str, default: Number = 0) -> Number:
        """The scalar value of a counter/gauge (``default`` if absent)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        return metric.value  # type: ignore[union-attr]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, dict]:
        """Flat ``{name: {type, ...}}`` dict, sorted by name."""
        return {
            name: self._metrics[name].to_dict()  # type: ignore[attr-defined]
            for name in sorted(self._metrics)
        }
