"""The telemetry facade: the one object instrumented code talks to.

Instrumentation sites never import sinks or registries directly; they
call :func:`get_telemetry` and use the narrow :class:`Telemetry`
surface — ``span``/``event``/``inc``/``observe``/``set_gauge``.  The
contract that makes this safe to leave in production code paths:

* **Disabled is free.**  The process-wide default is a shared disabled
  instance whose methods return immediately: ``span()`` hands back the
  module-level :data:`~repro.obs.tracer.NOOP_SPAN` singleton and no
  :class:`~repro.obs.events.Event` is ever constructed — zero events,
  zero retained allocations (asserted by
  ``tests/obs/test_noop_overhead.py``).
* **Enabled is cheap.**  Emission happens at stage boundaries and
  per-occurrence (an escalation, a checkpoint write), never inside a
  solver iteration loop; the benchmark gates the enabled overhead at
  <5% on the medium preset.
* **Scoped capture.**  Tests install a fresh telemetry via
  :func:`set_telemetry` (the pytest ``telemetry`` fixture) or
  :func:`capture`; the previous one is restored afterwards, so capture
  never leaks across tests.

``Telemetry`` is deliberately not thread-*shared* state beyond the
tracer's per-thread span stack: counters use plain int adds (GIL-atomic
enough for diagnostics), and worker *processes* (the Monte-Carlo pool)
start with the disabled default, so child processes never double-emit.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Union

from .events import Event, EventSink, MemorySink, NullSink
from .metrics import MetricsRegistry
from .tracer import NOOP_SPAN, Span, Tracer

__all__ = [
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "capture",
]


class Telemetry:
    """Sink + metrics + tracer behind one guarded entry point.

    Parameters
    ----------
    sink:
        Where events go; default :class:`NullSink`.
    metrics:
        The metrics registry; default a fresh one.
    enabled:
        When false every method is a no-op regardless of the sink —
        this is the only flag hot call sites ever need to check.
    """

    __slots__ = ("sink", "metrics", "tracer", "enabled")

    def __init__(
        self,
        sink: Optional[EventSink] = None,
        metrics: Optional[MetricsRegistry] = None,
        enabled: bool = True,
    ) -> None:
        self.sink = sink if sink is not None else NullSink()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = Tracer(self.sink.emit, on_close=self._record_span)
        self.enabled = enabled

    # -- spans ----------------------------------------------------------

    def span(self, name: str, **attrs) -> Union[Span, "object"]:
        """A context manager bracketing one pipeline stage."""
        if not self.enabled:
            return NOOP_SPAN
        return self.tracer.span(name, attrs)

    def _record_span(self, span: Span) -> None:
        self.metrics.histogram(f"span.duration.{span.name}").observe(
            span.duration
        )

    # -- events ---------------------------------------------------------

    def event(self, name: str, **attrs) -> None:
        """Emit a point-in-time occurrence."""
        if not self.enabled:
            return
        self.sink.emit(Event("event", name, attrs))

    # -- metrics --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if not self.enabled:
            return
        self.metrics.counter(name).inc(amount)

    def set_gauge(self, name: str, value) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value) -> None:
        if not self.enabled:
            return
        self.metrics.histogram(name).observe(value)

    def observe_many(self, name: str, values) -> None:
        if not self.enabled:
            return
        self.metrics.histogram(name).observe_many(values)

    # -- lifecycle ------------------------------------------------------

    def snapshot(self) -> dict:
        """The metrics snapshot (see :meth:`MetricsRegistry.snapshot`)."""
        return self.metrics.snapshot()

    def close(self) -> None:
        """Close the sink (flush trace files)."""
        self.sink.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, sink={type(self.sink).__name__})"


#: The shared disabled instance: the process-wide default.  Never
#: mutated, so every process (including Monte-Carlo pool workers)
#: starts silent.
_DISABLED = Telemetry(enabled=False)

_current: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The active telemetry (a shared disabled no-op by default)."""
    return _current


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` as the active instance; returns the previous.

    Pass ``None`` to restore the disabled default.  Callers are expected
    to restore the returned previous instance when their scope ends —
    the ``telemetry`` pytest fixture and :func:`capture` do this
    automatically.
    """
    global _current
    previous = _current
    _current = telemetry if telemetry is not None else _DISABLED
    return previous


@contextmanager
def capture(
    sink: Optional[EventSink] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Iterator[Telemetry]:
    """Scoped in-process capture: install, yield, restore.

    ::

        with capture() as tele:
            estimate_spam_mass(graph, core)
        assert tele.sink.span_count("mass-estimate") == 1
    """
    telemetry = Telemetry(
        sink=sink if sink is not None else MemorySink(), metrics=metrics
    )
    previous = set_telemetry(telemetry)
    try:
        yield telemetry
    finally:
        set_telemetry(previous)
