"""Span tracer: nested stage timing for the mass-estimation pipeline.

A *span* brackets one pipeline stage — ``graph-gen``,
``operator-build``, ``solve:batch``, ``mass-estimate``, ``detect`` —
and emits a ``span_start``/``span_end`` event pair carrying the nesting
depth, the parent stage, wall duration and an ``ok``/``error`` status.
Spans nest through a per-thread stack, so a ``mass-estimate`` span
started inside ``context-build`` records ``parent="context-build"``
without any caller bookkeeping.

Usage (always through the :class:`~repro.obs.telemetry.Telemetry`
facade, which no-ops when telemetry is disabled)::

    with tele.span("mass-estimate", gamma=0.85) as sp:
        ...
        sp.set("converged", True)   # lands on the span_end event

Per-iteration solver loops are *never* spanned — instrumentation sits
at stage boundaries only, which is how the enabled-telemetry overhead
stays under the 5% budget on the medium-preset benchmark.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from .events import Event

__all__ = ["Span", "Tracer", "NoopSpan", "NOOP_SPAN"]


class Span:
    """One live stage; also its own context manager."""

    __slots__ = (
        "name",
        "attrs",
        "parent",
        "depth",
        "start",
        "duration",
        "status",
        "_tracer",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: dict,
        parent: Optional[str],
        depth: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.depth = depth
        self.start = 0.0
        self.duration = 0.0
        self.status = "ok"

    def set(self, key: str, value) -> None:
        """Attach an attribute; it is reported on the ``span_end`` event."""
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self.start = time.perf_counter()
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self.start
        if exc_type is not None:
            self.status = "error"
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self)
        return False  # never swallow

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, depth={self.depth})"


class NoopSpan:
    """The shared do-nothing span handed out when telemetry is off.

    A single module-level instance (:data:`NOOP_SPAN`) is reused for
    every disabled ``span()`` call, so the disabled path allocates
    nothing and emits nothing.
    """

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = NoopSpan()


class Tracer:
    """Builds spans and maintains the per-thread nesting stack."""

    def __init__(self, emit: Callable[[Event], None],
                 on_close: Optional[Callable[[Span], None]] = None) -> None:
        self._emit = emit
        self._on_close = on_close
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, attrs: Optional[dict] = None) -> Span:
        """A new span nested under the current innermost one."""
        stack = self._stack()
        parent = stack[-1].name if stack else None
        return Span(self, name, dict(attrs or {}), parent, len(stack))

    def current(self) -> Optional[Span]:
        """The innermost live span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- called by Span -------------------------------------------------

    def _enter(self, span: Span) -> None:
        self._stack().append(span)
        self._emit(
            Event(
                "span_start",
                span.name,
                dict(span.attrs, depth=span.depth, parent=span.parent),
            )
        )

    def _exit(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - interleaved misuse
            stack.remove(span)
        attrs = dict(
            span.attrs,
            depth=span.depth,
            parent=span.parent,
            duration=span.duration,
            status=span.status,
        )
        self._emit(Event("span_end", span.name, attrs))
        if self._on_close is not None:
            self._on_close(span)
