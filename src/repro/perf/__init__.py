"""Performance engine: operator caching, batched solves, parallel MC.

The hot path of every experiment in this repository is repeated
PageRank solves against one graph's transition operator.  This package
makes that path fast without changing any numerical semantics:

* :mod:`repro.perf.cache` — build ``Tᵀ`` once per graph, keep it in a
  bounded LRU keyed by a structural fingerprint;
* :mod:`repro.perf.engine` — :class:`PagerankEngine`, whose
  ``solve_many`` runs stacked jump vectors as one dangling-restricted
  block Jacobi iteration (``p`` and ``p′`` in a single pass);
* :mod:`repro.perf.parallel` — process-parallel Monte-Carlo sampling
  with deterministic, scheduling-independent results, gathered under
  a :class:`~repro.runtime.supervisor.TaskSupervisor` (per-chunk
  retry, deadlines, circuit breaking, partial-result salvage).

``get_engine()`` returns the process-wide shared engine that the core
APIs (:func:`repro.core.pagerank.pagerank`,
:func:`repro.core.mass.estimate_spam_mass`, the experiment runners)
route through by default.
"""

from .cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_SHARD_CACHE_SIZE,
    OperatorBundle,
    OperatorCache,
    graph_fingerprint,
)
from .engine import (
    DEFAULT_CHECK_EVERY,
    PRECISIONS,
    BatchResult,
    PagerankEngine,
    configure_engine,
    get_engine,
    set_engine,
)
from .incremental import (
    IncrementalResult,
    PushStats,
    push_update,
    seed_residual,
)
from .parallel import (
    DEFAULT_CHUNKS,
    pagerank_montecarlo_parallel,
    plan_chunks,
)
from .sharded import (
    ShardedOperator,
    derive_sharded,
    sharded_block_jacobi,
    sharded_operator_for,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_CHECK_EVERY",
    "DEFAULT_CHUNKS",
    "DEFAULT_SHARD_CACHE_SIZE",
    "PRECISIONS",
    "ShardedOperator",
    "sharded_operator_for",
    "derive_sharded",
    "sharded_block_jacobi",
    "BatchResult",
    "IncrementalResult",
    "OperatorBundle",
    "OperatorCache",
    "PagerankEngine",
    "PushStats",
    "push_update",
    "seed_residual",
    "configure_engine",
    "get_engine",
    "graph_fingerprint",
    "pagerank_montecarlo_parallel",
    "plan_chunks",
    "set_engine",
]
