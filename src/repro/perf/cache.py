"""Operator caching: build each graph's transition operator once.

Every PageRank-family computation in this codebase reduces to solves
against the same sparse operator, the transposed substochastic
transition matrix ``Tᵀ`` of Section 2.2.  Before the perf engine
existed, each call to :func:`repro.core.pagerank.pagerank` rebuilt and
re-transposed that matrix — the single dominant setup cost when an
experiment performs dozens of solves on one graph (the Figure 5 core
sweep, the γ sweep, the threshold ablations).

:class:`OperatorCache` is a bounded LRU keyed by a structural *graph
fingerprint*.  A cache entry is an :class:`OperatorBundle` that carries
``Tᵀ`` plus the derived sub-operators of the dangling restriction used
by the batched kernel (built lazily, cached alongside):

* ``S`` — the non-dangling nodes.  Because columns of ``Tᵀ`` indexed by
  dangling nodes are identically zero, the Jacobi iterate restricted to
  ``S`` evolves autonomously: ``p_S = c (Tᵀ)_{SS} p_S + (1−c) v_S``.
* ``(Tᵀ)_{SS}`` — the restricted operator the block iteration runs on.
* ``(Tᵀ)_{DS}`` — the dangling rows, applied once at the end to expand
  the converged restricted iterate back to the full vector (and during
  residual checks, to account for the dangling component of the true
  full-vector residual).

On paper-shaped graphs (66.4% of hosts dangling, Section 4.1) the
restriction shrinks the dense vector work by ~2/3 and the matvec by the
fraction of edges that point at dangling hosts — this is where most of
the engine's measured speedup comes from.

Fingerprint semantics
---------------------
The key is *structural*: node count, edge count and a commutative sum
of per-edge splitmix64 hashes, computed once per graph and cached on
the (immutable) :class:`~repro.graph.webgraph.WebGraph` instance — see
:meth:`WebGraph.structural_fingerprint`.  Two graph objects with
identical link structure share an entry, regardless of object identity
or host names (names never enter the operator).  Commutativity is what
makes the cache *delta-aware*: when a graph is mutated through a
:class:`~repro.graph.delta.GraphDelta`, the child fingerprint is
derived from the parent's in O(|delta|) instead of rehashing the full
CSR, and :meth:`OperatorCache.derive_for` splices the child operator
from the parent by rewriting only the touched columns of ``Tᵀ`` (the
out-rows of touched sources) rather than re-transposing the graph.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Optional

import numpy as np
from scipy import sparse

from ..graph.ops import transition_matrix
from ..graph.webgraph import WebGraph
from ..obs import get_telemetry

__all__ = ["graph_fingerprint", "OperatorBundle", "OperatorCache"]

#: Default number of graphs whose operators are kept alive.  Each entry
#: holds O(edges) memory (the CSR arrays plus the two sub-operators), so
#: the default stays small; experiment suites touch a handful of graphs
#: (world, its transpose for TrustRank seeding, the paper examples).
DEFAULT_CACHE_SIZE = 8

#: Default bound of the engine's *shard* operator cache.  Its entries
#: are per-shard operator blocks (``fp#ss:k`` / ``fp#ds:k``) rather
#: than whole graphs, so a 32-shard parity sweep alone needs ~65 keys;
#: the bound is sized so such sweeps never thrash.
DEFAULT_SHARD_CACHE_SIZE = 256


def graph_fingerprint(graph: WebGraph) -> str:
    """Structural fingerprint of a graph's link structure.

    Delegates to :meth:`WebGraph.structural_fingerprint`, which caches
    the digest on the instance — graphs are immutable, so repeated
    ``bundle_for`` calls on a large graph hash its CSR arrays exactly
    once.  Host names are deliberately excluded — they do not affect
    the operator.
    """
    return graph.structural_fingerprint()


class OperatorBundle:
    """The cached per-graph operators.

    Attributes
    ----------
    transition_t:
        ``Tᵀ`` in CSR form — the operator every solver consumes.
    dangling_mask:
        Boolean mask of dangling (zero out-degree) nodes.
    non_dangling, dangling:
        Index arrays ``S`` and ``D`` (``int64``).
    """

    __slots__ = (
        "fingerprint",
        "num_nodes",
        "transition_t",
        "dangling_mask",
        "non_dangling",
        "dangling",
        "_tt_ss",
        "_tt_ds",
        "_tt_ss32",
        "_tt_ds32",
        "_lock",
    )

    def __init__(
        self,
        graph: WebGraph,
        fingerprint: str,
        transition_t: Optional[sparse.csr_matrix] = None,
    ) -> None:
        self.fingerprint = fingerprint
        self.num_nodes = graph.num_nodes
        # a pre-spliced operator (delta derivation) skips the transpose
        if transition_t is None:
            transition_t = transition_matrix(graph).T.tocsr()
        self.transition_t = transition_t
        self.dangling_mask = graph.dangling_mask()
        self.non_dangling = np.flatnonzero(~self.dangling_mask)
        self.dangling = np.flatnonzero(self.dangling_mask)
        self._tt_ss: Optional[sparse.csr_matrix] = None
        self._tt_ds: Optional[sparse.csr_matrix] = None
        self._tt_ss32: Optional[sparse.csr_matrix] = None
        self._tt_ds32: Optional[sparse.csr_matrix] = None
        self._lock = threading.Lock()

    # -- restricted sub-operators (built on first batched solve) -------

    def _build_restriction(self) -> None:
        with self._lock:
            if self._tt_ss is not None:
                return
            s = self.non_dangling
            d = self.dangling
            tt = self.transition_t
            self._tt_ss = tt[s][:, s].tocsr()
            self._tt_ds = tt[d][:, s].tocsr()

    @property
    def tt_ss(self) -> sparse.csr_matrix:
        """``(Tᵀ)_{SS}``: the autonomous non-dangling subsystem."""
        if self._tt_ss is None:
            self._build_restriction()
        return self._tt_ss

    @property
    def tt_ds(self) -> sparse.csr_matrix:
        """``(Tᵀ)_{DS}``: dangling rows, for residuals and expansion."""
        if self._tt_ds is None:
            self._build_restriction()
        return self._tt_ds

    # -- float32 casts (built on first adaptive-precision solve) -------

    def _build_restriction32(self) -> None:
        tt_ss = self.tt_ss  # ensure the float64 restriction exists
        tt_ds = self.tt_ds
        with self._lock:
            if self._tt_ss32 is not None:
                return
            # elementwise cast shares the index arrays: the float32
            # blocks cost only one extra ``data`` array each, and their
            # values are exact casts of the float64 operator — which is
            # what makes the sharded adaptive path bitwise-reproducible
            # against this one (a per-shard cast of a sub-block equals
            # the sub-block of the cast).
            self._tt_ss32 = sparse.csr_matrix(
                (tt_ss.data.astype(np.float32), tt_ss.indices, tt_ss.indptr),
                shape=tt_ss.shape,
            )
            self._tt_ds32 = sparse.csr_matrix(
                (tt_ds.data.astype(np.float32), tt_ds.indices, tt_ds.indptr),
                shape=tt_ds.shape,
            )

    @property
    def tt_ss32(self) -> sparse.csr_matrix:
        """Float32 cast of :attr:`tt_ss` for the adaptive low phase."""
        if self._tt_ss32 is None:
            self._build_restriction32()
        return self._tt_ss32

    @property
    def tt_ds32(self) -> sparse.csr_matrix:
        """Float32 cast of :attr:`tt_ds` for the adaptive low phase."""
        if self._tt_ds32 is None:
            self._build_restriction32()
        return self._tt_ds32

    def nbytes(self) -> int:
        """Approximate resident size of the bundle (diagnostics)."""
        total = 0
        for mat in (
            self.transition_t,
            self._tt_ss,
            self._tt_ds,
            self._tt_ss32,
            self._tt_ds32,
        ):
            if mat is not None:
                total += mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
        total += self.dangling_mask.nbytes
        total += self.non_dangling.nbytes + self.dangling.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"OperatorBundle(n={self.num_nodes}, "
            f"nnz={self.transition_t.nnz}, "
            f"dangling={len(self.dangling)})"
        )


def _splice_transition_t(
    parent_tt: sparse.csr_matrix, application
) -> sparse.csr_matrix:
    """Derive the child ``Tᵀ`` by rewriting only the touched columns.

    Column ``s`` of ``Tᵀ`` is the out-row of source ``s`` with weight
    ``1/outdeg(s)``; an edge delta changes exactly the columns of its
    touched sources.  Entries of untouched sources are carried over
    verbatim (data included), so the splice is O(nnz) index work with no
    re-transpose (the argsort that dominates a cold operator build).
    """
    after = application.after
    touched = application.touched_sources
    n = after.num_nodes
    rows = np.repeat(
        np.arange(n, dtype=np.int64), np.diff(parent_tt.indptr)
    )
    # membership via a lookup table: O(nnz) gather, no sort (np.isin
    # pays an (nnz + m)·log m sort that dominates the whole splice)
    touched_mask = np.zeros(n, dtype=bool)
    touched_mask[touched] = True
    keep = ~touched_mask[parent_tt.indices]
    keys = rows[keep] * n + parent_tt.indices[keep]
    data = parent_tt.data[keep]
    # fresh entries: the touched sources' out-rows on the mutated graph
    deg = after.out_degree()[touched]
    live = deg > 0
    srcs = touched[live]
    counts = deg[live]
    if len(srcs):
        starts = after.indptr[srcs]
        gather = np.repeat(starts, counts) + (
            np.arange(int(counts.sum())) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
        )
        targets = after.indices[gather]
        cols = np.repeat(srcs, counts)
        vals = np.repeat(1.0 / counts, counts)
        new_keys = targets * n + cols
        order = np.argsort(new_keys)
        new_keys = new_keys[order]
        vals = vals[order]
        pos = np.searchsorted(keys, new_keys)
        keys = np.insert(keys, pos, new_keys)
        data = np.insert(data, pos, vals)
    indptr = np.zeros(n + 1, dtype=parent_tt.indptr.dtype)
    indptr[1:] = np.cumsum(np.bincount(keys // n, minlength=n))
    return sparse.csr_matrix(
        (data, (keys % n).astype(parent_tt.indices.dtype), indptr),
        shape=(n, n),
    )


class OperatorCache:
    """Bounded LRU of :class:`OperatorBundle` keyed by graph fingerprint.

    Thread-safe; hits move the entry to the most-recently-used end, and
    inserting past ``maxsize`` evicts the least-recently-used bundle.
    """

    def __init__(self, maxsize: int = DEFAULT_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError("cache maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: "OrderedDict[str, OperatorBundle]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.derives = 0

    def bundle_for(self, graph: WebGraph) -> OperatorBundle:
        """Return the graph's bundle, building it on first sight."""
        tele = get_telemetry()
        key = graph_fingerprint(graph)
        with self._lock:
            bundle = self._entries.get(key)
            if bundle is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                tele.inc("opcache.hits")
                return bundle
            self.misses += 1
        tele.inc("opcache.misses")
        # build outside the lock: O(edges) work
        if tele.enabled:
            with tele.span(
                "operator-build", nodes=graph.num_nodes, edges=graph.num_edges
            ):
                bundle = OperatorBundle(graph, key)
        else:
            bundle = OperatorBundle(graph, key)
        with self._lock:
            # a racing builder may have inserted meanwhile; keep the
            # first one so callers share a single operator
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = bundle
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return bundle

    def entry_for(self, key: str, factory):
        """Generic keyed entry: return the cached value for ``key``,
        building it via ``factory()`` (outside the lock) on a miss.

        The sharded solver path stores per-shard operator blocks and
        whole shard operators through this, under composite keys
        (``<fingerprint>#ss:<k>`` etc.), sharing the same LRU, lock and
        hit/miss/eviction counters as the whole-graph bundles.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return entry
            self.misses += 1
        value = factory()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                return existing
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def peek(self, key: str):
        """Return the entry for ``key`` if resident, else ``None``.

        A successful peek counts as a hit (and refreshes recency); an
        absent key is *not* counted as a miss — peeking is how derived
        shard operators probe for reusable parent blocks, and an absent
        parent block just means a cold build, which registers its own
        miss through :meth:`entry_for`.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self.hits += 1
                self._entries.move_to_end(key)
            return entry

    def derive_for(self, application):
        """Return the bundle for ``application.after``, derived cheaply.

        When the parent graph's bundle is cached, the child operator is
        spliced from it (touched columns only) and the child fingerprint
        comes from the O(|delta|) derivation stamped by
        :meth:`~repro.graph.delta.GraphDelta.apply` — the full CSR is
        never rehashed or re-transposed.  Falls back to a cold
        :meth:`bundle_for` build when the parent is not resident.

        Sharded graphs take a different derivation: the child gets a
        :class:`~repro.perf.sharded.ShardedOperator` that reuses the
        parent's cached per-shard blocks wherever the delta provably
        did not touch them (see :func:`repro.perf.sharded.derive_sharded`).
        """
        if not isinstance(application.after, WebGraph):
            # lazy import: perf.sharded imports the engine, which
            # imports this module
            from .sharded import derive_sharded

            return derive_sharded(self, application)
        tele = get_telemetry()
        child_key = graph_fingerprint(application.after)
        with self._lock:
            bundle = self._entries.get(child_key)
            if bundle is not None:
                self.hits += 1
                self._entries.move_to_end(child_key)
                tele.inc("opcache.hits")
                return bundle
            parent = self._entries.get(
                graph_fingerprint(application.before)
            )
        if parent is None:
            return self.bundle_for(application.after)
        self.derives += 1
        tele.inc("opcache.derives")
        if tele.enabled:
            with tele.span(
                "operator-derive",
                touched=len(application.touched_sources),
                edges=application.after.num_edges,
            ):
                tt = _splice_transition_t(parent.transition_t, application)
        else:
            tt = _splice_transition_t(parent.transition_t, application)
        bundle = OperatorBundle(application.after, child_key, transition_t=tt)
        with self._lock:
            existing = self._entries.get(child_key)
            if existing is not None:
                return existing
            self._entries[child_key] = bundle
            self._entries.move_to_end(child_key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
        return bundle

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, graph: object) -> bool:
        if not isinstance(graph, WebGraph):
            return False
        with self._lock:
            return graph_fingerprint(graph) in self._entries

    def clear(self) -> None:
        """Drop every cached operator (does not reset the counters)."""
        with self._lock:
            self._entries.clear()

    def cache_info(self) -> Dict[str, int]:
        """``{"hits", "misses", "evictions", "derives", "size", "maxsize"}``."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "derives": self.derives,
                "size": len(self._entries),
                "maxsize": self.maxsize,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.cache_info()
        return (
            f"OperatorCache(size={info['size']}/{info['maxsize']}, "
            f"hits={info['hits']}, misses={info['misses']})"
        )
