"""The batched multi-vector PageRank engine.

Spam-mass estimation is a *multi-solve* workload: Algorithm 2 needs the
uniform-jump PageRank ``p`` and the core-jump PageRank ``p′`` over the
same operator, and the evaluation suites re-solve that operator dozens
of times (threshold sweeps, core-size ablations, γ studies).
:class:`PagerankEngine` amortizes everything the solves share:

* the CSR operator ``Tᵀ`` is built **once** per graph and held in a
  bounded LRU (:class:`~repro.perf.cache.OperatorCache`);
* :meth:`PagerankEngine.solve_many` runs stacked jump vectors as a
  single dense-block Jacobi iteration on the **dangling-restricted**
  subsystem (see :mod:`repro.perf.cache`), with per-column convergence
  freezing and periodic residual checks — one matrix traversal per
  iteration serves every column;
* Monte-Carlo endpoint sampling parallelizes across processes with
  deterministic per-worker RNG streams
  (:func:`~repro.perf.parallel.pagerank_montecarlo_parallel`).

The block iteration is algebraically the plain Jacobi of Algorithm 1:
columns of ``Tᵀ`` indexed by dangling nodes are zero, so the iterate
restricted to the non-dangling set ``S`` evolves autonomously,

.. math:: p_S^{(i)} = c\\,(T^T)_{SS}\\, p_S^{(i-1)} + (1-c)\\, v_S ,

and the dangling components follow in closed form once ``p_S`` has
converged: ``p_D = c (Tᵀ)_{DS} p_S + (1−c) v_D``.  The reported
residual is the *full-vector* L1 change ``‖p⁽ⁱ⁾ − p⁽ⁱ⁻¹⁾‖₁`` (the
restricted change plus the induced dangling change), i.e. exactly the
stopping criterion of :func:`repro.core.solvers.jacobi` — the batched
kernel converges to the same vectors within the same tolerance.

Runtime policies (PR 1) are preserved **per column**: pass ``policy=``
and each stacked vector is solved through its own
:class:`~repro.runtime.resilient.FallbackSolver` with its own labeled
checkpoint directory, exactly as the sequential path would.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..errors import ConvergenceError
from ..core.solvers import SolverResult, solve as dispatch_solve
from ..core.pagerank import _resolve_jump  # single source of jump semantics
from ..graph.sharded import ShardedWebGraph
from ..graph.webgraph import WebGraph
from ..obs import get_telemetry
from ..runtime.supervisor import SupervisorPolicy, TaskSupervisor
from .cache import (
    DEFAULT_CACHE_SIZE,
    DEFAULT_SHARD_CACHE_SIZE,
    OperatorBundle,
    OperatorCache,
)

__all__ = [
    "BatchResult",
    "PagerankEngine",
    "PRECISIONS",
    "get_engine",
    "set_engine",
    "configure_engine",
]

#: Cadence of residual checks inside the block iteration.  Between
#: checks the loop performs pure fused update steps (one sparse matmul,
#: two in-place vector ops); the L1-change reduction — as expensive as
#: the matvec itself on thin blocks — runs only every ``CHECK_EVERY``-th
#: iteration, so reported iteration counts may exceed the sequential
#: solver's by up to ``CHECK_EVERY − 1``.
DEFAULT_CHECK_EVERY = 8

#: Supported solve precisions.  ``"float64"`` is the oracle path;
#: ``"adaptive"`` runs float32 sweeps against the cast operator down to
#: a relaxed tier, then promotes the iterate and polishes in float64 to
#: the caller's ``tol`` — same answer within the differential bound,
#: cheaper sweeps while the residual is far from converged.
PRECISIONS = ("float64", "adaptive")

#: Relaxed L1-residual tier the float32 phase targets.  Safely above
#: the float32 rounding floor of the residual reduction (~1e-7 for
#: probability-scale iterates), so the low phase never spins against
#: noise; the float64 polish closes the remaining gap to ``tol``.
ADAPTIVE_TIER = 1e-5

#: The float32 phase also stops on stall: when a residual check fails
#: to beat this fraction of the previous one, the iterate has hit the
#: low-precision floor and further float32 sweeps are wasted.
ADAPTIVE_STALL = 0.9

JumpLike = Union[None, np.ndarray, Sequence[int]]


def _validate_precision(precision: str) -> str:
    if precision not in PRECISIONS:
        raise ValueError(
            f"precision must be one of {PRECISIONS}, got {precision!r}"
        )
    return precision


class BatchResult:
    """Outcome of a stacked multi-vector solve.

    Attributes
    ----------
    scores:
        ``(n, k)`` array; column ``j`` solves ``(I − c Tᵀ) p = (1−c) vⱼ``.
    iterations, residuals, converged:
        Per-column diagnostics (``int64`` / ``float64`` / ``bool``).
    method:
        ``"batched_jacobi"`` for the block kernel, the underlying
        solver name for loop fallbacks, ``"fallback_chain"`` under a
        runtime policy.
    labels:
        Per-column labels (used for checkpoint directories and report
        keys under a policy).
    reports:
        ``{label: RunReport}`` when solved under a runtime policy,
        otherwise ``None``.
    """

    __slots__ = (
        "scores",
        "iterations",
        "residuals",
        "converged",
        "method",
        "labels",
        "reports",
    )

    def __init__(
        self,
        scores: np.ndarray,
        iterations: np.ndarray,
        residuals: np.ndarray,
        converged: np.ndarray,
        method: str,
        labels: Sequence[str],
        reports: Optional[Dict[str, object]] = None,
    ) -> None:
        self.scores = scores
        self.iterations = iterations
        self.residuals = residuals
        self.converged = converged
        self.method = method
        self.labels = list(labels)
        self.reports = reports

    @property
    def num_columns(self) -> int:
        return self.scores.shape[1]

    def column(self, j: int) -> SolverResult:
        """View column ``j`` as a standard :class:`SolverResult`."""
        return SolverResult(
            self.scores[:, j].copy(),
            int(self.iterations[j]),
            float(self.residuals[j]),
            bool(self.converged[j]),
            self.method,
        )

    def columns(self) -> List[SolverResult]:
        """All columns as :class:`SolverResult` objects, in order."""
        return [self.column(j) for j in range(self.num_columns)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ok = int(self.converged.sum())
        return (
            f"BatchResult({self.method}, {ok}/{self.num_columns} columns "
            f"converged, max {int(self.iterations.max(initial=0))} iters)"
        )


def _validate_block(vectors: np.ndarray, damping: float, tol: float) -> None:
    if vectors.ndim != 2:
        raise ValueError("stacked jump vectors must form an (n, k) array")
    if vectors.shape[1] == 0:
        raise ValueError("solve_many needs at least one jump vector")
    if not (0.0 < damping < 1.0):
        raise ValueError(f"damping factor must be in (0, 1), got {damping}")
    if tol <= 0.0:
        raise ValueError("tolerance must be positive")
    if np.any(vectors < 0):
        raise ValueError("random-jump vectors must be non-negative")
    norms = vectors.sum(axis=0)
    if np.any(norms <= 0.0):
        raise ValueError("every random-jump vector needs positive L1 norm")
    if np.any(norms > 1.0 + 1e-9):
        raise ValueError(
            "random-jump vector norms exceed 1 (paper requires "
            "0 < ||v|| <= 1 per column)"
        )


class PagerankEngine:
    """Caching, batching PageRank solver (see the module docstring).

    Parameters
    ----------
    cache_size:
        Bound of the operator LRU (graphs, not bytes).
    method:
        Default single-solve method (block solves are always Jacobi —
        the only iteration whose stacked form is a pure sparse matmul).
    check_every:
        Residual-check cadence of the block kernel.
    workers:
        Default process count for Monte-Carlo sampling (``None`` =
        serial in-process execution).
    precision:
        ``"float64"`` (default) or ``"adaptive"``.  Adaptive applies to
        the batched kernels (stacked, sharded and incremental solves):
        float32 sweeps to a relaxed tier, float64 polish to ``tol``.
        Single :meth:`solve` calls dispatch the sequential float64
        solvers regardless, and runtime policies (whose fallback chains
        are float64 by construction) reject an adaptive engine.
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        *,
        method: str = "jacobi",
        check_every: int = DEFAULT_CHECK_EVERY,
        workers: Optional[int] = None,
        precision: str = "float64",
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.cache = OperatorCache(cache_size)
        # per-shard operator blocks live in their own LRU: block keys
        # are ~2 per shard per graph, so sharing the (small) whole-graph
        # cache would thrash both
        self.shard_cache = OperatorCache(DEFAULT_SHARD_CACHE_SIZE)
        self.method = method
        self.check_every = check_every
        self.workers = workers
        self.precision = _validate_precision(precision)

    # ------------------------------------------------------------------
    # operator access
    # ------------------------------------------------------------------

    def bundle(self, graph: WebGraph) -> OperatorBundle:
        """The graph's cached operator bundle (built on first sight)."""
        if isinstance(graph, ShardedWebGraph):
            raise TypeError(
                "a sharded graph has no assembled operator bundle — "
                "its operator exists only as per-shard blocks; use "
                "solve()/solve_many(), which route to the sharded "
                "kernel automatically"
            )
        return self.cache.bundle_for(graph)

    def operator(self, graph: WebGraph):
        """The graph's ``Tᵀ`` in CSR form, from the cache."""
        return self.bundle(graph).transition_t

    # ------------------------------------------------------------------
    # single solves
    # ------------------------------------------------------------------

    def solve(
        self,
        graph: WebGraph,
        v: JumpLike = None,
        *,
        damping: float = 0.85,
        tol: float = 1e-12,
        max_iter: int = 10_000,
        method: Optional[str] = None,
        check: bool = False,
        **solver_options,
    ) -> SolverResult:
        """One PageRank solve against the cached operator.

        Semantically identical to
        :func:`repro.core.pagerank.pagerank`, minus the per-call
        operator rebuild.  Extra options go to
        :func:`repro.core.solvers.solve` (checkpoints, warm starts,
        callbacks).

        Sharded graphs route through the block kernel (only the Jacobi
        method exists out of core) and come back as the single column
        of a one-vector batch — bitwise the in-memory Jacobi result.
        """
        if isinstance(graph, ShardedWebGraph):
            chosen = method or self.method
            if chosen != "jacobi":
                raise ValueError(
                    f"method {chosen!r} is not available on the sharded "
                    "backend; only the Jacobi block iteration runs "
                    "shard-by-shard"
                )
            if solver_options:
                raise ValueError(
                    "solver options "
                    f"{sorted(solver_options)} are not supported on the "
                    "sharded backend"
                )
            batch = self.solve_many(
                graph,
                [v],
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                check=check,
            )
            return batch.column(0)
        bundle = self.bundle(graph)
        jump = _resolve_jump(graph.num_nodes, v)
        return dispatch_solve(
            method or self.method,
            bundle.transition_t,
            jump,
            damping=damping,
            tol=tol,
            max_iter=max_iter,
            check=check,
            **solver_options,
        )

    # ------------------------------------------------------------------
    # stacked solves
    # ------------------------------------------------------------------

    def solve_many(
        self,
        graph: WebGraph,
        vectors: Union[np.ndarray, Sequence[JumpLike]],
        *,
        damping: float = 0.85,
        tol: float = 1e-12,
        max_iter: int = 10_000,
        check: bool = True,
        labels: Optional[Sequence[str]] = None,
        policy=None,
        supervisor: Union[None, SupervisorPolicy, TaskSupervisor] = None,
    ) -> BatchResult:
        """Solve ``k`` stacked jump vectors in one batched pass.

        Parameters
        ----------
        vectors:
            An ``(n, k)`` array whose columns are jump vectors, or a
            sequence of jump specs (``None`` → uniform, arrays, node-id
            iterables — the same convention as
            :func:`~repro.core.pagerank.pagerank`).
        check:
            Raise :class:`~repro.errors.ConvergenceError` if any column
            fails to converge (the default — a silently unconverged
            column poisons the mass estimates downstream).
        labels:
            Per-column names; under a ``policy`` they key checkpoint
            subdirectories and the ``reports`` dict.
        policy:
            Optional :class:`~repro.runtime.resilient.RuntimePolicy`.
            Each column then runs through its own labeled
            :class:`FallbackSolver` — checkpoint/resume, escalation and
            budgets apply per column, exactly as in the sequential
            pipeline of PR 1.
        supervisor:
            Optional :class:`~repro.runtime.supervisor.TaskSupervisor`
            (or bare :class:`SupervisorPolicy`).  Columns are then
            solved as one supervised task each — per-column retry with
            backoff, and partial-result salvage (a faulted column is
            re-solved alone; completed columns are kept).  The block
            kernel is column-separable bitwise, so the supervised
            per-column results are identical to the stacked pass.
            Mutually exclusive with ``policy``.
        """
        n = graph.num_nodes
        if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
            stacked = np.array(vectors, dtype=np.float64, copy=True)
            if stacked.shape[0] != n:
                raise ValueError(
                    f"stacked vectors have {stacked.shape[0]} rows, "
                    f"expected {n}"
                )
        else:
            columns = [_resolve_jump(n, spec) for spec in vectors]
            stacked = np.stack(columns, axis=1).astype(np.float64)
        _validate_block(stacked, damping, tol)
        k = stacked.shape[1]
        if labels is None:
            labels = [f"col{j}" for j in range(k)]
        elif len(labels) != k:
            raise ValueError(
                f"{len(labels)} labels for {k} stacked vectors"
            )
        if policy is not None and supervisor is not None:
            raise ValueError(
                "pass either a runtime policy or a task supervisor, "
                "not both (the policy path has its own per-column "
                "resilience)"
            )
        if isinstance(graph, ShardedWebGraph):
            if policy is not None:
                raise ValueError(
                    "runtime policies need the assembled operator and "
                    "are not available on the sharded backend; pass a "
                    "task supervisor to schedule the shard sweep instead"
                )
            return self._solve_sharded(
                graph, stacked, labels, damping, tol, max_iter, check,
                supervisor,
            )
        bundle = self.bundle(graph)

        tele = get_telemetry()
        counters: Dict[str, int] = {}
        if not tele.enabled:
            return self._run_batch(
                bundle, stacked, labels, damping, tol, max_iter, check,
                policy, supervisor, counters,
            )
        with tele.span("solve:batch", columns=k) as sp:
            result = self._run_batch(
                bundle, stacked, labels, damping, tol, max_iter, check,
                policy, supervisor, counters,
            )
            tele.inc("engine.batched_solves")
            tele.inc("engine.columns", k)
            if counters.get("polish_sweeps"):
                tele.inc(
                    "precision.polish_sweeps", counters["polish_sweeps"]
                )
            if counters.get("low_sweeps"):
                tele.inc("precision.low_sweeps", counters["low_sweeps"])
            for j, label in enumerate(labels):
                tele.event(
                    "solver.column",
                    label=label,
                    iterations=int(result.iterations[j]),
                    converged=bool(result.converged[j]),
                    method=result.method,
                )
            sp.set("method", result.method)
            sp.set("max_iterations", int(result.iterations.max(initial=0)))
            return result

    def _run_batch(
        self,
        bundle: OperatorBundle,
        stacked: np.ndarray,
        labels: Sequence[str],
        damping: float,
        tol: float,
        max_iter: int,
        check: bool,
        policy,
        supervisor=None,
        counters: Optional[Dict[str, int]] = None,
    ) -> BatchResult:
        """The untraced core of :meth:`solve_many`."""
        k = stacked.shape[1]
        if policy is not None:
            if self.precision != "float64":
                raise ValueError(
                    "runtime policies run the sequential float64 "
                    "fallback chains; adaptive precision is not "
                    "available under a policy"
                )
            return self._solve_with_policy(
                bundle, stacked, labels, damping, tol, max_iter, check,
                policy,
            )
        if supervisor is not None:
            result = self._solve_supervised(
                bundle, stacked, labels, damping, tol, max_iter,
                supervisor,
            )
        else:
            result = _block_jacobi(
                bundle,
                stacked,
                damping=damping,
                tol=tol,
                max_iter=max_iter,
                check_every=self.check_every,
                labels=labels,
                precision=self.precision,
                counters=counters,
            )
        if check and not bool(result.converged.all()):
            bad = [
                labels[j]
                for j in range(k)
                if not result.converged[j]
            ]
            raise ConvergenceError(
                f"batched solve did not converge for column(s) "
                f"{', '.join(bad)} within {max_iter} iterations; pass "
                "check=False for best-effort vectors or a runtime "
                "policy for per-column fallback",
                result=result.column(labels.index(bad[0])),
            )
        return result

    def _solve_sharded(
        self,
        graph: ShardedWebGraph,
        stacked: np.ndarray,
        labels: Sequence[str],
        damping: float,
        tol: float,
        max_iter: int,
        check: bool,
        supervisor=None,
    ) -> BatchResult:
        """Batched solve against the out-of-core backend.

        The shard operator and its per-shard blocks live in the
        engine's dedicated ``shard_cache`` LRU; a supervisor, when
        given, schedules the per-iteration shard sweep (per-shard retry
        with salvage) instead of per-column solves — the block products
        are pure tasks, so supervised execution stays bitwise identical
        to the serial sweep.
        """
        # lazy import: perf.sharded imports BatchResult from this module
        from .sharded import sharded_block_jacobi, sharded_operator_for

        op = sharded_operator_for(self.shard_cache, graph)
        tele = get_telemetry()
        counters: Dict[str, int] = {}
        if tele.enabled:
            with tele.span(
                "solve:sharded",
                columns=stacked.shape[1],
                shards=graph.num_shards,
            ) as sp:
                result = sharded_block_jacobi(
                    op, stacked,
                    damping=damping, tol=tol, max_iter=max_iter,
                    check_every=self.check_every, labels=labels,
                    supervisor=supervisor, precision=self.precision,
                    counters=counters,
                )
                tele.inc("engine.sharded_solves")
                if counters.get("polish_sweeps"):
                    tele.inc(
                        "precision.polish_sweeps",
                        counters["polish_sweeps"],
                    )
                if counters.get("low_sweeps"):
                    tele.inc(
                        "precision.low_sweeps", counters["low_sweeps"]
                    )
                sp.set("max_iterations",
                       int(result.iterations.max(initial=0)))
        else:
            result = sharded_block_jacobi(
                op, stacked,
                damping=damping, tol=tol, max_iter=max_iter,
                check_every=self.check_every, labels=labels,
                supervisor=supervisor, precision=self.precision,
                counters=counters,
            )
        if check and not bool(result.converged.all()):
            bad = [
                labels[j]
                for j in range(stacked.shape[1])
                if not result.converged[j]
            ]
            raise ConvergenceError(
                f"sharded batched solve did not converge for column(s) "
                f"{', '.join(bad)} within {max_iter} iterations; pass "
                "check=False for best-effort vectors",
                result=result.column(labels.index(bad[0])),
            )
        return result

    def _solve_supervised(
        self,
        bundle: OperatorBundle,
        stacked: np.ndarray,
        labels: Sequence[str],
        damping: float,
        tol: float,
        max_iter: int,
        supervisor,
    ) -> BatchResult:
        """Per-column solves under a :class:`TaskSupervisor`.

        Each column is one task of a fixed plan; the supervisor retries
        faulted columns with backoff and salvages completed ones.  The
        block kernel is column-separable bitwise (each column's iterate
        evolves independently and freezes on its own residual), so
        assembling the per-column results reproduces the stacked pass
        exactly.  Execution is in-process — the operator bundle stays
        shared, and a column solve is pure CPU with no pool to lose.
        """
        if not isinstance(supervisor, TaskSupervisor):
            supervisor = TaskSupervisor(supervisor)
        n, k = stacked.shape
        tasks = [
            (
                j,
                bundle,
                np.ascontiguousarray(stacked[:, j : j + 1]),
                damping,
                tol,
                max_iter,
                self.check_every,
                self.precision,
            )
            for j in range(k)
        ]
        report = supervisor.run(
            _solve_column_task, tasks, label="solve_many"
        )
        scores = np.empty_like(stacked)
        iterations = np.zeros(k, dtype=np.int64)
        residuals = np.full(k, np.inf)
        converged = np.zeros(k, dtype=bool)
        for j, column in enumerate(report.results):
            scores[:, j] = column.scores[:, 0]
            iterations[j] = column.iterations[0]
            residuals[j] = column.residuals[0]
            converged[j] = column.converged[0]
        return BatchResult(
            scores, iterations, residuals, converged,
            _method_name(self.precision), labels,
        )

    def _solve_with_policy(
        self,
        bundle: OperatorBundle,
        stacked: np.ndarray,
        labels: Sequence[str],
        damping: float,
        tol: float,
        max_iter: int,
        check: bool,
        policy,
    ) -> BatchResult:
        """Per-column resilient solves sharing the cached operator."""
        n, k = stacked.shape
        scores = np.empty_like(stacked)
        iterations = np.zeros(k, dtype=np.int64)
        residuals = np.full(k, np.inf)
        converged = np.zeros(k, dtype=bool)
        reports: Dict[str, object] = {}
        for j, label in enumerate(labels):
            solver = policy.make_solver(label, tol=tol, max_iter=max_iter)
            result = solver.solve(
                bundle.transition_t,
                stacked[:, j],
                damping=damping,
                resume=policy.resume,
            )
            scores[:, j] = result.scores
            iterations[j] = result.iterations
            residuals[j] = result.residual
            converged[j] = result.converged
            reports[label] = result.report
        batch = BatchResult(
            scores, iterations, residuals, converged,
            "fallback_chain", labels, reports=reports,
        )
        if check and not bool(converged.all()):
            bad = [labels[j] for j in range(k) if not converged[j]]
            raise ConvergenceError(
                "resilient batched solve did not converge for the "
                f"{' and '.join(bad)} column(s); pass check=False to "
                "accept the best-effort vectors",
                result=batch.column(labels.index(bad[0])),
            )
        return batch

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------

    def update_many(
        self,
        application,
        previous: Union[BatchResult, np.ndarray],
        vectors: Union[np.ndarray, Sequence[JumpLike]],
        *,
        damping: float = 0.85,
        tol: float = 1e-12,
        max_iter: int = 10_000,
        check: bool = True,
        labels: Optional[Sequence[str]] = None,
    ):
        """Warm-start a batched solve from a previous solution.

        Instead of iterating from the jump vector, seed the residual of
        the mutated system at ``previous`` (supported only on the
        delta's touched out-rows) and run Gauss–Southwell residual
        pushes until the global residual meets the same ``tol`` as a
        cold solve — see :mod:`repro.perf.incremental`.

        Parameters
        ----------
        application:
            A :class:`~repro.graph.delta.DeltaApplication` pairing the
            previous graph with the mutated one — or a *sequence* of
            chained applications, which are coalesced into one composed
            splice and one warm solve
            (:func:`~repro.graph.delta.compose_applications`): the
            batch pays one operator derivation and one residual seed
            for the whole window, with net-cancelling edits dropping
            out entirely.  The operator bundle for the mutated graph is
            *derived* from the cached parent bundle when possible
            (touched columns respliced, child fingerprint derived in
            O(|delta|)).
        previous:
            The converged :class:`BatchResult` of the same ``vectors``
            on the (first) application's ``before`` graph, or a bare
            ``(n, k)`` score array.
        vectors:
            Same conventions as :meth:`solve_many`; must be the jump
            vectors the previous solution was computed with.
        """
        from ..graph.delta import compose_applications
        from .incremental import push_update

        if isinstance(application, (list, tuple)):
            application = compose_applications(application)
        if isinstance(application.after, ShardedWebGraph):
            raise ValueError(
                "incremental push updates need the assembled in-memory "
                "operator; solve the delta-derived sharded graph with "
                "solve_many (its shard operator derives cheaply via "
                "the shard cache)"
            )
        n = application.after.num_nodes
        if isinstance(vectors, np.ndarray) and vectors.ndim == 2:
            stacked = np.array(vectors, dtype=np.float64, copy=True)
        else:
            stacked = np.stack(
                [_resolve_jump(n, spec) for spec in vectors], axis=1
            ).astype(np.float64)
        _validate_block(stacked, damping, tol)
        k = stacked.shape[1]
        prev_iterations = None
        if isinstance(previous, BatchResult):
            prev_scores = previous.scores
            prev_iterations = previous.iterations
        else:
            prev_scores = np.asarray(previous, dtype=np.float64)
        if prev_scores.shape != (n, k):
            raise ValueError(
                f"previous scores have shape {prev_scores.shape}, "
                f"expected {(n, k)}"
            )
        if labels is None:
            labels = [f"col{j}" for j in range(k)]
        elif len(labels) != k:
            raise ValueError(f"{len(labels)} labels for {k} stacked vectors")
        bundle = self.cache.derive_for(application)

        tele = get_telemetry()
        if tele.enabled:
            with tele.span(
                "solve:incremental",
                columns=k,
                touched=len(application.touched_sources),
                delta=len(application.delta),
            ) as sp:
                result = push_update(
                    bundle, application, prev_scores, stacked,
                    damping=damping, tol=tol, max_iter=max_iter,
                    labels=labels, prev_iterations=prev_iterations,
                    precision=self.precision,
                )
                tele.inc("engine.incremental_updates")
                tele.inc("incremental.pushes", result.stats.pushes)
                tele.inc("incremental.sweeps", result.stats.sweeps)
                if result.stats.escapes:
                    tele.inc("incremental.escapes", result.stats.escapes)
                if result.stats.polish_sweeps:
                    tele.inc(
                        "precision.polish_sweeps",
                        result.stats.polish_sweeps,
                    )
                tele.event(
                    "incremental.update",
                    sweeps=result.stats.sweeps,
                    pushes=result.stats.pushes,
                    max_frontier=result.stats.max_frontier,
                    escapes=result.stats.escapes,
                    correction_gain=round(
                        result.stats.correction_gain, 4
                    ),
                    speedup_estimate=round(
                        result.stats.speedup_estimate, 2
                    ),
                )
                sp.set("sweeps", result.stats.sweeps)
                sp.set("pushes", result.stats.pushes)
                sp.set("max_frontier", result.stats.max_frontier)
                sp.set("escapes", result.stats.escapes)
                sp.set(
                    "speedup_estimate",
                    round(result.stats.speedup_estimate, 2),
                )
        else:
            result = push_update(
                bundle, application, prev_scores, stacked,
                damping=damping, tol=tol, max_iter=max_iter,
                labels=labels, prev_iterations=prev_iterations,
                precision=self.precision,
            )
        if check and not bool(result.converged.all()):
            bad = [
                labels[j] for j in range(k) if not result.converged[j]
            ]
            raise ConvergenceError(
                f"incremental update did not converge for column(s) "
                f"{', '.join(bad)} within {max_iter} sweeps; re-run a "
                "cold solve_many on the mutated graph",
                result=result.column(labels.index(bad[0])),
            )
        return result

    # ------------------------------------------------------------------
    # Monte Carlo
    # ------------------------------------------------------------------

    def montecarlo(
        self,
        graph: WebGraph,
        v: Optional[np.ndarray] = None,
        *,
        damping: float = 0.85,
        num_walks: int = 100_000,
        workers: Optional[int] = None,
        seed: int = 0,
        max_walk_length: int = 1_000,
    ):
        """Parallel Monte-Carlo PageRank (deterministic in ``seed`` and
        ``workers``); see
        :func:`repro.perf.parallel.pagerank_montecarlo_parallel`."""
        from .parallel import pagerank_montecarlo_parallel

        return pagerank_montecarlo_parallel(
            graph,
            v,
            damping=damping,
            num_walks=num_walks,
            workers=workers if workers is not None else self.workers,
            seed=seed,
            max_walk_length=max_walk_length,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PagerankEngine(cache={self.cache!r}, "
            f"method={self.method!r}, check_every={self.check_every}, "
            f"precision={self.precision!r})"
        )


# ----------------------------------------------------------------------
# the block kernel
# ----------------------------------------------------------------------


def _method_name(precision: str) -> str:
    return (
        "batched_jacobi" if precision == "float64"
        else "batched_jacobi_adaptive"
    )


def _solve_column_task(
    column_index: int,
    bundle: OperatorBundle,
    column: np.ndarray,
    damping: float,
    tol: float,
    max_iter: int,
    check_every: int,
    precision: str = "float64",
) -> BatchResult:
    """One supervised column solve (module-level so supervised pool
    execution and chaos wrappers can reference it by name).

    ``column_index`` identifies the task to the supervision layer and
    to chaos injectors keyed on it; the solve depends only on the
    remaining arguments.
    """
    del column_index
    return _block_jacobi(
        bundle,
        column,
        damping=damping,
        tol=tol,
        max_iter=max_iter,
        check_every=check_every,
        labels=["col"],
        precision=precision,
    )


def _low_precision_phase(
    tt_ss32,
    tt_ds32,
    z: np.ndarray,
    b_s: np.ndarray,
    *,
    damping: float,
    tol: float,
    check_every: int,
    max_sweeps: int,
) -> "tuple[np.ndarray, int]":
    """Float32 sweeps down to the relaxed tier; returns (iterate, sweeps).

    The loop mirrors the float64 kernel step for step (fused plain
    sweeps, then one measured sweep with the full-vector residual) but
    runs every column together against the cast operator — no freezing,
    the phase is cheap and short.  It exits on reaching
    ``max(tol, ADAPTIVE_TIER)``, on a stalled residual (the float32
    floor), or on ``max_sweeps``; the caller promotes the iterate to
    float64 and polishes.
    """
    tier = max(tol, ADAPTIVE_TIER)
    z32 = z.astype(np.float32)
    b32 = b_s.astype(np.float32)
    c = np.float32(damping)
    has_dangling = tt_ds32.shape[0] > 0
    sweeps = 0
    prev_worst = np.inf
    while sweeps < max_sweeps:
        plain_steps = min(check_every, max_sweeps - sweeps) - 1
        for _ in range(plain_steps):
            z_next = tt_ss32 @ z32
            z_next *= c
            z_next += b32
            z32 = z_next
            sweeps += 1
        z_prev = z32
        z32 = tt_ss32 @ z32
        z32 *= c
        z32 += b32
        sweeps += 1
        dz = z32 - z_prev
        res = np.abs(dz).sum(axis=0)
        if has_dangling:
            res = res + c * np.abs(tt_ds32 @ dz).sum(axis=0)
        worst = float(res.max(initial=0.0))
        if worst < tier or worst >= ADAPTIVE_STALL * prev_worst:
            break
        prev_worst = worst
    return z32.astype(np.float64), sweeps


def _block_jacobi(
    bundle: OperatorBundle,
    vectors: np.ndarray,
    *,
    damping: float,
    tol: float,
    max_iter: int,
    check_every: int,
    labels: Sequence[str],
    precision: str = "float64",
    counters: Optional[Dict[str, int]] = None,
) -> BatchResult:
    """Dangling-restricted block Jacobi over stacked jump vectors."""
    _validate_precision(precision)
    method = _method_name(precision)
    c = damping
    n, k = vectors.shape
    jump = (1.0 - c) * vectors
    s = bundle.non_dangling
    d = bundle.dangling
    scores = np.empty_like(vectors)
    iterations = np.zeros(k, dtype=np.int64)
    residuals = np.full(k, np.inf)
    converged = np.zeros(k, dtype=bool)

    if len(s) == 0:
        # edgeless graph: (I - cTᵀ) = I, the solution is the jump term,
        # reached exactly after one formal iteration
        scores[:] = jump
        iterations[:] = 1
        residuals[:] = 0.0
        converged[:] = True
        return BatchResult(
            scores, iterations, residuals, converged, method, labels,
        )

    tt_ss = bundle.tt_ss
    tt_ds = bundle.tt_ds
    b_s = np.ascontiguousarray(jump[s, :])
    z = np.array(vectors[s, :], dtype=np.float64)  # p⁽⁰⁾ = v, as in jacobi()
    active = np.arange(k)

    low_sweeps = 0
    if precision == "adaptive":
        # leave the polish at least one full check window
        z, low_sweeps = _low_precision_phase(
            bundle.tt_ss32,
            bundle.tt_ds32,
            z,
            b_s,
            damping=c,
            tol=tol,
            check_every=check_every,
            max_sweeps=max(max_iter - check_every, 1),
        )
        if counters is not None:
            counters["low_sweeps"] = (
                counters.get("low_sweeps", 0) + low_sweeps
            )

    def _freeze(cols_in_active: np.ndarray, res: np.ndarray, it: int,
                ok: bool) -> None:
        cols = active[cols_in_active]
        z_cols = z[:, cols_in_active]
        scores[np.ix_(s, cols)] = z_cols
        expanded = tt_ds @ z_cols
        expanded *= c
        expanded += jump[np.ix_(d, cols)]
        scores[np.ix_(d, cols)] = expanded
        iterations[cols] = it
        residuals[cols] = res[cols_in_active]
        converged[cols] = ok

    it = low_sweeps  # iteration counts include the float32 phase
    while it < max_iter and len(active):
        # fused update steps, no residual bookkeeping
        plain_steps = min(check_every, max_iter - it) - 1
        for _ in range(plain_steps):
            z_next = tt_ss @ z
            z_next *= c
            z_next += b_s
            z = z_next
            it += 1
        # measured step: full-vector L1 change = restricted change plus
        # the dangling change it induces through (Tᵀ)_DS
        z_prev = z
        z = tt_ss @ z
        z *= c
        z += b_s
        it += 1
        dz = z - z_prev
        res = np.abs(dz).sum(axis=0)
        if len(d):
            res = res + c * np.abs(tt_ds @ dz).sum(axis=0)
        done = res < tol
        if done.any():
            _freeze(np.flatnonzero(done), res, it, True)
            keep = ~done
            if not keep.any():
                active = active[:0]
                break
            active = active[keep]
            z = np.ascontiguousarray(z[:, keep])
            b_s = np.ascontiguousarray(b_s[:, keep])
        elif it >= max_iter:
            _freeze(np.arange(len(active)), res, it, False)
            active = active[:0]

    if len(active):  # pragma: no cover - defensive (loop always drains)
        _freeze(np.arange(len(active)), np.full(len(active), np.inf),
                it, False)

    if counters is not None and precision == "adaptive":
        counters["polish_sweeps"] = (
            counters.get("polish_sweeps", 0) + (it - low_sweeps)
        )

    return BatchResult(
        scores, iterations, residuals, converged, method, labels,
    )


# ----------------------------------------------------------------------
# the shared default engine
# ----------------------------------------------------------------------

_default_engine: Optional[PagerankEngine] = None
_engine_lock = threading.Lock()


def get_engine() -> PagerankEngine:
    """The process-wide shared engine (created on first use).

    Every internal caller — :func:`repro.core.pagerank.pagerank`,
    :func:`repro.core.mass.estimate_spam_mass`, the experiment runners,
    TrustRank — routes through this instance unless handed an explicit
    engine, so one graph's operator is built once per process.
    """
    global _default_engine
    with _engine_lock:
        if _default_engine is None:
            _default_engine = PagerankEngine()
        return _default_engine


def set_engine(engine: Optional[PagerankEngine]) -> Optional[PagerankEngine]:
    """Replace the shared engine; returns the previous one.

    Pass ``None`` to reset (a fresh default engine is created on the
    next :func:`get_engine` call).
    """
    global _default_engine
    with _engine_lock:
        previous = _default_engine
        _default_engine = engine
        return previous


def configure_engine(
    cache_size: int = DEFAULT_CACHE_SIZE,
    *,
    method: str = "jacobi",
    check_every: int = DEFAULT_CHECK_EVERY,
    workers: Optional[int] = None,
    precision: str = "float64",
) -> PagerankEngine:
    """Build a fresh engine with the given knobs and install it as the
    shared default (the CLI's ``--cache-size``/``--workers``/
    ``--precision`` end up here).  Returns the new engine."""
    engine = PagerankEngine(
        cache_size, method=method, check_every=check_every,
        workers=workers, precision=precision,
    )
    set_engine(engine)
    return engine
