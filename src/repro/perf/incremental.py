"""Gauss–Southwell residual-push updates for evolving host graphs.

A cold batched solve treats every ranking as independent, but the
paper's deployment (Section 5) is a crawl that keeps moving: between
two rankings only a sparse edge delta changes.  Perturbation analysis
(Avrachenkov & Litvak; Fercoq's MaxRank formulation) makes the locality
precise — an edge delta perturbs the linear system

.. math:: p = c\\,T^T p + (1-c)\\,v

only in the columns of the touched sources, so the *previous* solution
is an excellent starting iterate whose residual is supported on the
out-neighbourhoods of the touched nodes.  This module exploits that:

1. **Seed.**  For every touched source ``s``, subtract
   ``(c/d_old)·p_s`` along the old out-row and add ``(c/d_new)·p_s``
   along the new one.  The result is exactly the residual
   ``R = (1-c)V + c T'^T P_old − P_old`` of the *new* system at the old
   solution (common neighbours net out to the weight difference), with
   ``‖R‖₁ ≈ Σ_s c·p_s·‖Δrow_s‖₁`` — tiny when churn hits low-PageRank
   or previously-isolated hosts, as spam-farm appearance does.
2. **Push.**  Gauss–Southwell sweeps: pick the frontier of rows whose
   residual mass exceeds a floor, absorb their residual into the
   iterate, and scatter ``c/outdeg`` of it along their out-edges (one
   CSR row-slice + one C-level sparse·dense product per sweep, both
   jump vectors in one pass).  Dangling rows absorb without
   scattering, so no dangling restriction is needed.  Each sweep
   contracts the global residual by at least ``1 − (1−c)·¾`` (rows
   below the floor hold < tol/4 in total), so termination at the cold
   solve's ``tol`` is guaranteed.
3. **Diffusion escape.**  When the frontier widens past
   ``n / DENSE_CROSSOVER`` rows, row-slicing costs more per sweep than
   a full iteration, so the kernel hands the *remaining correction* to
   the cold block kernel: the error ``e`` of the current iterate
   satisfies ``(I − c·Tᵀ)·e = R``, which is the PageRank system with
   jump vector ``R/(1−c)`` — solved by the same dangling-restricted
   block Jacobi the cold path uses, at the same ``tol``, but starting
   from a residual that is orders of magnitude smaller.  The
   warm-start advantage survives diffusion; only the locality
   advantage is lost.  Two refinements close most of the remaining
   gap on diffuse churn:

   * **Early escape.**  A seed frontier that is already wide *and*
     alive — enough frontier rows can scatter (non-dangling) to keep
     it wide — escapes before the first sweep instead of paying two
     full-frontier row-slicing sweeps to discover the diffusion.  A
     wide-but-dead seed (spam-farm churn lands on dangling leaves and
     collapses after one absorb) keeps the push path.
   * **Low-rank jump correction.**  Before the escape solve, the
     residual is deflated against the span of ``(I − c·T'ᵀ)·P_prev``
     (one matvec per previous-solution column): the singular-
     perturbation view of the damping factor (Avrachenkov–Litvak)
     says a delta that predominantly perturbs dangling mass or the
     jump vector produces a residual aligned with those directions,
     whose solve is *known* — it is the previous solution itself.
     The least-squares coefficient is accepted per column only when
     it removes a substantial fraction of the residual (exact
     algebra either way; the guard only protects the escape from a
     useless start), and the cold kernel then runs warm-started from
     the corrected iterate on the deflated residual.
4. **Freeze.**  A column whose global L1 residual drops below ``tol``
   absorbs its remaining residual once (a free terminal push) and
   leaves the active set.

The stopping criterion — global L1 *residual* below ``tol`` for pushed
columns, the cold kernel's own criterion for escaped ones — matches or
exceeds the cold solve's; the differential tests pin agreement with a
cold solve to ``10·tol`` per node across the full solver zoo.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from ..errors import ConvergenceError
from ..graph.delta import DeltaApplication
from .cache import OperatorBundle
from .engine import BatchResult, _block_jacobi

__all__ = ["IncrementalResult", "PushStats", "push_update", "seed_residual"]

#: Rows whose residual mass stays below ``tol * FLOOR_FRACTION / n``
#: are never pushed; the total mass they can withhold is bounded by
#: ``tol * FLOOR_FRACTION``, which both preserves the convergence
#: guarantee and keeps the frontier local under sparse churn.
FLOOR_FRACTION = 0.25

#: When the frontier exceeds ``n / DENSE_CROSSOVER`` rows the residual
#: has diffused graph-wide and CSR row-slicing costs more per sweep
#: than a full iteration; the kernel then solves the remaining
#: correction with the cold block kernel instead (see the module
#: docstring, "Diffusion escape").
DENSE_CROSSOVER = 64

#: The low-rank jump correction is kept per column only when it shrinks
#: the escape residual's L1 norm to at most this fraction — a weaker
#: projection means the delta is not jump-vector-shaped and the plain
#: warm start is already the best iterate available.
CORRECTION_ACCEPT = 0.5


class PushStats:
    """Work accounting of one incremental update (telemetry payload)."""

    __slots__ = (
        "sweeps",
        "pushes",
        "max_frontier",
        "colwork",
        "seed_sources",
        "seed_norms",
        "seed_frontier",
        "live_seed_frontier",
        "escapes",
        "escape_sweeps",
        "correction_cols",
        "correction_gain",
        "polish_sweeps",
        "cold_work_estimate",
        "speedup_estimate",
    )

    def __init__(self) -> None:
        self.sweeps = 0
        self.pushes = 0
        self.max_frontier = 0
        self.colwork = 0
        self.seed_sources = 0
        self.seed_norms: Optional[np.ndarray] = None
        self.seed_frontier = 0
        self.live_seed_frontier = 0
        self.escapes = 0
        self.escape_sweeps = 0
        self.correction_cols = 0
        self.correction_gain = 1.0
        self.polish_sweeps = 0
        self.cold_work_estimate = 0
        self.speedup_estimate = 0.0

    def as_dict(self) -> dict:
        return {
            "sweeps": self.sweeps,
            "pushes": self.pushes,
            "max_frontier": self.max_frontier,
            "colwork": self.colwork,
            "seed_sources": self.seed_sources,
            "seed_norms": (
                [float(x) for x in self.seed_norms]
                if self.seed_norms is not None
                else []
            ),
            "seed_frontier": self.seed_frontier,
            "live_seed_frontier": self.live_seed_frontier,
            "escapes": self.escapes,
            "escape_sweeps": self.escape_sweeps,
            "correction_cols": self.correction_cols,
            "correction_gain": self.correction_gain,
            "polish_sweeps": self.polish_sweeps,
            "cold_work_estimate": self.cold_work_estimate,
            "speedup_estimate": self.speedup_estimate,
        }


class IncrementalResult(BatchResult):
    """A :class:`BatchResult` plus push-solver work accounting."""

    __slots__ = ("stats",)

    def __init__(self, *args, stats: PushStats, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.stats = stats


def _gather_rows(graph, srcs: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the out-rows of ``srcs`` (counts = their degrees)."""
    starts = graph.indptr[srcs]
    offsets = np.arange(int(counts.sum()), dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return graph.indices[np.repeat(starts, counts) + offsets]


def seed_residual(
    application: DeltaApplication,
    previous_scores: np.ndarray,
    *,
    damping: float,
) -> np.ndarray:
    """Residual of the *new* system at the old solution, seeded sparsely.

    Only the touched sources' out-rows are visited, so the cost is
    O(Σ deg of touched nodes), independent of graph size.
    """
    touched = application.touched_sources
    residual = np.zeros_like(previous_scores)
    for graph, sign in ((application.before, -1.0), (application.after, 1.0)):
        deg = graph.out_degree()[touched]
        live = deg > 0
        srcs = touched[live]
        counts = deg[live]
        if len(srcs) == 0:
            continue
        targets = _gather_rows(graph, srcs, counts)
        weights = np.repeat(sign * damping / counts, counts)
        contribution = weights[:, None] * previous_scores[
            np.repeat(srcs, counts)
        ]
        np.add.at(residual, targets, contribution)
    return residual


def _deflate_residual(
    bundle: OperatorBundle,
    active_residual: np.ndarray,
    basis: np.ndarray,
    damping: float,
):
    """Guarded least-squares deflation of the escape residual.

    For basis columns ``P`` (previous-solution vectors) the image
    ``Y = (I − c·T'ᵀ)·P`` is exact (one matvec per column), and any
    component ``Y·γ`` of the residual has the *known* solve ``P·γ``.
    The remainder ``R − Y·γ`` is therefore an exactly equivalent
    right-hand side for the escape kernel, warm-started at ``P·γ``.
    Acceptance is per column and guarded: a correction is kept only
    when it removes at least ``1 − CORRECTION_ACCEPT`` of the L1 mass
    (a weak projection would just add two matvecs of noise).

    Returns ``(start, deflated, gains, accepted)`` where ``start`` is
    the warm-start correction (``None`` when nothing was accepted),
    ``deflated`` the residual to hand to the escape solve, ``gains``
    the per-column post/pre L1 ratio and ``accepted`` the mask.
    """
    tt = bundle.transition_t
    image = basis - damping * (tt @ basis)
    gamma, *_ = np.linalg.lstsq(image, active_residual, rcond=None)
    candidate = active_residual - image @ gamma
    before = np.abs(active_residual).sum(axis=0)
    after = np.abs(candidate).sum(axis=0)
    gains = np.where(before > 0.0, after / np.maximum(before, 1e-300), 1.0)
    accepted = gains <= CORRECTION_ACCEPT
    if not accepted.any():
        return None, active_residual, gains, accepted
    gamma = gamma * accepted[None, :]
    start = basis @ gamma
    deflated = active_residual.copy()
    deflated[:, accepted] = candidate[:, accepted]
    return start, deflated, gains, accepted


def push_update(
    bundle: OperatorBundle,
    application: DeltaApplication,
    previous_scores: np.ndarray,
    vectors: np.ndarray,
    *,
    damping: float,
    tol: float,
    max_iter: int,
    labels: Sequence[str],
    prev_iterations: Optional[np.ndarray] = None,
    precision: str = "float64",
) -> IncrementalResult:
    """Run the residual-push update; returns scores at the cold ``tol``.

    ``bundle`` must be the operator bundle of ``application.after``
    (typically from :meth:`OperatorCache.derive_for`);
    ``previous_scores`` is the ``(n, k)`` solution on
    ``application.before`` for the same stacked jump ``vectors``.
    ``precision`` applies to the escape kernel only — push sweeps are
    float64 regardless (they are sparse and accuracy-critical).
    """
    c = damping
    after = application.after
    n, k = previous_scores.shape
    stats = PushStats()
    stats.seed_sources = len(application.touched_sources)

    residual = seed_residual(application, previous_scores, damping=c)
    stats.seed_norms = np.abs(residual).sum(axis=0)

    # scatter operator: row s of cT' holds c/outdeg(s) on s's out-edges,
    # assembled directly from the mutated graph's CSR (no transpose).
    # Built lazily — an update that escapes before its first push sweep
    # (wide live seed) never pays the O(edges) assembly.
    out_deg = after.out_degree()
    ct_rows: Optional[sparse.csr_matrix] = None

    def _scatter_operator() -> sparse.csr_matrix:
        nonlocal ct_rows
        if ct_rows is None:
            inv = np.zeros(n)
            scattering = out_deg > 0
            inv[scattering] = c / out_deg[scattering]
            ct_rows = sparse.csr_matrix(
                (np.repeat(inv, out_deg), after.indices, after.indptr),
                shape=(n, n),
            )
        return ct_rows

    scores = previous_scores.astype(np.float64, copy=True)
    iterations = np.zeros(k, dtype=np.int64)
    residuals = np.zeros(k, dtype=np.float64)
    converged = np.zeros(k, dtype=bool)
    floor = tol * FLOOR_FRACTION / max(n, 1)
    dense_cutoff = max(32, n // DENSE_CROSSOVER)

    cols = np.arange(k)
    totals = np.abs(residual).sum(axis=0)

    def _freeze(local: np.ndarray, sweep: int) -> None:
        frozen = cols[local]
        # terminal absorb: adding the sub-tol residual once is a free
        # push that tightens the iterate without another sweep
        scores[:, frozen] += residual[:, frozen]
        iterations[frozen] = sweep
        residuals[frozen] = totals[frozen]
        converged[frozen] = True

    sweep = 0
    prev_wide = False
    while len(cols):
        done = totals[cols] < tol
        if done.any():
            _freeze(done, sweep)
            cols = cols[~done]
            if len(cols) == 0:
                break
        if sweep >= max_iter:
            iterations[cols] = sweep
            residuals[cols] = totals[cols]
            break
        active_residual = residual[:, cols]
        row_mass = np.abs(active_residual).sum(axis=1)
        act = np.flatnonzero(row_mass > floor)
        if len(act) == 0:
            # every remaining row is below the floor: totals < tol/4,
            # handled by the freeze at the top of the next pass
            totals[cols] = np.abs(active_residual).sum(axis=0)
            continue
        # a single wide frontier is common even for shallow deltas (the
        # seed lands on every inserted target at once) and can collapse
        # after one absorb; two wide frontiers in a row mean the
        # residual is actually diffusing.  The one exception: a seed
        # frontier that is wide *and alive* — enough of its rows can
        # scatter — cannot collapse, so waiting the two sweeps only
        # pays two full-frontier row-slicing passes for nothing;
        # escape immediately (farm-style churn lands on dangling
        # leaves: wide but dead, and keeps the push path)
        wide = len(act) >= dense_cutoff
        live_rows = int(np.count_nonzero(out_deg[act] > 0))
        if sweep == 0:
            stats.seed_frontier = len(act)
            stats.live_seed_frontier = live_rows
        early = sweep == 0 and wide and live_rows >= dense_cutoff
        if (wide and prev_wide) or early:
            # diffusion escape: solve (I - cT')e = R for the remaining
            # correction with the cold restricted block kernel, warm
            # start intact (the jump R/(1-c) is orders of magnitude
            # smaller than a cold solve's).  First try the low-rank
            # jump correction: deflate R against the known solves of
            # the previous-solution directions and start the kernel
            # from the corrected iterate.
            active_residual = np.ascontiguousarray(active_residual)
            start, deflated, gains, accepted = _deflate_residual(
                bundle, active_residual, previous_scores[:, cols], c
            )
            stats.correction_cols = int(accepted.sum())
            if accepted.any():
                stats.correction_gain = float(gains[accepted].min())
            counters: dict = {}
            correction = _block_jacobi(
                bundle,
                deflated / (1.0 - c),
                damping=c,
                tol=tol,
                max_iter=max(max_iter - sweep, 1),
                check_every=8,
                labels=[labels[j] for j in cols],
                precision=precision,
                counters=counters,
            )
            scores[:, cols] += correction.scores
            if start is not None:
                scores[:, cols] += start
            iterations[cols] = sweep + correction.iterations
            residuals[cols] = correction.residuals
            converged[cols] = correction.converged
            escape_iters = int(correction.iterations.max(initial=0))
            stats.sweeps = sweep + escape_iters
            stats.pushes += n * escape_iters
            stats.max_frontier = n
            stats.colwork += int(after.num_edges) * escape_iters
            stats.escapes = 1
            stats.escape_sweeps = escape_iters
            stats.polish_sweeps = int(counters.get("polish_sweeps", 0))
            cols = cols[:0]
            break
        prev_wide = wide
        delta = active_residual[act]
        scores[np.ix_(act, cols)] += delta
        residual[np.ix_(act, cols)] = 0.0
        scatter = _scatter_operator()[act].T @ delta
        residual[:, cols] += scatter
        totals[cols] = np.abs(residual[:, cols]).sum(axis=0)
        sweep += 1
        stats.sweeps = sweep
        stats.pushes += len(act)
        stats.max_frontier = max(stats.max_frontier, len(act))
        stats.colwork += int(out_deg[act].sum())

    nnz = after.num_edges
    if prev_iterations is not None and len(prev_iterations):
        cold_iters = float(np.mean(prev_iterations))
    else:
        cold_iters = float(max(iterations.max(initial=1), 1))
    seed_work = int(
        application.before.out_degree()[application.touched_sources].sum()
        + out_deg[application.touched_sources].sum()
    )
    stats.cold_work_estimate = int(cold_iters * nnz)
    stats.speedup_estimate = stats.cold_work_estimate / max(
        stats.colwork + seed_work, 1
    )

    return IncrementalResult(
        scores,
        iterations,
        residuals,
        converged,
        "incremental_push",
        labels,
        stats=stats,
    )
