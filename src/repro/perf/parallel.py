"""Deterministic parallel Monte-Carlo PageRank.

Random-walk simulation is embarrassingly parallel — walks never
interact — but naive parallelization trades away reproducibility: the
estimate would depend on how walks were sharded and which worker drew
which random numbers.  This module keeps the estimator exactly
reproducible by fixing both degrees of freedom *before* any process
starts:

* the walk budget is split into a **fixed chunk plan** that depends only
  on ``num_walks`` (never on the worker count), and
* each chunk gets its own :class:`numpy.random.SeedSequence` child
  spawned from the caller's seed, so chunk ``i`` simulates the same
  walks no matter which process runs it or in what order chunks finish.

Chunk estimates combine linearly: each chunk of ``Rᵢ`` walks returns
``scoresᵢ = (1−c)·visitsᵢ/Rᵢ``, and the pooled estimator over
``R = ΣRᵢ`` walks is ``Σ scoresᵢ·Rᵢ/R`` (accumulated in chunk order, so
even float rounding is fixed).  Consequently

``pagerank_montecarlo_parallel(graph, v, num_walks=N, seed=s)``

returns **bitwise-identical** scores for ``workers=1``, ``workers=8``,
or the in-process fallback — the worker count only changes wall time.

If a process pool cannot be created or dies mid-run (sandboxes without
``fork``, memory pressure), the function falls back to running the same
chunk plan sequentially in-process and emits a warning; results are
unchanged.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple

import numpy as np

from ..core.montecarlo import MonteCarloResult, pagerank_montecarlo
from ..core.pagerank import DEFAULT_DAMPING
from ..graph.webgraph import WebGraph
from ..obs import get_telemetry

__all__ = ["plan_chunks", "pagerank_montecarlo_parallel"]

#: Number of independent walk chunks the budget is split into.  Fixed —
#: deliberately NOT derived from the worker count — so the estimate is a
#: pure function of ``(graph, v, damping, num_walks, seed)``.  Eight
#: chunks keep any sensible local worker count busy while adding
#: negligible per-chunk overhead.
DEFAULT_CHUNKS = 8


def plan_chunks(num_walks: int, chunks: int = DEFAULT_CHUNKS) -> List[int]:
    """Split a walk budget into a deterministic chunk plan.

    Near-equal integer shares; the first ``num_walks % chunks`` chunks
    take one extra walk.  Chunks never exceed the budget (small budgets
    produce fewer, single-walk chunks).
    """
    if num_walks < 1:
        raise ValueError("num_walks must be positive")
    if chunks < 1:
        raise ValueError("chunks must be positive")
    chunks = min(chunks, num_walks)
    base, extra = divmod(num_walks, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]


def _simulate_chunk(
    graph: WebGraph,
    v: Optional[np.ndarray],
    damping: float,
    chunk_walks: int,
    seed_seq: np.random.SeedSequence,
    max_walk_length: int,
) -> Tuple[np.ndarray, int, int]:
    """One chunk's walks (module-level so process pools can pickle it)."""
    result = pagerank_montecarlo(
        graph,
        v,
        damping=damping,
        num_walks=chunk_walks,
        rng=np.random.default_rng(seed_seq),
        max_walk_length=max_walk_length,
    )
    return result.scores, result.num_walks, result.total_steps


def pagerank_montecarlo_parallel(
    graph: WebGraph,
    v: Optional[np.ndarray] = None,
    *,
    damping: float = DEFAULT_DAMPING,
    num_walks: int = 100_000,
    workers: Optional[int] = None,
    seed: int = 0,
    chunks: int = DEFAULT_CHUNKS,
    max_walk_length: int = 1_000,
) -> MonteCarloResult:
    """Monte-Carlo PageRank over a process pool, reproducibly.

    Parameters
    ----------
    workers:
        Process count.  ``None``, ``0`` or ``1`` runs the chunk plan
        in-process (no pool); higher values fan chunks out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  The returned
        scores are identical either way.
    seed:
        Root of the per-chunk RNG streams
        (``SeedSequence(seed).spawn(...)``).
    chunks:
        Chunk-plan width; leave at the default unless you need more
        than :data:`DEFAULT_CHUNKS`-way parallelism.  Changing it
        changes the (equally valid) estimate.

    See :func:`repro.core.montecarlo.pagerank_montecarlo` for the
    estimator itself and the remaining parameters.
    """
    plan = plan_chunks(num_walks, chunks)
    streams = np.random.SeedSequence(seed).spawn(len(plan))
    tasks = list(zip(plan, streams))

    outputs: Optional[List[Tuple[np.ndarray, int, int]]] = None
    if workers is not None and workers > 1:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _simulate_chunk,
                        graph, v, damping, chunk_walks, stream,
                        max_walk_length,
                    )
                    for chunk_walks, stream in tasks
                ]
                outputs = [f.result() for f in futures]
        except Exception as exc:  # pool creation or worker death
            warnings.warn(
                f"Monte-Carlo process pool failed ({exc!r}); rerunning "
                "the same chunk plan sequentially in-process — results "
                "are unaffected, only wall time.",
                RuntimeWarning,
                stacklevel=2,
            )
            outputs = None
    if outputs is None:
        outputs = [
            _simulate_chunk(
                graph, v, damping, chunk_walks, stream, max_walk_length
            )
            for chunk_walks, stream in tasks
        ]

    # pooled estimator: Σ scoresᵢ·Rᵢ/R, accumulated in chunk order so
    # float rounding is scheduling-independent
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    total_steps = 0
    for chunk_scores, chunk_walks, chunk_steps in outputs:
        scores += chunk_scores * (chunk_walks / num_walks)
        total_steps += chunk_steps
    tele = get_telemetry()
    if tele.enabled:
        tele.inc("mc.walks", num_walks)
        tele.event(
            "mc.run",
            walks=num_walks,
            chunks=len(plan),
            steps=total_steps,
            workers=workers or 0,
        )
    return MonteCarloResult(scores, num_walks, total_steps)
