"""Deterministic parallel Monte-Carlo PageRank, supervised.

Random-walk simulation is embarrassingly parallel — walks never
interact — but naive parallelization trades away reproducibility: the
estimate would depend on how walks were sharded and which worker drew
which random numbers.  This module keeps the estimator exactly
reproducible by fixing both degrees of freedom *before* any process
starts:

* the walk budget is split into a **fixed chunk plan** that depends only
  on ``num_walks`` (never on the worker count), and
* each chunk gets its own :class:`numpy.random.SeedSequence` child
  spawned from the caller's seed, so chunk ``i`` simulates the same
  walks no matter which process runs it or in what order chunks finish.

Chunk estimates combine linearly: each chunk of ``Rᵢ`` walks returns
``scoresᵢ = (1−c)·visitsᵢ/Rᵢ``, and the pooled estimator over
``R = ΣRᵢ`` walks is ``Σ scoresᵢ·Rᵢ/R`` (accumulated in chunk order, so
even float rounding is fixed).  Consequently

``pagerank_montecarlo_parallel(graph, v, num_walks=N, seed=s)``

returns **bitwise-identical** scores for ``workers=1``, ``workers=8``,
or the in-process fallback — the worker count only changes wall time.

Execution is gathered by a
:class:`~repro.runtime.supervisor.TaskSupervisor` (completion order,
never blocking on one chunk): a dead worker costs only its own
unfinished chunks (completed chunk results are salvaged and never
re-simulated), a hung worker is abandoned at its per-task deadline and
its chunk re-executed in-process, and repeated pool failures trip a
circuit breaker that degrades the remaining plan to sequential
in-process execution with a warning — results are unchanged in every
case, because the chunk plan and RNG streams are fixed up front.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Tuple, Union

import numpy as np

from ..core.montecarlo import MonteCarloResult, pagerank_montecarlo
from ..core.pagerank import DEFAULT_DAMPING
from ..graph.webgraph import WebGraph
from ..obs import get_telemetry
from ..runtime.supervisor import SupervisorPolicy, TaskSupervisor

__all__ = ["plan_chunks", "pagerank_montecarlo_parallel"]

#: Number of independent walk chunks the budget is split into.  Fixed —
#: deliberately NOT derived from the worker count — so the estimate is a
#: pure function of ``(graph, v, damping, num_walks, seed)``.  Eight
#: chunks keep any sensible local worker count busy while adding
#: negligible per-chunk overhead.
DEFAULT_CHUNKS = 8


def plan_chunks(num_walks: int, chunks: int = DEFAULT_CHUNKS) -> List[int]:
    """Split a walk budget into a deterministic chunk plan.

    Near-equal integer shares; the first ``num_walks % chunks`` chunks
    take one extra walk.  Chunks never exceed the budget (small budgets
    produce fewer, single-walk chunks).
    """
    if num_walks < 1:
        raise ValueError("num_walks must be positive")
    if chunks < 1:
        raise ValueError("chunks must be positive")
    chunks = min(chunks, num_walks)
    base, extra = divmod(num_walks, chunks)
    return [base + (1 if i < extra else 0) for i in range(chunks)]


def _simulate_chunk(
    chunk_index: int,
    graph: WebGraph,
    v: Optional[np.ndarray],
    damping: float,
    chunk_walks: int,
    seed_seq: np.random.SeedSequence,
    max_walk_length: int,
) -> Tuple[np.ndarray, int, int]:
    """One chunk's walks (module-level so process pools can pickle it).

    ``chunk_index`` identifies the chunk to the supervision layer (and
    to chaos injectors keyed on it); the simulation itself depends only
    on the remaining arguments.
    """
    del chunk_index  # identity only; the walks depend on the seed stream
    result = pagerank_montecarlo(
        graph,
        v,
        damping=damping,
        num_walks=chunk_walks,
        rng=np.random.default_rng(seed_seq),
        max_walk_length=max_walk_length,
    )
    return result.scores, result.num_walks, result.total_steps


def pagerank_montecarlo_parallel(
    graph: WebGraph,
    v: Optional[np.ndarray] = None,
    *,
    damping: float = DEFAULT_DAMPING,
    num_walks: int = 100_000,
    workers: Optional[int] = None,
    seed: int = 0,
    chunks: int = DEFAULT_CHUNKS,
    max_walk_length: int = 1_000,
    supervisor: Union[None, SupervisorPolicy, TaskSupervisor] = None,
    _chunk_fn=None,
) -> MonteCarloResult:
    """Monte-Carlo PageRank over a supervised process pool, reproducibly.

    Parameters
    ----------
    workers:
        Process count.  ``None``, ``0`` or ``1`` runs the chunk plan
        in-process (no pool); higher values fan chunks out over a
        :class:`~concurrent.futures.ProcessPoolExecutor`.  The returned
        scores are identical either way.
    seed:
        Root of the per-chunk RNG streams
        (``SeedSequence(seed).spawn(...)``).
    chunks:
        Chunk-plan width; leave at the default unless you need more
        than :data:`DEFAULT_CHUNKS`-way parallelism.  Changing it
        changes the (equally valid) estimate.
    supervisor:
        A :class:`~repro.runtime.supervisor.TaskSupervisor` (or a bare
        :class:`~repro.runtime.supervisor.SupervisorPolicy`) governing
        retries, per-chunk deadlines, circuit breaking and degradation.
        ``None`` uses the default policy.  See ``docs/runtime.md``.
    _chunk_fn:
        Test seam: replaces the chunk simulator (chaos injectors wrap
        it).  Must accept the same arguments as the internal simulator
        and stay picklable for pool execution.

    See :func:`repro.core.montecarlo.pagerank_montecarlo` for the
    estimator itself and the remaining parameters.
    """
    plan = plan_chunks(num_walks, chunks)
    streams = np.random.SeedSequence(seed).spawn(len(plan))
    tasks = [
        (i, graph, v, damping, chunk_walks, stream, max_walk_length)
        for i, (chunk_walks, stream) in enumerate(zip(plan, streams))
    ]
    fn = _chunk_fn if _chunk_fn is not None else _simulate_chunk
    if isinstance(supervisor, TaskSupervisor):
        sup = supervisor
    else:
        sup = TaskSupervisor(supervisor)

    pool_factory = None
    if workers is not None and workers > 1:
        worker_count = workers
        # referenced through the module global so tests can monkeypatch
        # pool construction failures (and so the sandbox fallback stays
        # observable)
        pool_factory = lambda: ProcessPoolExecutor(  # noqa: E731
            max_workers=worker_count
        )
    report = sup.run(fn, tasks, pool_factory=pool_factory, label="mc")

    # pooled estimator: Σ scoresᵢ·Rᵢ/R, accumulated in chunk order so
    # float rounding is scheduling-independent
    scores = np.zeros(graph.num_nodes, dtype=np.float64)
    total_steps = 0
    for chunk_scores, chunk_walks, chunk_steps in report.results:
        scores += chunk_scores * (chunk_walks / num_walks)
        total_steps += chunk_steps
    tele = get_telemetry()
    if tele.enabled:
        tele.inc("mc.walks", num_walks)
        tele.event(
            "mc.run",
            walks=num_walks,
            chunks=len(plan),
            steps=total_steps,
            workers=workers or 0,
        )
    return MonteCarloResult(scores, num_walks, total_steps)
