"""Shard-by-shard block-Jacobi PageRank over the out-of-core backend.

The in-memory batched kernel (:func:`repro.perf.engine._block_jacobi`)
iterates ``z ← c·(Tᵀ)_SS z + (1−c) v_S`` with one whole-graph sparse
matmul per step.  This module runs the *same* iteration against a
:class:`~repro.graph.sharded.ShardedWebGraph`, where ``(Tᵀ)_SS`` never
exists as one matrix: each shard ``k`` contributes the row block of
``(Tᵀ)_SS`` indexed by its non-dangling nodes, built straight from the
shard's transpose CSR, and one iteration sweeps the shards writing each
block product into its slice of the output vector.

**The parity argument** (what the differential harness enforces
bitwise): CSR × dense-block multiplication computes every output row
independently — ``y[i, :]`` starts at zero and accumulates
``data[jj] · z[col[jj], :]`` in storage order.  Row-partitioning the
matrix therefore changes *nothing* about the floating-point operations
of any row, as long as each block keeps the same within-row storage
order as the assembled operator.  The shard files store in-edges sorted
by ``(destination, source)`` — exactly the ascending-column order of
the canonical in-memory ``Tᵀ`` — and the column remap into ``S``
positions is monotone, so every block is the *identical* sub-array of
the in-memory operator and every iterate, residual and score matches
bit for bit.  Two details matter and are preserved deliberately:

* the iterate stays *compact* (restricted to ``S``) — padding with
  zero rows would change numpy's pairwise-summation grouping in the
  residual reduction;
* per-shard dangling products are written into one contiguous
  ``(|D|, k)`` array *before* the ``np.abs(...).sum(axis=0)``
  reduction, again so the pairwise-summation tree is the in-memory
  one.

Scheduling: the per-iteration shard sweep can run under a
:class:`~repro.runtime.supervisor.TaskSupervisor` — each block product
is a pure, deterministic task (retry-safe by construction), and results
are assembled in plan order, so supervised execution is bitwise
identical to the serial sweep.

Blocks are cached in an :class:`~repro.perf.cache.OperatorCache` under
composite keys (``<fingerprint>#ss:<k>``, ``<fingerprint>#ds:<k>``).
For a delta-derived graph, :func:`derive_sharded` builds a child
operator that *reuses* the parent's cached blocks for every shard the
delta provably did not touch — see ``docs/scale.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy import sparse

from ..graph.sharded import ShardedWebGraph
from ..runtime.supervisor import SupervisorPolicy, TaskSupervisor
from .cache import OperatorCache
from .engine import (
    ADAPTIVE_STALL,
    ADAPTIVE_TIER,
    BatchResult,
    _validate_precision,
)

__all__ = [
    "ShardedOperator",
    "sharded_operator_for",
    "derive_sharded",
    "sharded_block_jacobi",
]


def _ss_block_task(shard_index: int, operator: "ShardedOperator",
                   z: np.ndarray) -> np.ndarray:
    """One supervised shard task: the block product of shard
    ``shard_index`` against the current iterate.

    Module-level and pure (output depends only on the arguments), so
    supervised retries recompute the identical array and chaos wrappers
    can reference it by name.
    """
    return operator.ss_block(shard_index) @ z


class ShardedOperator:
    """Per-shard row blocks of the dangling-restricted operator.

    Holds the ``O(n)`` global vectors (out-degrees, dangling mask, the
    ``S``-position map) and builds the per-shard sparse blocks lazily,
    caching them in the supplied :class:`OperatorCache` keyed by the
    graph fingerprint and shard index — so repeated solves on the same
    store rebuild nothing, and an LRU bound caps resident blocks.
    """

    __slots__ = (
        "graph",
        "fingerprint",
        "key_base",
        "cache",
        "dangling_mask",
        "non_dangling",
        "dangling",
        "_s_pos",
        "_inv_outdeg",
        "_s_bounds",
        "_d_bounds",
        "_local",
        "_parent_fingerprint",
        "_touched_mask",
        "_touched_shards",
        "block_reuses",
        "block_builds",
    )

    def __init__(
        self,
        graph: ShardedWebGraph,
        cache: Optional[OperatorCache] = None,
        *,
        parent_fingerprint: Optional[str] = None,
        touched_mask: Optional[np.ndarray] = None,
        touched_shards: Optional[frozenset] = None,
    ) -> None:
        self.graph = graph
        self.fingerprint = graph.structural_fingerprint()
        # the fingerprint names the edge set only; the partition key
        # keeps 2-way and 32-way stores of the same graph apart
        self.key_base = f"{self.fingerprint}@{graph.partition_key}"
        self.cache = cache
        out_deg = graph.out_degree()
        self.dangling_mask = out_deg == 0
        self.non_dangling = np.flatnonzero(~self.dangling_mask)
        self.dangling = np.flatnonzero(self.dangling_mask)
        # global node id -> its position in S (valid on S members only);
        # monotone, which is what keeps block columns in the assembled
        # operator's ascending order
        self._s_pos = np.cumsum(~self.dangling_mask) - 1
        inv = np.zeros(graph.num_nodes, dtype=np.float64)
        nz = out_deg > 0
        inv[nz] = 1.0 / out_deg[nz]  # identical fp op to transition_matrix
        self._inv_outdeg = inv
        self._s_bounds = np.searchsorted(self.non_dangling, graph.boundaries)
        self._d_bounds = np.searchsorted(self.dangling, graph.boundaries)
        self._local = {}  # fallback block store when no cache is given
        # delta-derivation metadata: when set, untouched shards may
        # borrow the parent's cached blocks (see _build_or_reuse)
        self._parent_fingerprint = parent_fingerprint
        self._touched_mask = touched_mask
        self._touched_shards = touched_shards or frozenset()
        self.block_reuses = 0
        self.block_builds = 0

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.graph.num_shards

    def s_range(self, k: int):
        """Row range of shard ``k`` inside the ``S``-restricted system."""
        return int(self._s_bounds[k]), int(self._s_bounds[k + 1])

    def d_range(self, k: int):
        """Row range of shard ``k`` inside the dangling block."""
        return int(self._d_bounds[k]), int(self._d_bounds[k + 1])

    # ------------------------------------------------------------------
    # blocks
    # ------------------------------------------------------------------

    def _entry(self, key: str, factory):
        if self.cache is not None:
            return self.cache.entry_for(key, factory)
        got = self._local.get(key)
        if got is None:
            got = self._local[key] = factory()
        return got

    def ss_block(self, k: int) -> sparse.csr_matrix:
        """Rows of ``(Tᵀ)_SS`` owned by shard ``k``'s non-dangling nodes."""
        return self._entry(
            f"{self.key_base}#ss:{k}",
            lambda: self._build_or_reuse(k, "ss"),
        )

    def ds_block(self, k: int) -> sparse.csr_matrix:
        """Rows of ``(Tᵀ)_DS`` owned by shard ``k``'s dangling nodes."""
        return self._entry(
            f"{self.key_base}#ds:{k}",
            lambda: self._build_or_reuse(k, "ds"),
        )

    @staticmethod
    def _cast32(block: sparse.csr_matrix) -> sparse.csr_matrix:
        # share the index arrays; only the data is duplicated.  The
        # elementwise cast of a row block equals the row block of the
        # elementwise-cast operator, which keeps the sharded adaptive
        # phase bitwise identical to the in-memory one.
        cast = sparse.csr_matrix(
            (block.data.astype(np.float32), block.indices, block.indptr),
            shape=block.shape,
        )
        cast.has_sorted_indices = True
        return cast

    def ss_block32(self, k: int) -> sparse.csr_matrix:
        """Float32 cast of :meth:`ss_block` (adaptive low phase)."""
        return self._entry(
            f"{self.key_base}#ss32:{k}",
            lambda: self._cast32(self.ss_block(k)),
        )

    def ds_block32(self, k: int) -> sparse.csr_matrix:
        """Float32 cast of :meth:`ds_block` (adaptive low phase)."""
        return self._entry(
            f"{self.key_base}#ds32:{k}",
            lambda: self._cast32(self.ds_block(k)),
        )

    def _build_or_reuse(self, k: int, kind: str) -> sparse.csr_matrix:
        if (
            self.cache is not None
            and self._parent_fingerprint is not None
            and self._touched_mask is not None
            and k not in self._touched_shards
        ):
            # the shard's transpose CSR is unchanged; its block is
            # reusable unless some in-edge originates at a touched
            # source (whose out-degree, hence entry weight, may differ)
            shard = self.graph.shard(k)
            if not self._touched_mask[np.asarray(shard.t_indices)].any():
                parent = self.cache.peek(
                    f"{self._parent_fingerprint}"
                    f"@{self.graph.partition_key}#{kind}:{k}"
                )
                if parent is not None:
                    self.block_reuses += 1
                    return parent
        self.block_builds += 1
        return self._build_block(k, kind)

    def _build_block(self, k: int, kind: str) -> sparse.csr_matrix:
        a, b = self.graph.shard_range(k)
        shard = self.graph.shard(k)
        if kind == "ss":
            rows_global = self.non_dangling[slice(*self.s_range(k))]
        else:
            rows_global = self.dangling[slice(*self.d_range(k))]
        local = rows_global - a
        t_indptr = np.asarray(shard.t_indptr)
        t_indices = np.asarray(shard.t_indices)
        counts = t_indptr[local + 1] - t_indptr[local]
        starts = t_indptr[local]
        total = int(counts.sum())
        if total:
            gather = np.repeat(starts, counts) + (
                np.arange(total, dtype=np.int64)
                - np.repeat(np.cumsum(counts) - counts, counts)
            )
            srcs = t_indices[gather]
        else:
            srcs = np.empty(0, dtype=np.int64)
        indptr = np.zeros(len(rows_global) + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(counts)
        # every in-edge source has out-degree >= 1, so srcs ⊆ S and the
        # monotone S-position remap preserves ascending column order
        block = sparse.csr_matrix(
            (self._inv_outdeg[srcs], self._s_pos[srcs], indptr),
            shape=(len(rows_global), len(self.non_dangling)),
        )
        block.has_sorted_indices = True
        return block

    # ------------------------------------------------------------------
    # matvecs
    # ------------------------------------------------------------------

    def matvec_ss(
        self,
        z: np.ndarray,
        *,
        supervisor: Optional[TaskSupervisor] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """``(Tᵀ)_SS @ z`` assembled from per-shard row blocks.

        With a supervisor, each shard's block product runs as one
        supervised task (retried on fault, results in plan order);
        either way the output rows are bitwise those of the assembled
        matmul.
        """
        if out is None:
            out = np.empty((len(self.non_dangling), z.shape[1]))
        if supervisor is not None:
            live = [k for k in range(self.num_shards)
                    if self._s_bounds[k + 1] > self._s_bounds[k]]
            report = supervisor.run(
                _ss_block_task,
                [(k, self, z) for k in live],
                label="shard-matvec",
            )
            for k, product in zip(live, report.results):
                lo, hi = self.s_range(k)
                out[lo:hi] = product
            return out
        for k in range(self.num_shards):
            lo, hi = self.s_range(k)
            if hi > lo:
                out[lo:hi] = self.ss_block(k) @ z
        return out

    def matvec_ds(self, z: np.ndarray) -> np.ndarray:
        """``(Tᵀ)_DS @ z`` as one contiguous ``(|D|, k)`` array.

        The caller reduces over this array; assembling it *before* the
        reduction keeps numpy's pairwise-summation tree identical to
        the in-memory kernel's.
        """
        out = np.empty((len(self.dangling), z.shape[1]))
        for k in range(self.num_shards):
            lo, hi = self.d_range(k)
            if hi > lo:
                out[lo:hi] = self.ds_block(k) @ z
        return out

    def matvec_ss32(self, z: np.ndarray) -> np.ndarray:
        """Float32 sweep of :meth:`matvec_ss` over the cast blocks."""
        out = np.empty((len(self.non_dangling), z.shape[1]), dtype=np.float32)
        for k in range(self.num_shards):
            lo, hi = self.s_range(k)
            if hi > lo:
                out[lo:hi] = self.ss_block32(k) @ z
        return out

    def matvec_ds32(self, z: np.ndarray) -> np.ndarray:
        """Float32 sweep of :meth:`matvec_ds` over the cast blocks."""
        out = np.empty((len(self.dangling), z.shape[1]), dtype=np.float32)
        for k in range(self.num_shards):
            lo, hi = self.d_range(k)
            if hi > lo:
                out[lo:hi] = self.ds_block32(k) @ z
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedOperator(n={self.graph.num_nodes}, "
            f"shards={self.num_shards}, |S|={len(self.non_dangling)})"
        )


def sharded_operator_for(
    cache: OperatorCache, graph: ShardedWebGraph
) -> ShardedOperator:
    """The graph's shard operator, cached under fingerprint + partition."""
    return cache.entry_for(
        f"{graph.structural_fingerprint()}@{graph.partition_key}#shardop",
        lambda: ShardedOperator(graph, cache=cache),
    )


def derive_sharded(cache: OperatorCache, application) -> ShardedOperator:
    """Shard-operator derivation for a delta on the sharded backend.

    The child operator rebuilds a shard's blocks only when the delta
    could have changed them: a shard spliced by the delta
    (``delta_touched_shards``), a shard with an in-edge from a touched
    source (entry weights ``1/outdeg`` may differ), or — globally —
    when the dangling set changed (which renumbers the restricted
    system).  Every other shard borrows the parent's cached block
    verbatim; per-shard reuse/build counts land on the returned
    operator (``block_reuses`` / ``block_builds``), and cache-level
    hit/miss counters tick through the shared :class:`OperatorCache`.
    """
    after = application.after
    before = application.before

    def build() -> ShardedOperator:
        cache.derives += 1
        if not np.array_equal(before.dangling_mask(), after.dangling_mask()):
            # dangling set changed: S is renumbered, no block survives
            return ShardedOperator(after, cache=cache)
        touched = np.zeros(after.num_nodes, dtype=bool)
        touched[application.touched_sources] = True
        return ShardedOperator(
            after,
            cache=cache,
            parent_fingerprint=before.structural_fingerprint(),
            touched_mask=touched,
            touched_shards=getattr(after, "delta_touched_shards", None),
        )

    return cache.entry_for(
        f"{after.structural_fingerprint()}@{after.partition_key}#shardop",
        build,
    )


def _sharded_low_phase(
    operator: ShardedOperator,
    z: np.ndarray,
    b_s: np.ndarray,
    *,
    damping: float,
    tol: float,
    check_every: int,
    max_sweeps: int,
) -> "tuple[np.ndarray, int]":
    """Float32 shard sweeps down to the relaxed tier.

    A transliteration of :func:`repro.perf.engine._low_precision_phase`
    with the matvecs routed through the cast per-shard blocks; because
    a cast row block equals the row block of the cast operator, every
    float32 sweep here is bitwise the in-memory adaptive sweep.  Runs
    serially even under a supervisor (the phase is short and its
    blocks are distinct tasks from the float64 ones).
    """
    tier = max(tol, ADAPTIVE_TIER)
    z32 = z.astype(np.float32)
    b32 = b_s.astype(np.float32)
    c = np.float32(damping)
    has_dangling = len(operator.dangling) > 0
    sweeps = 0
    prev_worst = np.inf
    while sweeps < max_sweeps:
        plain_steps = min(check_every, max_sweeps - sweeps) - 1
        for _ in range(plain_steps):
            z_next = operator.matvec_ss32(z32)
            z_next *= c
            z_next += b32
            z32 = z_next
            sweeps += 1
        z_prev = z32
        z32 = operator.matvec_ss32(z32)
        z32 *= c
        z32 += b32
        sweeps += 1
        dz = z32 - z_prev
        res = np.abs(dz).sum(axis=0)
        if has_dangling:
            res = res + c * np.abs(operator.matvec_ds32(dz)).sum(axis=0)
        worst = float(res.max(initial=0.0))
        if worst < tier or worst >= ADAPTIVE_STALL * prev_worst:
            break
        prev_worst = worst
    return z32.astype(np.float64), sweeps


def sharded_block_jacobi(
    operator: ShardedOperator,
    vectors: np.ndarray,
    *,
    damping: float,
    tol: float,
    max_iter: int,
    check_every: int,
    labels: Sequence[str],
    supervisor=None,
    precision: str = "float64",
    counters: Optional[dict] = None,
) -> BatchResult:
    """Dangling-restricted block Jacobi, one shard sweep per step.

    Structurally a transliteration of the in-memory kernel
    (:func:`repro.perf.engine._block_jacobi`) with every operator
    application routed through :class:`ShardedOperator` — same
    restricted iterate, same fused-steps/measured-step cadence, same
    residual, same per-column freeze and active-set compaction.  The
    differential harness (``tests/test_differential_solvers.py``)
    asserts the outputs are *bitwise* equal — in both precisions: the
    adaptive path mirrors the in-memory float32 phase over cast blocks
    that are sub-arrays of the cast in-memory operator.
    """
    _validate_precision(precision)
    method = (
        "sharded_jacobi" if precision == "float64"
        else "sharded_jacobi_adaptive"
    )
    if supervisor is not None and not isinstance(supervisor, TaskSupervisor):
        supervisor = TaskSupervisor(supervisor)
    c = damping
    n, k = vectors.shape
    jump = (1.0 - c) * vectors
    s = operator.non_dangling
    d = operator.dangling
    scores = np.empty_like(vectors)
    iterations = np.zeros(k, dtype=np.int64)
    residuals = np.full(k, np.inf)
    converged = np.zeros(k, dtype=bool)

    if len(s) == 0:
        # edgeless graph: (I - cTᵀ) = I, the solution is the jump term
        scores[:] = jump
        iterations[:] = 1
        residuals[:] = 0.0
        converged[:] = True
        return BatchResult(
            scores, iterations, residuals, converged, method, labels,
        )

    b_s = np.ascontiguousarray(jump[s, :])
    z = np.array(vectors[s, :], dtype=np.float64)  # p⁽⁰⁾ = v, as in jacobi()
    active = np.arange(k)

    low_sweeps = 0
    if precision == "adaptive":
        z, low_sweeps = _sharded_low_phase(
            operator,
            z,
            b_s,
            damping=c,
            tol=tol,
            check_every=check_every,
            max_sweeps=max(max_iter - check_every, 1),
        )
        if counters is not None:
            counters["low_sweeps"] = (
                counters.get("low_sweeps", 0) + low_sweeps
            )

    def _freeze(cols_in_active: np.ndarray, res: np.ndarray, it: int,
                ok: bool) -> None:
        cols = active[cols_in_active]
        z_cols = z[:, cols_in_active]
        scores[np.ix_(s, cols)] = z_cols
        expanded = operator.matvec_ds(np.ascontiguousarray(z_cols))
        expanded *= c
        expanded += jump[np.ix_(d, cols)]
        scores[np.ix_(d, cols)] = expanded
        iterations[cols] = it
        residuals[cols] = res[cols_in_active]
        converged[cols] = ok

    it = low_sweeps  # iteration counts include the float32 phase
    while it < max_iter and len(active):
        plain_steps = min(check_every, max_iter - it) - 1
        for _ in range(plain_steps):
            z_next = operator.matvec_ss(z, supervisor=supervisor)
            z_next *= c
            z_next += b_s
            z = z_next
            it += 1
        z_prev = z
        z = operator.matvec_ss(z, supervisor=supervisor)
        z *= c
        z += b_s
        it += 1
        dz = z - z_prev
        res = np.abs(dz).sum(axis=0)
        if len(d):
            res = res + c * np.abs(operator.matvec_ds(dz)).sum(axis=0)
        done = res < tol
        if done.any():
            _freeze(np.flatnonzero(done), res, it, True)
            keep = ~done
            if not keep.any():
                active = active[:0]
                break
            active = active[keep]
            z = np.ascontiguousarray(z[:, keep])
            b_s = np.ascontiguousarray(b_s[:, keep])
        elif it >= max_iter:
            _freeze(np.arange(len(active)), res, it, False)
            active = active[:0]

    if len(active):  # pragma: no cover - defensive (loop always drains)
        _freeze(np.arange(len(active)), np.full(len(active), np.inf),
                it, False)

    if counters is not None and precision == "adaptive":
        counters["polish_sweeps"] = (
            counters.get("polish_sweeps", 0) + (it - low_sweeps)
        )

    return BatchResult(
        scores, iterations, residuals, converged, method, labels,
    )
