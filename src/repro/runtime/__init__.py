"""Resilient execution layer: checkpoints, fallback chains, chaos.

This package wraps the numerical core in the operational behaviors a
continuously re-run pipeline needs (see ``docs/runtime.md``):

* :mod:`repro.runtime.checkpoint` — atomic snapshot/restore of solver
  iterates (kill-and-resume).
* :mod:`repro.runtime.monitors` — mid-solve divergence/NaN/stagnation
  detection and wall-clock deadlines.
* :mod:`repro.runtime.resilient` — :class:`FallbackSolver` escalation
  chains with structured :class:`RunReport` diagnostics, plus the
  :class:`RuntimePolicy` object the CLI threads through the pipeline.
* :mod:`repro.runtime.chaos` — deterministic fault injectors for the
  resilience test-suite.
* :mod:`repro.runtime.retry` — deterministic :class:`BackoffPolicy`
  schedules and retry-with-backoff for transient failures.
* :mod:`repro.runtime.supervisor` — :class:`TaskSupervisor` for
  fan-out work: per-task retry, deadlines/watchdog, circuit breaking
  and partial-result salvage (see ``docs/runtime.md``).

The heavyweight :mod:`~repro.runtime.resilient` module (it pulls in the
numerical core) is loaded lazily on first attribute access, so the
light modules stay importable from low layers such as
:mod:`repro.graph.io` without import cycles.
"""

from __future__ import annotations

from ..errors import (
    BudgetExceeded,
    CheckpointError,
    ConvergenceError,
    GraphFormatError,
    GraphIOWarning,
    InjectedFault,
    SnapshotMismatchError,
    SolverAbort,
    SupervisionError,
    TruncatedFileError,
    WalError,
)
from .checkpoint import (
    CheckpointManager,
    SolutionSnapshot,
    SolverCheckpoint,
    load_solution,
    problem_fingerprint,
    save_solution,
)
from .monitors import Deadline, ResidualMonitor, compose_callbacks
from .retry import BackoffPolicy, with_retries
from .supervisor import (
    CIRCUIT_STATES,
    CircuitBreaker,
    SupervisionReport,
    SupervisorPolicy,
    TaskSupervisor,
)

__all__ = [
    # errors (re-exported for convenience)
    "BudgetExceeded",
    "CheckpointError",
    "ConvergenceError",
    "GraphFormatError",
    "GraphIOWarning",
    "InjectedFault",
    "SnapshotMismatchError",
    "SolverAbort",
    "SupervisionError",
    "TruncatedFileError",
    "WalError",
    # light modules
    "CheckpointManager",
    "SolverCheckpoint",
    "SolutionSnapshot",
    "problem_fingerprint",
    "save_solution",
    "load_solution",
    "Deadline",
    "ResidualMonitor",
    "compose_callbacks",
    "BackoffPolicy",
    "with_retries",
    "CIRCUIT_STATES",
    "CircuitBreaker",
    "SupervisionReport",
    "SupervisorPolicy",
    "TaskSupervisor",
    # lazy (resilient.py pulls in the numerical core)
    "DEFAULT_CHAIN",
    "AttemptRecord",
    "RunReport",
    "FallbackSolver",
    "RuntimePolicy",
    "resilient_solve",
    "chaos",
]

_LAZY = {
    "DEFAULT_CHAIN",
    "AttemptRecord",
    "RunReport",
    "FallbackSolver",
    "RuntimePolicy",
    "resilient_solve",
}


def __getattr__(name: str):
    # importlib.import_module, not ``from . import``: the latter ends in
    # a getattr on this package and would re-enter this hook forever.
    import importlib

    if name in _LAZY:
        resilient = importlib.import_module(f"{__name__}.resilient")
        return getattr(resilient, name)
    if name == "chaos":
        return importlib.import_module(f"{__name__}.chaos")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():  # pragma: no cover - introspection aid
    return sorted(set(globals()) | set(__all__))
