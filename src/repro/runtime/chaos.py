"""Deterministic fault injection for resilience testing.

"The recovery path works" is an empirical claim; this module makes it
testable.  Every injector is deterministic and seedable — a chaos test
that fails must fail identically on re-run — and every planted failure
raises (or plants data that leads to) a distinguishable condition, so
tests can tell the planted fault from a genuine bug.

Injectors
---------
* :func:`fault_at` / :func:`nan_poison_at` — solver iteration callbacks
  that kill or poison a run at an exact iteration.
* :func:`corrupt_edge_file` — byte- and line-level corruption of edge
  files (truncation, garbage tokens, out-of-range ids, ...).
* :class:`FlakyCalls` — wraps any callable to fail on a scripted
  subset of its invocations (``OSError``, ``MemoryError``, ...); used
  to exercise retry and fallback paths.
* :func:`flaky_open` — an ``open``-compatible wrapper for
  monkeypatching file-level failures into io code.

None of this is imported by production code paths.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import Callable, Dict, Optional, Type, Union

import numpy as np

from ..errors import InjectedFault

__all__ = [
    "fault_at",
    "nan_poison_at",
    "corrupt_edge_file",
    "CORRUPTION_KINDS",
    "FlakyCalls",
    "flaky_open",
    "ChaosWorker",
    "ServeChaos",
    "truncate_wal_tail",
    "contaminate_core",
    "torn_resend_stream",
    "duplicate_stream_events",
    "reorder_stream_events",
    "late_straggler_events",
    "poison_stream_window",
]


# ----------------------------------------------------------------------
# solver-level injectors (iteration callbacks)
# ----------------------------------------------------------------------


def fault_at(
    iteration: int,
    exc_factory: Callable[[], BaseException] = None,
) -> Callable[[int, np.ndarray, float], None]:
    """Callback raising a fault when the solver reaches ``iteration``.

    The default fault is :class:`~repro.errors.InjectedFault` — a stand-in
    for "the process was killed here" in kill-and-resume tests.
    """

    def _inject(it: int, p: np.ndarray, residual: float) -> None:
        if it == iteration:
            exc = (
                exc_factory()
                if exc_factory is not None
                else InjectedFault(f"injected crash at iteration {it}")
            )
            raise exc

    return _inject


def nan_poison_at(
    iteration: int,
    *,
    fraction: float = 0.01,
    seed: int = 0,
    methods: Optional[tuple] = None,
) -> Callable[[int, np.ndarray, float], None]:
    """Callback that overwrites a deterministic subset of the iterate
    with NaN at ``iteration`` — simulating in-memory corruption.

    ``methods`` optionally restricts poisoning to attempts whose bound
    ``method`` matches (see :class:`~repro.runtime.resilient.FallbackSolver`,
    which exposes the active method on the callback's behalf via the
    ``_chaos_method`` attribute it sets before each attempt).
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError("fraction must be in (0, 1]")

    def _poison(it: int, p: np.ndarray, residual: float) -> None:
        if it != iteration:
            return
        active = getattr(_poison, "_chaos_method", None)
        if methods is not None and active is not None and active not in methods:
            return
        rng = np.random.default_rng(seed)
        count = max(1, int(len(p) * fraction))
        idx = rng.choice(len(p), size=count, replace=False)
        p[idx] = np.nan

    return _poison


# ----------------------------------------------------------------------
# file-level injectors
# ----------------------------------------------------------------------

CORRUPTION_KINDS = (
    "truncate-bytes",
    "garbage-line",
    "bad-token",
    "out-of-range",
    "negative-id",
    "duplicate-edge",
    "drop-header",
)


def corrupt_edge_file(
    path: Union[str, Path],
    kind: str,
    *,
    seed: int = 0,
) -> Path:
    """Corrupt an edge file (plain or gzipped) in place, deterministically.

    Kinds
    -----
    ``truncate-bytes``
        Cut the file mid-stream.  For ``.gz`` files this yields a
        truncated gzip member — the classic interrupted-transfer
        artifact.
    ``garbage-line`` / ``bad-token``
        Insert a non-parsable line / replace one id with a non-integer
        token.
    ``out-of-range`` / ``negative-id``
        Append an edge whose endpoint is ≥ ``num_nodes`` / negative.
    ``duplicate-edge``
        Duplicate an existing edge line.
    ``drop-header``
        Remove the node-count header line.
    """
    path = Path(path)
    if kind not in CORRUPTION_KINDS:
        raise ValueError(
            f"unknown corruption {kind!r}; choose from {CORRUPTION_KINDS}"
        )
    rng = np.random.default_rng(seed)
    gz = path.suffix == ".gz"

    if kind == "truncate-bytes":
        raw = path.read_bytes()
        if len(raw) < 8:
            raise ValueError(f"{path} too small to truncate meaningfully")
        # keep at least the first few bytes (gzip magic survives, the
        # stream does not), cut somewhere in the middle-to-late body
        cut = int(len(raw) * (0.55 + 0.4 * rng.random()))
        cut = max(6, min(cut, len(raw) - 2))
        path.write_bytes(raw[:cut])
        return path

    opener = (lambda p, m: gzip.open(p, m + "t", encoding="utf-8")) if gz else (
        lambda p, m: open(p, m, encoding="utf-8")
    )
    with opener(path, "r") as fh:
        lines = fh.read().splitlines()
    header_idx = next(
        (
            i
            for i, line in enumerate(lines)
            if line.strip() and not line.lstrip().startswith("#")
        ),
        None,
    )
    if header_idx is None:
        raise ValueError(f"{path} has no content lines to corrupt")
    num_nodes = int(lines[header_idx])
    edge_indices = [
        i
        for i, line in enumerate(lines)
        if i > header_idx and line.strip() and not line.lstrip().startswith("#")
    ]

    if kind == "garbage-line":
        pos = (
            int(rng.integers(header_idx + 1, len(lines) + 1))
            if lines
            else header_idx + 1
        )
        lines.insert(pos, "!!corrupt@@ line not an edge")
    elif kind == "bad-token":
        if not edge_indices:
            raise ValueError(f"{path} has no edges to corrupt")
        i = int(rng.choice(edge_indices))
        src, dst = lines[i].split()
        lines[i] = f"{src} x{dst}"
    elif kind == "out-of-range":
        lines.append(f"0 {num_nodes + int(rng.integers(1, 10))}")
    elif kind == "negative-id":
        lines.append(f"-{int(rng.integers(1, 10))} 0")
    elif kind == "duplicate-edge":
        if not edge_indices:
            raise ValueError(f"{path} has no edges to duplicate")
        lines.append(lines[int(rng.choice(edge_indices))])
    elif kind == "drop-header":
        del lines[header_idx]

    with opener(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


# ----------------------------------------------------------------------
# call-level injectors
# ----------------------------------------------------------------------


class FlakyCalls:
    """Wrap a callable to fail on a scripted subset of invocations.

    ``plan`` maps 1-based call numbers to exception *types* (or
    instances); unlisted calls pass through.  ``fail_first`` is the
    shorthand for "the first N calls raise ``exc``" — the common
    transient-failure script for retry tests.

    >>> flaky = FlakyCalls(write_fn, fail_first=2, exc=OSError)
    >>> flaky()   # raises OSError     (call 1)
    >>> flaky()   # raises OSError     (call 2)
    >>> flaky()   # delegates          (call 3)
    """

    def __init__(
        self,
        fn: Callable,
        *,
        plan: Optional[Dict[int, Union[Type[BaseException], BaseException]]] = None,
        fail_first: int = 0,
        exc: Type[BaseException] = OSError,
    ) -> None:
        self.fn = fn
        self.plan = dict(plan or {})
        for call in range(1, fail_first + 1):
            self.plan.setdefault(call, exc)
        self.calls = 0

    def __call__(self, *args, **kwargs):
        self.calls += 1
        fault = self.plan.get(self.calls)
        if fault is not None:
            raise fault if isinstance(fault, BaseException) else fault(
                f"injected fault on call {self.calls}"
            )
        return self.fn(*args, **kwargs)


def flaky_open(
    *,
    fail_first: int = 0,
    exc: Type[BaseException] = OSError,
    plan: Optional[Dict[int, Union[Type[BaseException], BaseException]]] = None,
) -> FlakyCalls:
    """An ``open``-compatible callable that fails on scripted calls.

    Monkeypatch it over :func:`builtins.open` (or an io module's opener)
    to simulate transient filesystem failures:

    >>> monkeypatch.setattr("builtins.open", flaky_open(fail_first=1))
    """
    import builtins

    return FlakyCalls(builtins.open, plan=plan, fail_first=fail_first, exc=exc)


# ----------------------------------------------------------------------
# worker-level injectors (process-pool fan-out)
# ----------------------------------------------------------------------


class ChaosWorker:
    """Wrap a picklable task function with scripted worker faults.

    Faults are keyed on one of the task's positional arguments
    (``key_arg``, default the first) — the supervised fan-out paths all
    lead their task tuples with the plan index, so ``kill_on=(2,)``
    means "chunk 2 misbehaves".  Kinds:

    ``kill_on``
        The worker *process* dies (``os._exit``) — the classic
        segfault/OOM-kill, surfacing as ``BrokenProcessPool`` for every
        in-flight future.  Fires only inside a child process; executed
        in the supervising process the injector is a no-op, so serial
        degradation completes the plan.
    ``hang_on``
        The worker sleeps ``hang_seconds`` before doing the work —
        past any sane deadline, so the watchdog abandons it.  Also
        worker-only by default.
    ``slow_on``
        The worker sleeps ``slow_seconds`` first, then works normally:
        a straggler *within* its deadline, which supervision must
        tolerate without retrying.
    ``fail_on``
        Raise ``exc`` instead of working — fires everywhere (worker or
        in-process), the script for plain task-retry paths.

    ``once_dir`` makes kill/hang/fail faults fire **once per key**
    across all processes (an atomically-created marker file arbitrates)
    so a retried task succeeds — the salvage/retry happy path.  Without
    it a fault fires on every pool execution, which is how the circuit
    breaker is driven to trip.

    Instances are picklable as long as ``fn`` is a module-level
    callable and ``exc`` a module-level exception type.
    """

    def __init__(
        self,
        fn: Callable,
        *,
        kill_on: tuple = (),
        hang_on: tuple = (),
        slow_on: tuple = (),
        fail_on: tuple = (),
        hang_seconds: float = 30.0,
        slow_seconds: float = 0.02,
        exc: Type[BaseException] = InjectedFault,
        once_dir: Optional[Union[str, Path]] = None,
        key_arg: int = 0,
    ) -> None:
        self.fn = fn
        self.kill_on = tuple(kill_on)
        self.hang_on = tuple(hang_on)
        self.slow_on = tuple(slow_on)
        self.fail_on = tuple(fail_on)
        self.hang_seconds = hang_seconds
        self.slow_seconds = slow_seconds
        self.exc = exc
        self.once_dir = None if once_dir is None else str(once_dir)
        self.key_arg = key_arg

    def _fires_once(self, kind: str, key) -> bool:
        """True if this (kind, key) fault should fire now.

        With ``once_dir`` set, the first process to atomically create
        the marker file wins; everyone later sees the fault as spent.
        """
        if self.once_dir is None:
            return True
        marker = Path(self.once_dir) / f"chaos-{kind}-{key}"
        try:
            marker.touch(exist_ok=False)
        except FileExistsError:
            return False
        return True

    @staticmethod
    def _in_worker() -> bool:
        import multiprocessing

        return multiprocessing.parent_process() is not None

    def __call__(self, *args, **kwargs):
        import os
        import time as _time

        key = args[self.key_arg] if len(args) > self.key_arg else None
        if key in self.kill_on and self._in_worker() and self._fires_once(
            "kill", key
        ):
            os._exit(17)
        if key in self.hang_on and self._in_worker() and self._fires_once(
            "hang", key
        ):
            _time.sleep(self.hang_seconds)
        if key in self.slow_on:
            _time.sleep(self.slow_seconds)
        if key in self.fail_on and self._fires_once("fail", key):
            raise self.exc(f"injected task fault on key {key!r}")
        return self.fn(*args, **kwargs)


# ----------------------------------------------------------------------
# serving-level injectors (ingest worker + WAL)
# ----------------------------------------------------------------------


class ServeChaos:
    """Scripted faults for the scoring daemon's ingest path.

    The daemon exposes two hook points, keyed by the WAL sequence of
    the batch being applied:

    ``before_apply(seq)``
        Runs before the re-estimate starts.  ``fail_apply_on`` raises
        ``exc`` here (the warm path fails before doing any work —
        drives retry/degrade/circuit paths); ``slow_apply_on`` sleeps
        ``slow_seconds`` first (a straggling ingest, for deadline and
        staleness-bound tests).
    ``before_publish(seq)``
        Runs after the candidate epoch passed validation but *before*
        the pointer swap — the kill-mid-swap window.  ``kill_swap_on``
        raises ``exc`` here: scores were computed and are about to be
        visible, and the fault proves readers keep the previous epoch
        and the WAL record stays pending.

    The replicated-serving layer adds three more hook points:

    ``before_ship(wal_seq)``
        Runs inside the writer's snapshot ship, after ``solution.npz``
        is durable but *before* the manifest write — the kill-mid-ship
        window.  ``fail_ship_on`` raises ``exc`` here, leaving a
        manifest-less snapshot directory that replicas must ignore and
        a later re-ship must repair.
    ``should_delay_ship(wal_seq)``
        Consulted by the writer before shipping.  ``delay_ship_on``
        makes it answer true, so the epoch's snapshot is *not* shipped
        yet — replicas lag, and the next ship must carry a composed
        multi-record segment.
    ``before_replica_load(name, wal_seq)``
        Runs inside a replica's refresh before it loads a shipped
        snapshot.  ``kill_replica_on`` — ``(name, wal_seq)`` pairs —
        raises ``exc`` here, simulating the replica process dying
        mid-load; the router must route around it and a supervised
        restart must reconverge it bitwise.

    Faults fire **once per (kind, seq)** by default (``once=True``) so
    the retry after a planted fault succeeds; with ``once=False`` the
    fault repeats on every attempt, which is how the ingest circuit
    breaker is driven open.
    """

    def __init__(
        self,
        *,
        fail_apply_on: tuple = (),
        slow_apply_on: tuple = (),
        kill_swap_on: tuple = (),
        fail_ship_on: tuple = (),
        delay_ship_on: tuple = (),
        kill_replica_on: tuple = (),
        slow_seconds: float = 0.05,
        exc: Type[BaseException] = InjectedFault,
        once: bool = True,
    ) -> None:
        self.fail_apply_on = tuple(fail_apply_on)
        self.slow_apply_on = tuple(slow_apply_on)
        self.kill_swap_on = tuple(kill_swap_on)
        self.fail_ship_on = tuple(fail_ship_on)
        self.delay_ship_on = tuple(delay_ship_on)
        self.kill_replica_on = tuple(
            (str(name), int(seq)) for name, seq in kill_replica_on
        )
        self.slow_seconds = slow_seconds
        self.exc = exc
        self.once = once
        self._spent: set = set()
        self.fired = []

    def _fires(self, kind: str, seq: int) -> bool:
        key = (kind, seq)
        if self.once and key in self._spent:
            return False
        self._spent.add(key)
        self.fired.append(key)
        return True

    def before_apply(self, seq: int) -> None:
        import time as _time

        if seq in self.slow_apply_on and self._fires("slow", seq):
            _time.sleep(self.slow_seconds)
        if seq in self.fail_apply_on and self._fires("fail", seq):
            raise self.exc(f"injected ingest failure on wal seq {seq}")

    def before_publish(self, seq: int) -> None:
        if seq in self.kill_swap_on and self._fires("kill", seq):
            raise self.exc(f"injected kill mid-swap on wal seq {seq}")

    def before_ship(self, seq: int) -> None:
        if seq in self.fail_ship_on and self._fires("ship", seq):
            raise self.exc(
                f"injected ship crash before manifest on wal seq {seq}"
            )

    def should_delay_ship(self, seq: int) -> bool:
        return seq in self.delay_ship_on and self._fires("delay", seq)

    def before_replica_load(self, name: str, seq: int) -> None:
        key = (str(name), int(seq))
        if key in self.kill_replica_on and self._fires("replica", key):
            raise self.exc(
                f"injected replica kill: {name} loading wal seq {seq}"
            )


def truncate_wal_tail(path: Union[str, Path], nbytes: int = 7) -> Path:
    """Chop ``nbytes`` off the end of a WAL segment, in place.

    Simulates a crash mid-append: the final record's line loses its
    tail (including the newline for small ``nbytes``), exactly what an
    interrupted ``write`` leaves behind.  Recovery must drop the torn
    record and keep everything before it.
    """
    path = Path(path)
    raw = path.read_bytes()
    if nbytes < 1 or nbytes >= len(raw):
        raise ValueError(
            f"nbytes must be in [1, {len(raw) - 1}] for {path} "
            f"({len(raw)} bytes)"
        )
    path.write_bytes(raw[:-nbytes])
    return path


# ----------------------------------------------------------------------
# core contamination (good-core anomaly injection)
# ----------------------------------------------------------------------


def contaminate_core(
    core: np.ndarray,
    spam_nodes: np.ndarray,
    *,
    num: int = 3,
    seed: int = 0,
) -> np.ndarray:
    """Plant spam nodes inside a good core, deterministically.

    Models the paper's Section 4.4 worst case — the supposedly clean
    ``Ṽ⁺`` absorbing spam hosts (a directory that let spam slip in, a
    compromised .edu) — so :func:`repro.eval.audit_core` has a planted
    anomaly to catch.  Returns a new core array with ``num`` spam nodes
    (chosen by ``seed`` from ``spam_nodes``, excluding any already
    present) appended; the input is not modified.
    """
    if num < 1:
        raise ValueError("num must be positive")
    core = np.asarray(core, dtype=np.int64)
    pool = np.setdiff1d(
        np.asarray(spam_nodes, dtype=np.int64), core, assume_unique=False
    )
    if len(pool) < num:
        raise ValueError(
            f"only {len(pool)} spam nodes available to plant, need {num}"
        )
    rng = np.random.default_rng(seed)
    planted = rng.choice(pool, size=num, replace=False)
    return np.concatenate([core, np.sort(planted)])


# ----------------------------------------------------------------------
# stream-level injectors (crawl-event transport faults)
# ----------------------------------------------------------------------
#
# These operate on lists of wire lines (the JSONL encoding of
# repro.synth.crawler events) and model the transport faults a live
# crawl feed exhibits: torn lines, duplicated and reordered delivery,
# backward clock skew (stragglers for long-sealed windows), and
# adversarially poisoned windows.  All are pure (input list untouched)
# and deterministic in ``seed``.  The ingestor's contract is that
# every fault below is *absorbed*: the post-ingest scores are bitwise
# identical to the clean sequence (stragglers and poison end up in the
# DLQ, never in the graph).


def torn_resend_stream(
    lines,
    *,
    seed: int = 0,
    count: int = 2,
    displacement: int = 3,
):
    """Tear ``count`` lines mid-record and retransmit them shortly after.

    The torn fragment (an unparsable half line, what a crashed writer
    or a cut connection leaves) stays in place — the ingestor must DLQ
    it as ``"bad-json"`` — and the intact original is re-inserted at
    most ``displacement`` lines later, modeling the crawler's retry.
    Keep ``displacement`` small relative to the ingestor's
    ``max_lateness`` so the resend still lands in its open window.
    """
    rng = np.random.default_rng(seed)
    out = list(lines)
    if len(out) < 4 or count < 1:
        return out
    victims = sorted(
        rng.choice(np.arange(1, len(out) - 1), size=min(count, len(out) - 2),
                   replace=False).tolist(),
        reverse=True,
    )
    for idx in victims:
        original = out[idx]
        out[idx] = original[: max(1, len(original) // 2)]
        resend_at = min(len(out), idx + 1 + displacement)
        out.insert(resend_at, original)
    return out


def duplicate_stream_events(
    lines,
    *,
    seed: int = 0,
    count: int = 3,
    displacement: int = 4,
):
    """Deliver ``count`` randomly chosen lines twice (at-least-once
    transport).  The copy arrives at most ``displacement`` lines after
    the original; the ingestor must drop it by event id."""
    rng = np.random.default_rng(seed)
    out = list(lines)
    if not out or count < 1:
        return out
    victims = sorted(
        rng.choice(len(out), size=min(count, len(out)), replace=False).tolist(),
        reverse=True,
    )
    for idx in victims:
        out.insert(min(len(out), idx + 1 + displacement), out[idx])
    return out


def reorder_stream_events(
    lines,
    *,
    seed: int = 0,
    count: int = 5,
    max_shift: int = 2,
):
    """Shift ``count`` lines up to ``max_shift`` positions later.

    Bounded out-of-order delivery: choose ``max_shift`` (times the
    stream's timestamp increment) below the ingestor's
    ``max_lateness`` and every displaced event still reaches its
    window; the windows — and the scores — come out identical.
    """
    rng = np.random.default_rng(seed)
    out = list(lines)
    if len(out) < 3 or count < 1:
        return out
    for _ in range(count):
        idx = int(rng.integers(0, len(out) - 1))
        shift = int(rng.integers(1, max_shift + 1))
        line = out.pop(idx)
        out.insert(min(len(out), idx + shift), line)
    return out


def late_straggler_events(
    lines,
    *,
    seed: int = 0,
    count: int = 2,
    num_nodes: int = 2,
    next_id: int = 0,
    ts: int = 0,
):
    """Append ``count`` schema-valid events carrying a long-stale ``ts``.

    Models backward clock skew / a partition healing hours late: the
    events are well-formed (fresh ids from ``next_id``) but their
    window sealed long ago, so the ingestor must quarantine them as
    ``"late"`` without touching the graph.
    """
    import json as _json

    rng = np.random.default_rng(seed)
    out = list(lines)
    for i in range(count):
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v:
            v = (v + 1) % num_nodes
        out.append(_json.dumps(
            {"id": next_id + i, "ts": int(ts), "op": "+", "src": u, "dst": v},
            separators=(",", ":"),
        ))
    return out


def poison_stream_window(
    lines,
    edges,
    *,
    next_id: int,
    ts: int,
    count: int = 3,
):
    """Append one trailing window of poison events.

    ``edges`` must be edges that exist in the graph when the window
    commits (pass edges the stream never deletes): re-inserting an
    existing edge passes the per-event schema but makes the window's
    compacted delta structurally invalid, so the whole window must be
    quarantined as ``"poison-delta"`` while the daemon keeps serving.
    Place ``ts`` beyond the stream's final timestamp plus the window
    size so the poison shares a window with no clean event.
    """
    import json as _json

    out = list(lines)
    chosen = list(edges)[:count]
    if len(chosen) < 1:
        raise ValueError("poison_stream_window needs at least one edge")
    for i, (u, v) in enumerate(chosen):
        out.append(_json.dumps(
            {"id": next_id + i, "ts": int(ts), "op": "+",
             "src": int(u), "dst": int(v)},
            separators=(",", ":"),
        ))
    return out
