"""Solver checkpointing: atomic snapshots of the PageRank iterate.

At the paper's deployment scale (a 73M-host graph re-ranked
continuously) a PageRank run that dies at iteration 80 of 100 wastes
hours if it must restart from the uniform vector.  Jacobi, Gauss-Seidel
and power iteration are memoryless in the iterate — ``p`` plus the
iteration number is a complete state — so a checkpoint is tiny and
resuming is exact.

Format
------
A checkpoint directory holds ``ckpt-<iteration:09d>.npz`` files, each a
compressed numpy archive with:

``p``
    The iterate (float64).
``residual_history``
    The residuals observed so far (may be empty when tracking is off).
``meta``
    A JSON string: ``iteration``, ``method``, ``residual``, ``damping``,
    ``tol`` and a ``fingerprint`` of the problem (size + checksums of
    the jump vector and matrix structure) so a checkpoint is never
    resumed against a *different* system.

Writes are atomic: the archive is written to a ``.tmp`` sibling and
``os.replace``-d into place, so a crash mid-write can never leave a
half-written *current* checkpoint — at worst a stale ``.tmp`` that is
ignored (and cleaned up) by readers.  Transient write failures are
retried with backoff.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np

from ..errors import CheckpointError, SnapshotMismatchError
from ..obs import get_telemetry
from .retry import with_retries

__all__ = [
    "SolverCheckpoint",
    "CheckpointManager",
    "problem_fingerprint",
    "SolutionSnapshot",
    "save_solution",
    "load_solution",
]

_CKPT_RE = re.compile(r"^ckpt-(\d{9})\.npz$")


def problem_fingerprint(transition_t, v: np.ndarray) -> str:
    """Cheap structural fingerprint of a PageRank problem.

    Combines the dimension, edge count and low-cost checksums of the
    matrix structure and jump vector.  Not cryptographic — it exists to
    catch the operational mistake of resuming yesterday's checkpoint
    against today's graph, which would silently converge to garbage.
    """
    n = int(transition_t.shape[0])
    nnz = int(transition_t.nnz)
    indptr_sum = int(np.asarray(transition_t.indptr, dtype=np.int64).sum())
    indices_sum = int(np.asarray(transition_t.indices, dtype=np.int64).sum())
    v_sum = float(np.asarray(v, dtype=np.float64).sum())
    v_sq = float(np.square(np.asarray(v, dtype=np.float64)).sum())
    return f"n={n};nnz={nnz};ip={indptr_sum};ix={indices_sum};vs={v_sum:.12e};vq={v_sq:.12e}"


class SolverCheckpoint:
    """One restored snapshot: the iterate plus solve metadata."""

    __slots__ = ("p", "iteration", "residual", "residual_history", "method", "meta", "path")

    def __init__(
        self,
        p: np.ndarray,
        iteration: int,
        residual: float,
        residual_history: List[float],
        method: str,
        meta: dict,
        path: Optional[Path] = None,
    ) -> None:
        self.p = p
        self.iteration = iteration
        self.residual = residual
        self.residual_history = residual_history
        self.method = method
        self.meta = meta
        self.path = path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverCheckpoint(iteration={self.iteration}, "
            f"method={self.method!r}, residual={self.residual:.3e})"
        )


class CheckpointManager:
    """Reads and writes solver checkpoints in one directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created on first save.
    every:
        Snapshot cadence in iterations (used by the callback built via
        :meth:`callback`).
    keep:
        Number of most-recent checkpoints retained; older ones are
        deleted after a successful save.  Keeping ≥ 2 means a corrupt
        latest file still leaves a usable predecessor.
    retries, backoff:
        Retry policy for transient ``OSError`` during saves.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        every: int = 50,
        keep: int = 2,
        retries: int = 3,
        backoff: float = 0.02,
        sleep: Callable[[float], None] = None,
    ) -> None:
        if every <= 0:
            raise ValueError("checkpoint cadence 'every' must be positive")
        if keep <= 0:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self.saves = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def save(
        self,
        p: np.ndarray,
        iteration: int,
        residual: float,
        *,
        method: str = "",
        residual_history: Optional[List[float]] = None,
        fingerprint: str = "",
        extra: Optional[dict] = None,
    ) -> Path:
        """Atomically write one snapshot; returns the final path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.directory / f"ckpt-{iteration:09d}.npz"
        tmp = final.with_suffix(".npz.tmp")
        meta = {
            "iteration": int(iteration),
            "residual": float(residual),
            "method": method,
            "fingerprint": fingerprint,
        }
        if extra:
            meta.update(extra)
        history = np.asarray(residual_history or [], dtype=np.float64)

        def _write() -> None:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    p=np.asarray(p, dtype=np.float64),
                    residual_history=history,
                    meta=np.asarray(json.dumps(meta)),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)

        kwargs = {"retries": self.retries, "backoff": self.backoff}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            with_retries(_write, **kwargs)
        except OSError as exc:
            raise CheckpointError(
                f"could not write checkpoint {final}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # failed replace or partial write
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        self.saves += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("checkpoint.writes")
            tele.event(
                "checkpoint.write",
                iteration=int(iteration),
                method=method,
                path=final.name,
            )
        self._prune()
        return final

    def _prune(self) -> None:
        paths = self._list()
        for path in paths[: -self.keep]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _list(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        entries = [
            p for p in self.directory.iterdir() if _CKPT_RE.match(p.name)
        ]
        return sorted(entries)  # zero-padded names sort by iteration

    def load_latest(
        self, *, fingerprint: str = "", strict_fingerprint: bool = True
    ) -> Optional[SolverCheckpoint]:
        """Restore the newest readable checkpoint, or ``None``.

        Corrupt archives are skipped (newest first) so one bad file
        never loses the run.  When ``fingerprint`` is given, snapshots
        from a *different* problem raise :class:`CheckpointError`
        (``strict_fingerprint=False`` downgrades that to a skip).
        """
        for path in reversed(self._list()):
            try:
                ckpt = self._read(path)
            except (
                OSError,
                ValueError,
                KeyError,
                zipfile.BadZipFile,
                json.JSONDecodeError,
            ):
                continue  # corrupt or truncated snapshot — try older
            stored = str(ckpt.meta.get("fingerprint", ""))
            if fingerprint and stored not in ("", fingerprint):
                if strict_fingerprint:
                    raise SnapshotMismatchError(
                        f"checkpoint {path} was written for a different "
                        f"problem (stored fingerprint {stored!r}, expected "
                        f"{fingerprint!r}); refusing to resume — pass a "
                        "fresh --checkpoint-dir or delete it",
                        expected=fingerprint,
                        actual=stored,
                    )
                continue
            return ckpt
        return None

    @staticmethod
    def _read(path: Path) -> SolverCheckpoint:
        with np.load(path, allow_pickle=False) as data:
            p = np.asarray(data["p"], dtype=np.float64)
            history = [float(x) for x in data["residual_history"]]
            meta = json.loads(str(data["meta"]))
        if not np.all(np.isfinite(p)):
            raise ValueError(f"checkpoint {path} contains non-finite values")
        return SolverCheckpoint(
            p,
            int(meta["iteration"]),
            float(meta.get("residual", float("inf"))),
            history,
            str(meta.get("method", "")),
            meta,
            path,
        )

    def clear(self) -> int:
        """Delete all checkpoints (after a successful run); returns the
        number removed."""
        removed = 0
        for path in self._list():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - best effort
                pass
        return removed

    # ------------------------------------------------------------------
    # solver integration
    # ------------------------------------------------------------------

    def callback(
        self,
        *,
        method: str = "",
        fingerprint: str = "",
        history: Optional[List[float]] = None,
    ) -> Callable[[int, np.ndarray, float], None]:
        """Build a solver iteration callback that snapshots every
        ``self.every`` iterations (see ``callback=`` on the solvers)."""

        def _on_iteration(iteration: int, p: np.ndarray, residual: float) -> None:
            if iteration % self.every == 0:
                self.save(
                    p,
                    iteration,
                    residual,
                    method=method,
                    residual_history=history,
                    fingerprint=fingerprint,
                )

        return _on_iteration


# ----------------------------------------------------------------------
# converged-solution snapshots (resume-as-previous)
# ----------------------------------------------------------------------

SOLUTION_FILENAME = "solution.npz"


class SolutionSnapshot:
    """A restored *converged* multi-vector solution.

    Unlike :class:`SolverCheckpoint` — a mid-flight iterate used to
    resume an interrupted solve — a solution snapshot is the terminal
    state of a successful run, kept so the *next* run on a mutated graph
    can warm-start the incremental engine
    (:meth:`~repro.perf.engine.PagerankEngine.update_many`) instead of
    solving cold.
    """

    __slots__ = ("scores", "iterations", "residuals", "meta", "path")

    def __init__(
        self,
        scores: np.ndarray,
        iterations: np.ndarray,
        residuals: np.ndarray,
        meta: dict,
        path: Optional[Path] = None,
    ) -> None:
        self.scores = scores
        self.iterations = iterations
        self.residuals = residuals
        self.meta = meta
        self.path = path

    @property
    def fingerprint(self) -> str:
        """Structural fingerprint of the graph the solution solves."""
        return str(self.meta.get("fingerprint", ""))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolutionSnapshot(shape={self.scores.shape}, "
            f"fingerprint={self.fingerprint!r})"
        )


def save_solution(
    directory: Union[str, Path],
    scores: np.ndarray,
    *,
    fingerprint: str,
    iterations: Optional[np.ndarray] = None,
    residuals: Optional[np.ndarray] = None,
    extra: Optional[dict] = None,
    retries: int = 3,
    backoff: float = 0.02,
) -> Path:
    """Atomically write ``solution.npz`` into ``directory``.

    ``fingerprint`` must be the graph's structural fingerprint
    (:meth:`~repro.graph.webgraph.WebGraph.structural_fingerprint`) so a
    later :func:`load_solution` can refuse to warm-start an update
    against the wrong base graph.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    final = directory / SOLUTION_FILENAME
    tmp = final.with_suffix(".npz.tmp")
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 2:
        raise ValueError("solution scores must be an (n, k) array")
    k = scores.shape[1]
    meta = {"fingerprint": fingerprint, "columns": k}
    if extra:
        meta.update(extra)

    def _write() -> None:
        with open(tmp, "wb") as fh:
            np.savez_compressed(
                fh,
                scores=scores,
                iterations=np.asarray(
                    iterations if iterations is not None else np.zeros(k),
                    dtype=np.int64,
                ),
                residuals=np.asarray(
                    residuals if residuals is not None else np.zeros(k),
                    dtype=np.float64,
                ),
                meta=np.asarray(json.dumps(meta)),
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)

    try:
        with_retries(_write, retries=retries, backoff=backoff)
    except OSError as exc:
        raise CheckpointError(
            f"could not write solution snapshot {final}: {exc}"
        ) from exc
    finally:
        if tmp.exists():
            try:
                tmp.unlink()
            except OSError:  # pragma: no cover - best effort
                pass
    tele = get_telemetry()
    if tele.enabled:
        tele.inc("checkpoint.solution_writes")
        tele.event(
            "checkpoint.solution_write",
            columns=k,
            fingerprint=fingerprint,
        )
    return final


def load_solution(
    directory: Union[str, Path],
    *,
    fingerprint: str = "",
) -> SolutionSnapshot:
    """Read ``solution.npz`` back; guard against graph mismatch.

    When ``fingerprint`` is given and the snapshot was written for a
    different graph, raises :class:`~repro.errors.CheckpointError` —
    warm-starting a push update from the wrong base would silently
    converge to a wrong vector (the residual seeding assumes the stored
    scores solve the *before* graph exactly).
    """
    path = Path(directory) / SOLUTION_FILENAME
    if not path.exists():
        raise CheckpointError(
            f"no solution snapshot at {path}; run a cold estimate with "
            "--checkpoint-dir first"
        )
    try:
        with np.load(path, allow_pickle=False) as data:
            scores = np.asarray(data["scores"], dtype=np.float64)
            iterations = np.asarray(data["iterations"], dtype=np.int64)
            residuals = np.asarray(data["residuals"], dtype=np.float64)
            meta = json.loads(str(data["meta"]))
    except (OSError, ValueError, KeyError, zipfile.BadZipFile,
            json.JSONDecodeError) as exc:
        raise CheckpointError(
            f"solution snapshot {path} is unreadable: {exc}"
        ) from exc
    if not np.all(np.isfinite(scores)):
        raise CheckpointError(
            f"solution snapshot {path} contains non-finite values"
        )
    stored = str(meta.get("fingerprint", ""))
    if fingerprint and stored not in ("", fingerprint):
        raise SnapshotMismatchError(
            f"solution snapshot {path} was computed on a different graph "
            f"(stored fingerprint {stored!r}, expected {fingerprint!r}); "
            "re-run the cold estimate",
            expected=fingerprint,
            actual=stored,
        )
    return SolutionSnapshot(scores, iterations, residuals, meta, path)
