"""Solver checkpointing: atomic snapshots of the PageRank iterate.

At the paper's deployment scale (a 73M-host graph re-ranked
continuously) a PageRank run that dies at iteration 80 of 100 wastes
hours if it must restart from the uniform vector.  Jacobi, Gauss-Seidel
and power iteration are memoryless in the iterate — ``p`` plus the
iteration number is a complete state — so a checkpoint is tiny and
resuming is exact.

Format
------
A checkpoint directory holds ``ckpt-<iteration:09d>.npz`` files, each a
compressed numpy archive with:

``p``
    The iterate (float64).
``residual_history``
    The residuals observed so far (may be empty when tracking is off).
``meta``
    A JSON string: ``iteration``, ``method``, ``residual``, ``damping``,
    ``tol`` and a ``fingerprint`` of the problem (size + checksums of
    the jump vector and matrix structure) so a checkpoint is never
    resumed against a *different* system.

Writes are atomic: the archive is written to a ``.tmp`` sibling and
``os.replace``-d into place, so a crash mid-write can never leave a
half-written *current* checkpoint — at worst a stale ``.tmp`` that is
ignored (and cleaned up) by readers.  Transient write failures are
retried with backoff.
"""

from __future__ import annotations

import json
import os
import re
import zipfile
from pathlib import Path
from typing import Callable, List, Optional, Union

import numpy as np

from ..errors import CheckpointError
from ..obs import get_telemetry
from .retry import with_retries

__all__ = ["SolverCheckpoint", "CheckpointManager", "problem_fingerprint"]

_CKPT_RE = re.compile(r"^ckpt-(\d{9})\.npz$")


def problem_fingerprint(transition_t, v: np.ndarray) -> str:
    """Cheap structural fingerprint of a PageRank problem.

    Combines the dimension, edge count and low-cost checksums of the
    matrix structure and jump vector.  Not cryptographic — it exists to
    catch the operational mistake of resuming yesterday's checkpoint
    against today's graph, which would silently converge to garbage.
    """
    n = int(transition_t.shape[0])
    nnz = int(transition_t.nnz)
    indptr_sum = int(np.asarray(transition_t.indptr, dtype=np.int64).sum())
    indices_sum = int(np.asarray(transition_t.indices, dtype=np.int64).sum())
    v_sum = float(np.asarray(v, dtype=np.float64).sum())
    v_sq = float(np.square(np.asarray(v, dtype=np.float64)).sum())
    return f"n={n};nnz={nnz};ip={indptr_sum};ix={indices_sum};vs={v_sum:.12e};vq={v_sq:.12e}"


class SolverCheckpoint:
    """One restored snapshot: the iterate plus solve metadata."""

    __slots__ = ("p", "iteration", "residual", "residual_history", "method", "meta", "path")

    def __init__(
        self,
        p: np.ndarray,
        iteration: int,
        residual: float,
        residual_history: List[float],
        method: str,
        meta: dict,
        path: Optional[Path] = None,
    ) -> None:
        self.p = p
        self.iteration = iteration
        self.residual = residual
        self.residual_history = residual_history
        self.method = method
        self.meta = meta
        self.path = path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SolverCheckpoint(iteration={self.iteration}, "
            f"method={self.method!r}, residual={self.residual:.3e})"
        )


class CheckpointManager:
    """Reads and writes solver checkpoints in one directory.

    Parameters
    ----------
    directory:
        Checkpoint directory; created on first save.
    every:
        Snapshot cadence in iterations (used by the callback built via
        :meth:`callback`).
    keep:
        Number of most-recent checkpoints retained; older ones are
        deleted after a successful save.  Keeping ≥ 2 means a corrupt
        latest file still leaves a usable predecessor.
    retries, backoff:
        Retry policy for transient ``OSError`` during saves.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        every: int = 50,
        keep: int = 2,
        retries: int = 3,
        backoff: float = 0.02,
        sleep: Callable[[float], None] = None,
    ) -> None:
        if every <= 0:
            raise ValueError("checkpoint cadence 'every' must be positive")
        if keep <= 0:
            raise ValueError("must keep at least one checkpoint")
        self.directory = Path(directory)
        self.every = every
        self.keep = keep
        self.retries = retries
        self.backoff = backoff
        self._sleep = sleep
        self.saves = 0

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def save(
        self,
        p: np.ndarray,
        iteration: int,
        residual: float,
        *,
        method: str = "",
        residual_history: Optional[List[float]] = None,
        fingerprint: str = "",
        extra: Optional[dict] = None,
    ) -> Path:
        """Atomically write one snapshot; returns the final path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.directory / f"ckpt-{iteration:09d}.npz"
        tmp = final.with_suffix(".npz.tmp")
        meta = {
            "iteration": int(iteration),
            "residual": float(residual),
            "method": method,
            "fingerprint": fingerprint,
        }
        if extra:
            meta.update(extra)
        history = np.asarray(residual_history or [], dtype=np.float64)

        def _write() -> None:
            with open(tmp, "wb") as fh:
                np.savez_compressed(
                    fh,
                    p=np.asarray(p, dtype=np.float64),
                    residual_history=history,
                    meta=np.asarray(json.dumps(meta)),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)

        kwargs = {"retries": self.retries, "backoff": self.backoff}
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        try:
            with_retries(_write, **kwargs)
        except OSError as exc:
            raise CheckpointError(
                f"could not write checkpoint {final}: {exc}"
            ) from exc
        finally:
            if tmp.exists():  # failed replace or partial write
                try:
                    tmp.unlink()
                except OSError:  # pragma: no cover - best effort
                    pass
        self.saves += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("checkpoint.writes")
            tele.event(
                "checkpoint.write",
                iteration=int(iteration),
                method=method,
                path=final.name,
            )
        self._prune()
        return final

    def _prune(self) -> None:
        paths = self._list()
        for path in paths[: -self.keep]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best effort
                pass

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _list(self) -> List[Path]:
        if not self.directory.is_dir():
            return []
        entries = [
            p for p in self.directory.iterdir() if _CKPT_RE.match(p.name)
        ]
        return sorted(entries)  # zero-padded names sort by iteration

    def load_latest(
        self, *, fingerprint: str = "", strict_fingerprint: bool = True
    ) -> Optional[SolverCheckpoint]:
        """Restore the newest readable checkpoint, or ``None``.

        Corrupt archives are skipped (newest first) so one bad file
        never loses the run.  When ``fingerprint`` is given, snapshots
        from a *different* problem raise :class:`CheckpointError`
        (``strict_fingerprint=False`` downgrades that to a skip).
        """
        for path in reversed(self._list()):
            try:
                ckpt = self._read(path)
            except (
                OSError,
                ValueError,
                KeyError,
                zipfile.BadZipFile,
                json.JSONDecodeError,
            ):
                continue  # corrupt or truncated snapshot — try older
            if fingerprint and ckpt.meta.get("fingerprint") not in ("", fingerprint):
                if strict_fingerprint:
                    raise CheckpointError(
                        f"checkpoint {path} was written for a different "
                        "problem (fingerprint mismatch); refusing to resume "
                        "— pass a fresh --checkpoint-dir or delete it"
                    )
                continue
            return ckpt
        return None

    @staticmethod
    def _read(path: Path) -> SolverCheckpoint:
        with np.load(path, allow_pickle=False) as data:
            p = np.asarray(data["p"], dtype=np.float64)
            history = [float(x) for x in data["residual_history"]]
            meta = json.loads(str(data["meta"]))
        if not np.all(np.isfinite(p)):
            raise ValueError(f"checkpoint {path} contains non-finite values")
        return SolverCheckpoint(
            p,
            int(meta["iteration"]),
            float(meta.get("residual", float("inf"))),
            history,
            str(meta.get("method", "")),
            meta,
            path,
        )

    def clear(self) -> int:
        """Delete all checkpoints (after a successful run); returns the
        number removed."""
        removed = 0
        for path in self._list():
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - best effort
                pass
        return removed

    # ------------------------------------------------------------------
    # solver integration
    # ------------------------------------------------------------------

    def callback(
        self,
        *,
        method: str = "",
        fingerprint: str = "",
        history: Optional[List[float]] = None,
    ) -> Callable[[int, np.ndarray, float], None]:
        """Build a solver iteration callback that snapshots every
        ``self.every`` iterations (see ``callback=`` on the solvers)."""

        def _on_iteration(iteration: int, p: np.ndarray, residual: float) -> None:
            if iteration % self.every == 0:
                self.save(
                    p,
                    iteration,
                    residual,
                    method=method,
                    residual_history=history,
                    fingerprint=fingerprint,
                )

        return _on_iteration
