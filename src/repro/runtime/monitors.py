"""Residual monitors: detect a solve going wrong *while* it runs.

Related work (Avrachenkov et al. on damping-factor conditioning) shows
the PageRank iteration can converge badly or not at all when the
system is ill-conditioned; NaN poisoning from corrupt input does the
rest.  A monitor rides along as the solver's iteration callback and
aborts the attempt — via :class:`~repro.errors.SolverAbort` — the
moment the residual stream looks pathological, so the fallback chain
can escalate instead of burning the whole iteration budget.

Detected conditions
-------------------
``nan``
    Non-finite residual, or non-finite entries in the iterate
    (the iterate is scanned every ``check_every`` iterations — an
    O(n) scan amortized away from the hot loop).
``diverged``
    Residual exceeds ``divergence_factor`` × the best residual seen
    (after a grace period of ``min_iterations``).
``stagnated``
    Over a sliding window the residual improved by less than
    ``stagnation_ratio`` while still above tolerance.
``time-budget``
    Wall-clock deadline passed (see :class:`Deadline`).
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

import numpy as np

from ..errors import BudgetExceeded, SolverAbort

__all__ = ["ResidualMonitor", "Deadline", "compose_callbacks"]


class Deadline:
    """Wall-clock budget shared across the attempts of one solve."""

    def __init__(
        self,
        seconds: Optional[float],
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError("time budget must be positive")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()

    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> Optional[float]:
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.seconds is not None and self.elapsed() >= self.seconds

    def check(self) -> None:
        if self.expired():
            raise BudgetExceeded(
                "time-budget",
                f"wall-time budget of {self.seconds:g}s exhausted "
                f"after {self.elapsed():.2f}s",
            )


class ResidualMonitor:
    """Iteration callback that aborts pathological solves.

    Use as ``callback=monitor`` on any iterative solver; instances are
    single-use (state accumulates across calls).
    """

    def __init__(
        self,
        *,
        tol: float = 0.0,
        check_every: int = 10,
        min_iterations: int = 5,
        divergence_factor: float = 1e6,
        stagnation_window: int = 50,
        stagnation_ratio: float = 0.999,
        deadline: Optional[Deadline] = None,
    ) -> None:
        if check_every <= 0:
            raise ValueError("check_every must be positive")
        if divergence_factor <= 1.0:
            raise ValueError("divergence_factor must exceed 1")
        if not (0.0 < stagnation_ratio <= 1.0):
            raise ValueError("stagnation_ratio must be in (0, 1]")
        self.tol = tol
        self.check_every = check_every
        self.min_iterations = min_iterations
        self.divergence_factor = divergence_factor
        self.stagnation_window = stagnation_window
        self.stagnation_ratio = stagnation_ratio
        self.deadline = deadline
        self.best_residual = float("inf")
        self.observed = 0
        self._window: List[float] = []

    def __call__(self, iteration: int, p: np.ndarray, residual: float) -> None:
        self.observed += 1
        if self.deadline is not None:
            self.deadline.check()
        if not np.isfinite(residual):
            raise SolverAbort(
                "nan", f"non-finite residual at iteration {iteration}"
            )
        if self.observed % self.check_every == 0 and not np.all(np.isfinite(p)):
            raise SolverAbort(
                "nan", f"non-finite iterate entries at iteration {iteration}"
            )
        if (
            self.observed > self.min_iterations
            and np.isfinite(self.best_residual)
            and residual > self.divergence_factor * max(self.best_residual, 1e-300)
        ):
            raise SolverAbort(
                "diverged",
                f"residual {residual:.3e} exceeds {self.divergence_factor:g}x "
                f"the best seen ({self.best_residual:.3e}) "
                f"at iteration {iteration}",
            )
        self._window.append(residual)
        if len(self._window) > self.stagnation_window:
            oldest = self._window.pop(0)
            if (
                residual > self.tol
                and oldest > 0
                and residual > self.stagnation_ratio * oldest
            ):
                raise SolverAbort(
                    "stagnated",
                    f"residual improved by less than "
                    f"{1 - self.stagnation_ratio:.2%} over the last "
                    f"{self.stagnation_window} iterations "
                    f"(now {residual:.3e} at iteration {iteration})",
                )
        self.best_residual = min(self.best_residual, residual)


def compose_callbacks(
    *callbacks: Optional[Callable[[int, np.ndarray, float], None]],
) -> Optional[Callable[[int, np.ndarray, float], None]]:
    """Chain iteration callbacks, skipping ``None`` entries.

    Callbacks run in order; fault injectors that *mutate* the iterate
    should come before monitors so the poison is seen the same
    iteration it is planted.
    """
    active = [cb for cb in callbacks if cb is not None]
    if not active:
        return None
    if len(active) == 1:
        return active[0]

    def _chained(iteration: int, p: np.ndarray, residual: float) -> None:
        for cb in active:
            cb(iteration, p, residual)

    return _chained
