"""Resilient PageRank solving: fallback chains, budgets, checkpoints.

The paper's pipeline (Algorithm 2) is something a search engine re-runs
forever; a production run must *finish with its best answer* rather
than die with a traceback.  :class:`FallbackSolver` wraps the solvers
of :mod:`repro.core.solvers` in that contract:

* each attempt runs under a :class:`~repro.runtime.monitors.ResidualMonitor`
  that aborts on NaN, divergence or stagnation;
* a failed attempt **escalates** down a method chain (default
  ``gauss_seidel → jacobi → power → direct``, fancy-but-fragile first,
  slow-but-robust last);
* iteration and wall-time budgets convert "would run forever" into a
  best-effort vector flagged ``converged=False`` — never an exception;
* optional checkpointing snapshots the iterate so a killed run resumes
  from the last snapshot instead of iteration 0;
* everything that happened is recorded in a structured
  :class:`RunReport` attached to the returned ``SolverResult``.

Genuine kills (``KeyboardInterrupt``, and the chaos stand-in
:class:`~repro.errors.InjectedFault`) are *not* swallowed — they
propagate so the process can die, which is exactly what the
checkpoint/resume path is for.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.solvers import SOLVERS, SolverResult
from ..errors import BudgetExceeded, InjectedFault, SolverAbort
from ..obs import get_telemetry
from .checkpoint import CheckpointManager, problem_fingerprint
from .monitors import Deadline, ResidualMonitor, compose_callbacks

__all__ = [
    "DEFAULT_CHAIN",
    "AttemptRecord",
    "RunReport",
    "FallbackSolver",
    "RuntimePolicy",
    "resilient_solve",
]

#: Escalation order: the methods that converge fastest on healthy input
#: first, the unconditionally-robust direct solve last.
DEFAULT_CHAIN = ("gauss_seidel", "jacobi", "power", "direct")

#: Exceptions a solver attempt may raise that the chain treats as
#: "this method failed here, try the next one".  Process-kill stand-ins
#: (InjectedFault, KeyboardInterrupt) are deliberately absent.
RECOVERABLE = (
    MemoryError,
    OSError,
    ArithmeticError,  # FloatingPointError, ZeroDivisionError, OverflowError
    np.linalg.LinAlgError,
    ValueError,
)


class AttemptRecord:
    """One solver attempt inside a fallback chain."""

    __slots__ = (
        "method",
        "outcome",
        "iterations",
        "residual",
        "wall_time",
        "detail",
    )

    def __init__(
        self,
        method: str,
        outcome: str,
        iterations: int = 0,
        residual: float = float("inf"),
        wall_time: float = 0.0,
        detail: str = "",
    ) -> None:
        self.method = method
        self.outcome = outcome
        self.iterations = iterations
        self.residual = residual
        self.wall_time = wall_time
        self.detail = detail

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "outcome": self.outcome,
            "iterations": self.iterations,
            "residual": self.residual,
            "wall_time": self.wall_time,
            "detail": self.detail,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttemptRecord({self.method!r}, {self.outcome!r})"


class RunReport:
    """Structured diagnostics for one resilient solve.

    Attributes
    ----------
    attempts:
        Per-method :class:`AttemptRecord` list, in execution order.
    outcome:
        ``"converged"`` or ``"best-effort"``.
    resumed_from:
        Iteration restored from a checkpoint, or ``None``.
    checkpoints_written:
        Snapshots saved during this solve.
    wall_time:
        Total seconds across the chain.
    """

    __slots__ = (
        "attempts",
        "outcome",
        "resumed_from",
        "checkpoints_written",
        "wall_time",
        "time_budget",
    )

    def __init__(self) -> None:
        self.attempts: List[AttemptRecord] = []
        self.outcome = "best-effort"
        self.resumed_from: Optional[int] = None
        self.checkpoints_written = 0
        self.wall_time = 0.0
        self.time_budget: Optional[float] = None

    def escalations(self) -> List[str]:
        """Methods actually *run* (skipped entries excluded), in order."""
        return [
            a.method
            for a in self.attempts
            if not a.outcome.startswith("skipped")
        ]

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "resumed_from": self.resumed_from,
            "checkpoints_written": self.checkpoints_written,
            "wall_time": self.wall_time,
            "time_budget": self.time_budget,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    def render(self) -> str:
        """Human-readable one-paragraph summary (CLI verbose output)."""
        lines = [f"resilient solve: {self.outcome} in {self.wall_time:.2f}s"]
        if self.resumed_from is not None:
            lines.append(f"  resumed from checkpoint at iteration {self.resumed_from}")
        if self.checkpoints_written:
            lines.append(f"  wrote {self.checkpoints_written} checkpoint(s)")
        for a in self.attempts:
            extra = f" — {a.detail}" if a.detail else ""
            lines.append(
                f"  {a.method}: {a.outcome} "
                f"({a.iterations} it, residual {a.residual:.3e}, "
                f"{a.wall_time:.2f}s){extra}"
            )
        return "\n".join(lines)


class FallbackSolver:
    """Run a solver chain with monitoring, budgets and checkpoints.

    Parameters
    ----------
    chain:
        Method names from :data:`repro.core.solvers.SOLVERS`, tried in
        order.  ``power`` is skipped (and recorded as skipped) when the
        jump vector is unnormalized, since the eigenvector formulation
        requires ``‖v‖₁ = 1``.
    tol, max_iter:
        Per-attempt stopping controls.
    time_budget:
        Wall-clock seconds across the *whole chain*; when it expires the
        best finite iterate seen so far is returned with
        ``converged=False``.
    checkpoint:
        A :class:`CheckpointManager`, a directory path, or ``None``.
    checkpoint_every:
        Snapshot cadence when ``checkpoint`` is a path.
    monitor_options:
        Extra keyword arguments for :class:`ResidualMonitor`.
    """

    def __init__(
        self,
        chain: Sequence[str] = DEFAULT_CHAIN,
        *,
        tol: float = 1e-12,
        max_iter: int = 10_000,
        time_budget: Optional[float] = None,
        checkpoint: Union[None, str, Path, CheckpointManager] = None,
        checkpoint_every: int = 50,
        monitor_options: Optional[dict] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not chain:
            raise ValueError("fallback chain must not be empty")
        unknown = [m for m in chain if m not in SOLVERS]
        if unknown:
            raise ValueError(
                f"unknown solver(s) {unknown} in chain; "
                f"available: {sorted(SOLVERS)}"
            )
        self.chain = tuple(chain)
        self.tol = tol
        self.max_iter = max_iter
        self.time_budget = time_budget
        self.monitor_options = dict(monitor_options or {})
        self.clock = clock
        if checkpoint is None or isinstance(checkpoint, CheckpointManager):
            self.checkpoints = checkpoint
        else:
            self.checkpoints = CheckpointManager(
                checkpoint, every=checkpoint_every
            )

    # ------------------------------------------------------------------

    def solve(
        self,
        transition_t,
        v: np.ndarray,
        *,
        damping: float = 0.85,
        resume: bool = False,
        inject: Optional[Callable[[int, np.ndarray, float], None]] = None,
    ) -> SolverResult:
        """Solve the PageRank system, never raising on numerical failure.

        Returns a :class:`SolverResult` whose ``report`` attribute holds
        the :class:`RunReport`.  ``inject`` is a chaos hook (an extra
        iteration callback, run before monitoring) used by the fault
        injection test-suite.

        When telemetry is enabled (see :mod:`repro.obs`) the solve is
        wrapped in a ``fallback-solve`` span and every attempt,
        escalation and checkpoint resume is emitted as an event — the
        chaos suite asserts these against injected faults.
        """
        tele = get_telemetry()
        if not tele.enabled:
            return self._solve_traced(
                transition_t, v, damping=damping, resume=resume,
                inject=inject, tele=tele,
            )
        with tele.span("fallback-solve", chain=list(self.chain)) as sp:
            result = self._solve_traced(
                transition_t, v, damping=damping, resume=resume,
                inject=inject, tele=tele,
            )
            sp.set("outcome", result.report.outcome)
            sp.set("method", result.method)
            return result

    def _solve_traced(
        self,
        transition_t,
        v: np.ndarray,
        *,
        damping: float,
        resume: bool,
        inject: Optional[Callable[[int, np.ndarray, float], None]],
        tele,
    ) -> SolverResult:
        report = RunReport()
        report.time_budget = self.time_budget
        deadline = Deadline(self.time_budget, clock=self.clock)
        fingerprint = problem_fingerprint(transition_t, v)
        ckpt_saves_before = (
            self.checkpoints.saves if self.checkpoints is not None else 0
        )

        x0: Optional[np.ndarray] = None
        start_iteration = 0
        if resume and self.checkpoints is not None:
            restored = self.checkpoints.load_latest(fingerprint=fingerprint)
            if restored is not None:
                x0 = restored.p
                start_iteration = restored.iteration
                report.resumed_from = restored.iteration
                if tele.enabled:
                    tele.inc("solver.resumes")
                    tele.event("solver.resumed", iteration=restored.iteration)

        def _note(record: AttemptRecord, curve=None) -> None:
            """Record one attempt and mirror it onto the telemetry bus."""
            report.attempts.append(record)
            if tele.enabled:
                tele.event(
                    "solver.attempt",
                    method=record.method,
                    outcome=record.outcome,
                    iterations=record.iterations,
                )
                tele.observe("solver.iterations", record.iterations)
                if curve:
                    tele.observe_many("solver.residual_curve", curve)

        normalized = abs(float(v.sum()) - 1.0) <= 1e-9
        # best finite iterate across all attempts: (residual, p, method, its)
        best: Optional[Tuple[float, np.ndarray, str, int]] = None
        final: Optional[SolverResult] = None
        last_run: Optional[str] = None

        for position, method in enumerate(self.chain):
            if deadline.expired():
                break
            if method == "power" and not normalized:
                _note(
                    AttemptRecord(
                        method,
                        "skipped:unnormalized-v",
                        detail="power iteration requires ||v||_1 = 1",
                    )
                )
                continue
            if tele.enabled:
                tele.inc("solver.attempts")
                if last_run is not None:
                    tele.inc("solver.escalations")
                    tele.event(
                        "solver.escalation",
                        **{"from": last_run, "to": method},
                    )
            last_run = method

            monitor = ResidualMonitor(
                tol=self.tol, deadline=deadline, **self.monitor_options
            )
            history: List[float] = []
            last_seen = {"p": None, "residual": float("inf"), "iteration": 0}

            def _record(it: int, p: np.ndarray, residual: float) -> None:
                history.append(residual)
                last_seen["p"] = p
                last_seen["residual"] = residual
                last_seen["iteration"] = it

            ckpt_cb = None
            if self.checkpoints is not None:
                ckpt_cb = self.checkpoints.callback(
                    method=method, fingerprint=fingerprint, history=history
                )
            if inject is not None:
                try:
                    inject._chaos_method = method
                except AttributeError:  # pragma: no cover - exotic callables
                    pass
            # injection first (it mutates the iterate), then recording,
            # then monitoring (may abort), then checkpointing — so a
            # pathological iteration is never snapshotted.
            callback = compose_callbacks(inject, _record, monitor, ckpt_cb)

            attempt_start = self.clock()
            iterative = method not in ("direct", "bicgstab")
            try:
                result = SOLVERS[method](
                    transition_t,
                    v,
                    damping=damping,
                    tol=self.tol,
                    max_iter=self.max_iter,
                    callback=callback,
                    x0=x0 if iterative else None,
                    start_iteration=start_iteration if iterative else 0,
                )
            except BudgetExceeded as exc:
                _note(
                    AttemptRecord(
                        method,
                        "aborted:time-budget",
                        last_seen["iteration"],
                        last_seen["residual"],
                        self.clock() - attempt_start,
                        str(exc),
                    ),
                    history,
                )
                best = _fold_best(best, last_seen, method)
                break  # budget is global: stop escalating
            except SolverAbort as exc:
                _note(
                    AttemptRecord(
                        method,
                        f"aborted:{exc.reason}",
                        last_seen["iteration"],
                        last_seen["residual"],
                        self.clock() - attempt_start,
                        str(exc),
                    ),
                    history,
                )
                if exc.reason == "stagnated":
                    # a stagnated iterate is still the best answer so far
                    best = _fold_best(best, last_seen, method)
            except RECOVERABLE as exc:
                _note(
                    AttemptRecord(
                        method,
                        f"error:{type(exc).__name__}",
                        last_seen["iteration"],
                        last_seen["residual"],
                        self.clock() - attempt_start,
                        str(exc),
                    ),
                    history,
                )
            else:
                elapsed = self.clock() - attempt_start
                if result.converged:
                    _note(
                        AttemptRecord(
                            method,
                            "converged",
                            result.iterations,
                            result.residual,
                            elapsed,
                        ),
                        history,
                    )
                    final = result
                    break
                _note(
                    AttemptRecord(
                        method,
                        "exhausted",
                        result.iterations,
                        result.residual,
                        elapsed,
                        f"hit max_iter={self.max_iter} above tol",
                    ),
                    history,
                )
                if np.all(np.isfinite(result.scores)):
                    candidate = {
                        "p": result.scores,
                        "residual": result.residual,
                        "iteration": result.iterations,
                    }
                    best = _fold_best(best, candidate, method)
            finally:
                if inject is not None and hasattr(inject, "_chaos_method"):
                    try:
                        del inject._chaos_method
                    except AttributeError:  # pragma: no cover
                        pass
            # after the first attempt, never reuse a failed method's
            # iterate: subsequent methods start fresh from v
            x0 = None
            start_iteration = 0

        report.wall_time = deadline.elapsed()
        if self.checkpoints is not None:
            report.checkpoints_written = (
                self.checkpoints.saves - ckpt_saves_before
            )

        if final is None:
            final = self._best_effort(v, best)
            report.outcome = "best-effort"
        else:
            report.outcome = "converged"
        final.report = report
        return final

    @staticmethod
    def _best_effort(
        v: np.ndarray,
        best: Optional[Tuple[float, np.ndarray, str, int]],
    ) -> SolverResult:
        """The never-raise terminal state: lowest-residual finite iterate
        seen anywhere in the chain, or the jump vector itself."""
        if best is not None:
            residual, p, method, iterations = best
            return SolverResult(
                np.array(p, dtype=np.float64, copy=True),
                iterations,
                residual,
                False,
                method,
            )
        return SolverResult(
            v.astype(np.float64, copy=True), 0, float("inf"), False, "none"
        )


def _fold_best(
    best: Optional[Tuple[float, np.ndarray, str, int]],
    seen: dict,
    method: str,
) -> Optional[Tuple[float, np.ndarray, str, int]]:
    """Keep the finite iterate with the lowest residual."""
    p = seen.get("p")
    residual = float(seen.get("residual", float("inf")))
    if p is None or not np.isfinite(residual) or not np.all(np.isfinite(p)):
        return best
    if best is None or residual < best[0]:
        return (residual, p, method, int(seen.get("iteration", 0)))
    return best


class RuntimePolicy:
    """Bundle of resilience settings threaded through the pipeline.

    The CLI builds one of these from ``--checkpoint-dir``, ``--resume``
    and ``--time-budget``;
    :func:`repro.core.mass.estimate_spam_mass` and
    :meth:`repro.eval.experiment.ReproductionContext.build` accept it as
    ``policy=``.  ``checkpoint_dir`` is a *base* directory: each solve
    in a multi-solve computation gets its own labeled subdirectory
    (e.g. ``<dir>/pagerank``, ``<dir>/core``) so resumes never mix
    iterates from different jump vectors.
    """

    __slots__ = (
        "chain",
        "time_budget",
        "checkpoint_dir",
        "checkpoint_every",
        "resume",
        "monitor_options",
    )

    def __init__(
        self,
        *,
        chain: Sequence[str] = DEFAULT_CHAIN,
        time_budget: Optional[float] = None,
        checkpoint_dir: Union[None, str, Path] = None,
        checkpoint_every: int = 50,
        resume: bool = False,
        monitor_options: Optional[dict] = None,
    ) -> None:
        self.chain = tuple(chain)
        self.time_budget = time_budget
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.monitor_options = dict(monitor_options or {})
        if resume and self.checkpoint_dir is None:
            raise ValueError("resume=True requires a checkpoint_dir")

    def make_solver(
        self,
        label: str = "",
        *,
        tol: float = 1e-12,
        max_iter: int = 10_000,
    ) -> FallbackSolver:
        """Build the :class:`FallbackSolver` for one labeled solve."""
        checkpoint = None
        if self.checkpoint_dir is not None:
            directory = (
                self.checkpoint_dir / label if label else self.checkpoint_dir
            )
            checkpoint = CheckpointManager(
                directory, every=self.checkpoint_every
            )
        return FallbackSolver(
            self.chain,
            tol=tol,
            max_iter=max_iter,
            time_budget=self.time_budget,
            checkpoint=checkpoint,
            monitor_options=self.monitor_options,
        )


def resilient_solve(
    transition_t,
    v: np.ndarray,
    *,
    damping: float = 0.85,
    tol: float = 1e-12,
    max_iter: int = 10_000,
    chain: Sequence[str] = DEFAULT_CHAIN,
    time_budget: Optional[float] = None,
    checkpoint: Union[None, str, Path, CheckpointManager] = None,
    resume: bool = False,
    inject: Optional[Callable[[int, np.ndarray, float], None]] = None,
) -> SolverResult:
    """One-call convenience wrapper around :class:`FallbackSolver`."""
    solver = FallbackSolver(
        chain,
        tol=tol,
        max_iter=max_iter,
        time_budget=time_budget,
        checkpoint=checkpoint,
    )
    return solver.solve(transition_t, v, damping=damping, resume=resume, inject=inject)
