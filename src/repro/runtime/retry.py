"""Retry-with-backoff for transient failures (I/O, mostly).

Kept dependency-free at module import time (the only intra-package
import is a lazy one of :mod:`repro.obs`, itself stdlib-only, on the
rare retry path) so any layer — including :mod:`repro.graph.io`, which
sits below the runtime package — can use it without import cycles.
"""

from __future__ import annotations

import time
from typing import Callable, Tuple, Type, TypeVar

__all__ = ["with_retries"]

T = TypeVar("T")


def with_retries(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    backoff: float = 0.05,
    factor: float = 2.0,
    exceptions: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
) -> T:
    """Call ``fn`` up to ``1 + retries`` times with exponential backoff.

    Parameters
    ----------
    fn:
        Zero-argument callable; must be safe to re-run (the io writers
        re-open and rewrite the whole file on each attempt).
    retries:
        Number of *re*-tries after the first attempt; 0 disables
        retrying entirely.
    backoff:
        Sleep before the first retry, in seconds; each subsequent retry
        multiplies it by ``factor``.
    exceptions:
        Exception types considered transient.  Anything else propagates
        immediately.
    sleep:
        Injection point for tests (and for event-loop integration).

    The final failure propagates unchanged, so callers see the genuine
    exception once the budget is exhausted.
    """
    if retries < 0:
        raise ValueError("retries must be non-negative")
    delay = backoff
    for attempt in range(retries + 1):
        try:
            return fn()
        except exceptions as exc:
            if attempt == retries:
                raise
            from ..obs import get_telemetry

            tele = get_telemetry()
            if tele.enabled:
                tele.inc("retry.attempts")
                tele.event(
                    "retry",
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                    delay=delay,
                )
            sleep(delay)
            delay *= factor
    raise AssertionError("unreachable")  # pragma: no cover
