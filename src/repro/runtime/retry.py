"""Deterministic retry/backoff policies for transient failures.

Two layers live here:

* :class:`BackoffPolicy` — a frozen, seeded description of a backoff
  schedule (exponential growth, optional jitter, per-delay and
  cumulative caps).  The schedule is a pure function of the policy (and
  an optional injected ``rng``), so a retry storm replays identically
  under test and in production post-mortems.
* :func:`with_retries` — call a zero-argument function under a policy,
  emitting ``retry.attempt`` telemetry on every rescheduled failure.

Kept dependency-free at module import time (the only intra-package
import is a lazy one of :mod:`repro.obs`, itself stdlib-only, on the
rare retry path) so any layer — including :mod:`repro.graph.io`, which
sits below the runtime package — can use it without import cycles.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple, Type, TypeVar

__all__ = ["BackoffPolicy", "with_retries"]

T = TypeVar("T")


@dataclass(frozen=True)
class BackoffPolicy:
    """A deterministic exponential-backoff schedule.

    Attributes
    ----------
    retries:
        Number of *re*-tries after the first attempt; 0 disables
        retrying entirely.
    base:
        Sleep before the first retry, in seconds.
    factor:
        Multiplier applied to the raw delay after every retry.
    jitter:
        Fraction in ``[0, 1)``; each delay is stretched by a seeded
        uniform factor in ``[1, 1 + jitter]``.  Zero (the default)
        makes the schedule jitter-free and byte-for-byte reproducible
        without any RNG at all.
    max_delay:
        Upper bound on any single sleep (``None`` = unbounded).
    max_total:
        Hard cap on the *cumulative* sleep across the whole schedule;
        later delays are clipped so the sum never exceeds it.
    seed:
        Seed of the jitter stream (ignored when ``jitter == 0`` or an
        explicit ``rng`` is passed to :meth:`delays`).
    """

    retries: int = 3
    base: float = 0.05
    factor: float = 2.0
    jitter: float = 0.0
    max_delay: Optional[float] = None
    max_total: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be non-negative")
        if self.base < 0:
            raise ValueError("base delay must be non-negative")
        if self.factor <= 0:
            raise ValueError("backoff factor must be positive")
        if not (0.0 <= self.jitter < 1.0):
            raise ValueError("jitter must be in [0, 1)")
        if self.max_delay is not None and self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if self.max_total is not None and self.max_total < 0:
            raise ValueError("max_total must be non-negative")

    def delays(self, rng: Optional[random.Random] = None) -> List[float]:
        """The full sleep schedule, one entry per retry.

        Deterministic: the same policy (and the same ``rng`` state, when
        one is injected) always yields the same list.  The sum of the
        returned delays never exceeds ``max_total``.
        """
        if rng is None:
            rng = random.Random(self.seed)
        schedule: List[float] = []
        raw = self.base
        total = 0.0
        for _ in range(self.retries):
            delay = raw * (1.0 + self.jitter * rng.random())
            if self.max_delay is not None:
                delay = min(delay, self.max_delay)
            if self.max_total is not None:
                delay = min(delay, max(0.0, self.max_total - total))
            schedule.append(delay)
            total += delay
            raw *= self.factor
        return schedule

    def total_sleep(self, rng: Optional[random.Random] = None) -> float:
        """Worst-case cumulative sleep of the schedule."""
        return sum(self.delays(rng))


def _emit_retry(attempt: int, retries: int, exc: BaseException,
                delay: float, label: Optional[str]) -> None:
    from ..obs import get_telemetry

    tele = get_telemetry()
    if not tele.enabled:
        return
    tele.inc("retry.attempts")
    attrs = dict(
        attempt=attempt,
        retries=retries,
        error=type(exc).__name__,
        delay=delay,
    )
    if label is not None:
        attrs["label"] = label
    tele.event("retry.attempt", **attrs)


def with_retries(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    backoff: float = 0.05,
    factor: float = 2.0,
    exceptions: Tuple[Type[BaseException], ...] = (OSError,),
    sleep: Callable[[float], None] = time.sleep,
    policy: Optional[BackoffPolicy] = None,
    rng: Optional[random.Random] = None,
    label: Optional[str] = None,
) -> T:
    """Call ``fn`` up to ``1 + retries`` times with exponential backoff.

    Parameters
    ----------
    fn:
        Zero-argument callable; must be safe to re-run (the io writers
        re-open and rewrite the whole file on each attempt).
    retries, backoff, factor:
        Shorthand for a jitter-free :class:`BackoffPolicy`; ignored
        when an explicit ``policy`` is passed.
    exceptions:
        Exception types considered transient.  Anything else propagates
        immediately.
    sleep:
        Injection point for tests (and for event-loop integration).
    policy:
        An explicit :class:`BackoffPolicy`; the sleep schedule is
        computed up front from it, so the total sleep is bounded by
        ``policy.max_total`` regardless of how the failures interleave.
    rng:
        Explicit jitter stream (a :class:`random.Random`), overriding
        the policy's own ``seed``.
    label:
        Optional tag attached to the ``retry.attempt`` telemetry.

    The final failure propagates unchanged, so callers see the genuine
    exception once the budget is exhausted.
    """
    if policy is None:
        policy = BackoffPolicy(retries=retries, base=backoff, factor=factor)
    schedule = policy.delays(rng)
    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except exceptions as exc:
            if attempt == policy.retries:
                raise
            delay = schedule[attempt]
            _emit_retry(attempt + 1, policy.retries, exc, delay, label)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
