"""Supervised fan-out execution: retries, deadlines, circuit breaking.

The perf layer fans work out — Monte-Carlo walk chunks over a process
pool, stacked PageRank columns through the batched kernel — and fan-out
is where production runs die ugly deaths: a worker segfaults and takes
every completed chunk with it, a hung worker blocks an ordered
``f.result()`` forever, a flaky node fails the same plan five times in
a row.  :class:`TaskSupervisor` wraps any *deterministic* task plan in
the operational behaviors those failures demand:

* **per-task retry** with a seeded, policy-driven exponential backoff
  (:class:`~repro.runtime.retry.BackoffPolicy` — the schedule is fixed
  up front, so a retry storm replays identically);
* **per-task deadlines** enforced by a watchdog poll loop — a hung
  worker is abandoned at its deadline instead of blocking the gather,
  and its task is re-executed elsewhere;
* a **circuit breaker** that opens after N *consecutive* failures
  (task faults, timeouts, pool breakages all count; any success
  resets) and degrades the remaining plan from the process pool to
  in-process serial execution;
* **partial-result salvage**: completed tasks are never re-executed —
  only failed, timed-out or never-finished ones re-run, and the
  ``supervisor.salvaged_chunks`` event records exactly which.

Because the task plan is fixed *before* execution (the Monte-Carlo
chunk plan and per-chunk RNG streams depend only on the walk budget and
seed; PageRank columns are independent by construction), results are
bitwise-identical no matter where or how often tasks run — supervision
changes wall-time and resilience, never numbers.

Telemetry (all through :func:`repro.obs.get_telemetry`):

========================== ==========================================
``supervisor.retry``        a failed task was rescheduled
``supervisor.task_timeout`` a task exceeded its deadline and was
                            abandoned on the pool
``supervisor.circuit_open`` N consecutive failures tripped the breaker
``supervisor.degraded``     execution fell back to in-process serial
``supervisor.salvaged_chunks`` completed/re-executed split of a
                            faulted run
========================== ==========================================
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from concurrent.futures import FIRST_COMPLETED, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SupervisionError
from .retry import BackoffPolicy

__all__ = [
    "SupervisorPolicy",
    "CircuitBreaker",
    "SupervisionReport",
    "TaskSupervisor",
    "DEFAULT_BACKOFF",
    "CIRCUIT_STATES",
]

#: Numeric encoding of the ``supervisor.circuit_state`` gauge, so
#: dashboards and tests can *poll* the breaker instead of replaying
#: transition events: 0 = closed (healthy), 1 = open (breaker
#: tripped), 2 = degraded (execution fell back to in-process serial).
CIRCUIT_STATES = {"closed": 0, "open": 1, "degraded": 2}

try:  # BrokenExecutor covers BrokenProcessPool (worker death)
    from concurrent.futures import BrokenExecutor
except ImportError:  # pragma: no cover - ancient pythons
    BrokenExecutor = RuntimeError  # type: ignore[assignment,misc]

#: Default backoff between task retries: short, capped, jitter-free —
#: fan-out tasks are CPU-bound and local, so there is no remote service
#: to be polite to; the backoff exists to ride out transient memory or
#: scheduler pressure without busy-looping.
DEFAULT_BACKOFF = BackoffPolicy(
    retries=2, base=0.02, factor=2.0, max_total=1.0
)


@dataclass(frozen=True)
class SupervisorPolicy:
    """The knobs of one supervised execution.

    Attributes
    ----------
    max_task_retries:
        Re-executions allowed per task after its first attempt.  A task
        that fails ``1 + max_task_retries`` times raises
        :class:`~repro.errors.SupervisionError`.
    task_timeout:
        Per-task deadline in seconds, measured from pool submission
        (``None`` disables the watchdog).  Timed-out tasks are
        abandoned — their hung worker keeps its pool slot, so the retry
        runs in-process instead of behind the hang.
    backoff:
        Deterministic sleep schedule between retries of one task.
    circuit_threshold:
        Consecutive failures (of any kind) that open the breaker.
    allow_degrade:
        Whether pool → in-process serial degradation is permitted.
        When ``False``, any condition that would require it (pool
        unavailable, circuit open, task timeout) raises
        :class:`~repro.errors.SupervisionError` instead.
    poll_interval:
        Watchdog heartbeat in seconds: the cadence at which the gather
        loop wakes to check deadlines and release backed-off retries.
    """

    max_task_retries: int = 2
    task_timeout: Optional[float] = None
    backoff: BackoffPolicy = DEFAULT_BACKOFF
    circuit_threshold: int = 3
    allow_degrade: bool = True
    poll_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be non-negative")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.circuit_threshold < 1:
            raise ValueError("circuit_threshold must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")


class CircuitBreaker:
    """Opens after ``threshold`` *consecutive* failures; success resets.

    Deliberately minimal: no half-open probing — within one supervised
    run, an open circuit means "stop trusting the pool for this plan";
    the next run starts with a fresh breaker.
    """

    def __init__(self, threshold: int) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.threshold = threshold
        self.consecutive_failures = 0
        self.opened = False

    def record_success(self) -> None:
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Count a failure; returns True when this one opened the
        circuit (exactly once)."""
        self.consecutive_failures += 1
        if not self.opened and self.consecutive_failures >= self.threshold:
            self.opened = True
            return True
        return False

    @property
    def is_open(self) -> bool:
        return self.opened

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.opened else "closed"
        return (
            f"CircuitBreaker({state}, "
            f"{self.consecutive_failures}/{self.threshold})"
        )


@dataclass
class SupervisionReport:
    """What happened to one supervised task plan.

    ``results`` is ordered by task index — the caller's accumulation
    order is exactly the plan order, which is what keeps pooled
    estimators bitwise-deterministic.
    """

    results: List[object] = field(default_factory=list)
    attempts: List[int] = field(default_factory=list)
    reexecuted: List[int] = field(default_factory=list)
    retries: int = 0
    timeouts: int = 0
    pool_failures: int = 0
    degraded: bool = False
    degrade_reason: Optional[str] = None
    circuit_opened: bool = False
    mode: str = "serial"

    @property
    def num_tasks(self) -> int:
        return len(self.results)

    @property
    def salvaged(self) -> int:
        """Tasks whose single successful execution was kept as-is."""
        return self.num_tasks - len(self.reexecuted)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SupervisionReport({self.mode}, {self.num_tasks} tasks, "
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"degraded={self.degraded})"
        )


class _Unset:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return "<unset>"


_UNSET = _Unset()


class TaskSupervisor:
    """Run a fixed task plan under retry/deadline/circuit supervision.

    Parameters
    ----------
    policy:
        The :class:`SupervisorPolicy`; defaults are production-sane
        (2 retries, no deadline, breaker at 3, degradation allowed).
    sleep, clock:
        Injection points for tests (backoff sleeps, deadline clock).

    The one method is :meth:`run`.  Task functions must be pure in
    their arguments (safe to re-execute) and, for pool execution,
    picklable at module level.
    """

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        *,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.policy = policy if policy is not None else SupervisorPolicy()
        self._sleep = sleep
        self._clock = clock

    # ------------------------------------------------------------------
    # public entry point
    # ------------------------------------------------------------------

    def run(
        self,
        fn: Callable,
        tasks: Sequence[Tuple],
        *,
        pool_factory: Optional[Callable[[], object]] = None,
        label: str = "tasks",
    ) -> SupervisionReport:
        """Execute ``fn(*args)`` for every args-tuple in ``tasks``.

        Parameters
        ----------
        fn:
            The task callable (module-level for pool execution).
        tasks:
            The fixed plan: one argument tuple per task.  Results are
            returned in plan order regardless of completion order.
        pool_factory:
            Zero-argument callable building an Executor (typically a
            ``ProcessPoolExecutor``).  ``None`` runs the plan serially
            in-process (still supervised: per-task retry applies).
        label:
            Tag attached to every telemetry event of this run.

        Raises
        ------
        SupervisionError
            A task exhausted its retries, or degradation was needed
            but disallowed.  The partial report rides on the exception.
        """
        n = len(tasks)
        report = SupervisionReport(
            results=[_UNSET] * n, attempts=[0] * n, mode="serial"
        )
        if n == 0:
            return report
        breaker = CircuitBreaker(self.policy.circuit_threshold)
        self._set_circuit_state("closed")
        faulted = False

        if pool_factory is not None:
            report.mode = "pool"
            faulted = self._run_pool(
                fn, tasks, pool_factory, report, breaker, label
            )

        remaining = [
            i for i in range(n) if report.results[i] is _UNSET
        ]
        if remaining:
            retries_before = report.retries
            self._run_serial(fn, tasks, remaining, report, label)
            # serial-from-the-start runs only count as faulted when a
            # task actually had to be retried; after a pool phase any
            # leftover work is by definition fault recovery
            if pool_factory is not None or report.retries > retries_before:
                faulted = True

        if faulted:
            self._emit(
                "supervisor.salvaged_chunks",
                label,
                salvaged=report.salvaged,
                reexecuted=len(report.reexecuted),
                tasks=n,
            )
            tele = self._tele()
            if tele is not None:
                tele.inc("supervisor.salvaged", report.salvaged)
        return report

    # ------------------------------------------------------------------
    # pool phase
    # ------------------------------------------------------------------

    def _run_pool(
        self,
        fn: Callable,
        tasks: Sequence[Tuple],
        pool_factory: Callable[[], object],
        report: SupervisionReport,
        breaker: CircuitBreaker,
        label: str,
    ) -> bool:
        """Gather the plan over a pool; returns True if any fault
        occurred.  Unfinished tasks are left ``_UNSET`` for the serial
        phase (which the caller enters only after degradation)."""
        policy = self.policy
        pool = self._make_pool(pool_factory, report, breaker, label)
        if pool is None:
            return True  # degraded before the first submission

        faulted = False
        pending = deque(range(len(tasks)))
        delayed: List[Tuple[float, int]] = []  # (ready_at, index)
        inflight: Dict[object, Tuple[int, float]] = {}
        try:
            while pending or delayed or inflight:
                now = self._clock()
                # release retries whose backoff has elapsed
                if delayed:
                    ready = [i for t, i in delayed if t <= now]
                    delayed = [(t, i) for t, i in delayed if t > now]
                    pending.extend(sorted(ready))
                # submit everything runnable
                broke = False
                while pending:
                    i = pending.popleft()
                    try:
                        future = pool.submit(fn, *tasks[i])
                    except (BrokenExecutor, RuntimeError):
                        pending.appendleft(i)
                        broke = True
                        break
                    inflight[future] = (i, self._clock())
                if not broke and not inflight:
                    # nothing running and nothing ready: sleep until the
                    # earliest backed-off retry becomes due
                    if delayed:
                        wake = min(t for t, _ in delayed)
                        self._sleep(
                            min(
                                policy.poll_interval,
                                max(0.0, wake - self._clock()),
                            )
                        )
                    continue
                if not broke:
                    timeout = policy.poll_interval
                    done, _ = wait(
                        set(inflight),
                        timeout=timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    self._heartbeat(len(inflight), len(pending))
                    for future in done:
                        i, submitted = inflight.pop(future)
                        try:
                            result = future.result()
                        except BrokenExecutor:
                            broke = True
                            pending.append(i)
                            if i not in report.reexecuted:
                                report.reexecuted.append(i)
                        except Exception as exc:
                            faulted = True
                            self._task_failed(
                                i, exc, report, breaker, pending,
                                delayed, label,
                            )
                        else:
                            report.results[i] = result
                            report.attempts[i] += 1
                            breaker.record_success()
                    # watchdog: abandon tasks past their deadline
                    if policy.task_timeout is not None:
                        faulted |= self._enforce_deadlines(
                            inflight, report, breaker, label
                        )
                if broke:
                    faulted = True
                    self._pool_broke(inflight, pending, report, breaker,
                                     label)
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = None
                    if breaker.is_open or not self.policy.allow_degrade:
                        self._degrade(report, "circuit-open"
                                      if breaker.is_open
                                      else "pool-broken", label)
                        return True
                    pool = self._make_pool(
                        pool_factory, report, breaker, label
                    )
                    if pool is None:
                        return True
                    continue
                if breaker.is_open and not report.degraded:
                    # keep draining what is already running (successes
                    # are salvage), but stop feeding the pool
                    self._degrade(report, "circuit-open", label)
                    pending.clear()
                    delayed.clear()
                if report.degraded and not inflight:
                    return True
        finally:
            if pool is not None:
                # hung workers must never block the gather: leave them
                # behind rather than joining
                pool.shutdown(wait=False, cancel_futures=True)
        return faulted

    # ------------------------------------------------------------------
    # pool-phase helpers
    # ------------------------------------------------------------------

    def _make_pool(self, pool_factory, report, breaker, label):
        """Build the pool, degrading on failure; None means serial."""
        try:
            return pool_factory()
        except Exception as exc:
            report.pool_failures += 1
            breaker.record_failure()
            self._degrade(report, f"pool-unavailable: {exc!r}", label)
            return None

    def _task_failed(
        self, i, exc, report, breaker, pending, delayed, label
    ) -> None:
        """One task raised in a worker: retry or give up."""
        report.attempts[i] += 1
        report.retries += 1
        if i not in report.reexecuted:
            report.reexecuted.append(i)
        if breaker.record_failure():
            self._circuit_opened(report, breaker, label)
        if report.attempts[i] > self.policy.max_task_retries:
            raise SupervisionError(
                f"task {i} failed {report.attempts[i]} times "
                f"(last: {type(exc).__name__}: {exc}); retry budget "
                f"of {self.policy.max_task_retries} exhausted",
                report=report,
            ) from exc
        delay = self._retry_delay(report.attempts[i])
        self._emit(
            "supervisor.retry", label,
            task=i,
            attempt=report.attempts[i],
            error=type(exc).__name__,
            delay=delay,
        )
        tele = self._tele()
        if tele is not None:
            tele.inc("supervisor.retries")
        if breaker.is_open:
            return  # the degrade path will pick the task up serially
        delayed.append((self._clock() + delay, i))

    def _enforce_deadlines(self, inflight, report, breaker, label) -> bool:
        """Abandon in-flight tasks past their deadline; their retries
        run serially (the hung worker still owns its pool slot)."""
        now = self._clock()
        expired = [
            (future, i, submitted)
            for future, (i, submitted) in inflight.items()
            if now - submitted > self.policy.task_timeout
        ]
        for future, i, submitted in expired:
            future.cancel()
            del inflight[future]
            report.timeouts += 1
            report.attempts[i] += 1
            if i not in report.reexecuted:
                report.reexecuted.append(i)
            self._emit(
                "supervisor.task_timeout", label,
                task=i,
                deadline=self.policy.task_timeout,
                waited=round(now - submitted, 4),
            )
            tele = self._tele()
            if tele is not None:
                tele.inc("supervisor.timeouts")
            if breaker.record_failure():
                self._circuit_opened(report, breaker, label)
            if report.attempts[i] > self.policy.max_task_retries:
                raise SupervisionError(
                    f"task {i} timed out after "
                    f"{self.policy.task_timeout:g}s and exhausted its "
                    f"retry budget of {self.policy.max_task_retries}",
                    report=report,
                )
            if not self.policy.allow_degrade:
                raise SupervisionError(
                    f"task {i} timed out after "
                    f"{self.policy.task_timeout:g}s; re-execution "
                    "requires in-process degradation, which "
                    "--no-degrade forbids",
                    report=report,
                )
            # leave the task _UNSET: the serial phase re-executes it
        return bool(expired)

    def _pool_broke(self, inflight, pending, report, breaker,
                    label) -> None:
        """The pool died (worker killed).  Salvage nothing from
        in-flight futures — requeue them without charging attempts (the
        fault was the pool's, not theirs)."""
        report.pool_failures += 1
        tele = self._tele()
        if tele is not None:
            tele.inc("supervisor.pool_failures")
        for future, (i, _) in inflight.items():
            pending.append(i)
            if i not in report.reexecuted:
                report.reexecuted.append(i)
        inflight.clear()
        if breaker.record_failure():
            self._circuit_opened(report, breaker, label)

    # ------------------------------------------------------------------
    # serial phase
    # ------------------------------------------------------------------

    def _run_serial(self, fn, tasks, indices, report, label) -> None:
        """Re-execute (or first-execute) tasks in-process, in plan
        order, with per-task retry."""
        for i in sorted(indices):
            if report.attempts[i] > 0 and i not in report.reexecuted:
                report.reexecuted.append(i)
            while True:
                report.attempts[i] += 1
                try:
                    report.results[i] = fn(*tasks[i])
                    break
                except Exception as exc:
                    report.retries += 1
                    if report.attempts[i] > self.policy.max_task_retries:
                        raise SupervisionError(
                            f"task {i} failed {report.attempts[i]} "
                            f"times (last: {type(exc).__name__}: "
                            f"{exc}); retry budget of "
                            f"{self.policy.max_task_retries} exhausted",
                            report=report,
                        ) from exc
                    if i not in report.reexecuted:
                        report.reexecuted.append(i)
                    delay = self._retry_delay(report.attempts[i])
                    self._emit(
                        "supervisor.retry", label,
                        task=i,
                        attempt=report.attempts[i],
                        error=type(exc).__name__,
                        delay=delay,
                    )
                    tele = self._tele()
                    if tele is not None:
                        tele.inc("supervisor.retries")
                    self._sleep(delay)

    # ------------------------------------------------------------------
    # shared plumbing
    # ------------------------------------------------------------------

    def _circuit_opened(self, report: SupervisionReport,
                        breaker: CircuitBreaker, label: str) -> None:
        """The breaker just tripped: record, emit, and flip the gauge."""
        report.circuit_opened = True
        self._set_circuit_state("open")
        self._emit(
            "supervisor.circuit_open", label,
            consecutive_failures=breaker.consecutive_failures,
        )

    def _set_circuit_state(self, state: str) -> None:
        """Expose the breaker state as a pollable gauge (see
        :data:`CIRCUIT_STATES`), not just transition events."""
        tele = self._tele()
        if tele is not None:
            tele.set_gauge(
                "supervisor.circuit_state", CIRCUIT_STATES[state]
            )

    def _retry_delay(self, attempt: int) -> float:
        """The backoff before re-running a task on its Nth retry."""
        schedule = self.policy.backoff.delays()
        if not schedule:
            return 0.0
        return schedule[min(attempt - 1, len(schedule) - 1)]

    def _degrade(self, report: SupervisionReport, reason: str,
                 label: str) -> None:
        if not self.policy.allow_degrade:
            raise SupervisionError(
                f"supervised execution would degrade to in-process "
                f"serial ({reason}), but degradation is disallowed",
                report=report,
            )
        if report.degraded:
            return
        report.degraded = True
        report.degrade_reason = reason
        report.mode = "degraded"
        self._set_circuit_state("degraded")
        self._emit("supervisor.degraded", label, reason=reason)
        tele = self._tele()
        if tele is not None:
            tele.inc("supervisor.degradations")
        warnings.warn(
            f"supervised {label}: degrading from the process pool to "
            f"sequentially executing the remaining plan in-process "
            f"({reason}); results are unaffected, only wall time.",
            RuntimeWarning,
            stacklevel=4,
        )

    def _heartbeat(self, inflight: int, pending: int) -> None:
        tele = self._tele()
        if tele is not None:
            tele.set_gauge("supervisor.inflight", inflight)
            tele.set_gauge("supervisor.pending", pending)

    def _tele(self):
        from ..obs import get_telemetry

        tele = get_telemetry()
        return tele if tele.enabled else None

    def _emit(self, name: str, label: str, **attrs) -> None:
        tele = self._tele()
        if tele is not None:
            tele.event(name, label=label, **attrs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TaskSupervisor({self.policy!r})"
