"""Always-on scoring service: epochs, WAL, admission, guarded ingest.

The batch pipeline (``build-world`` → ``estimate`` → ``detect``)
answers "what does the graph look like today"; this package answers it
*continuously*.  A :class:`~repro.serve.daemon.ScoringDaemon` loads a
solution snapshot, serves per-host spam-mass queries from immutable
copy-on-write epochs (:mod:`~repro.serve.epoch`), accepts graph deltas
through a crash-safe write-ahead log (:mod:`~repro.serve.wal`), folds
them in with guarded warm re-estimates (:mod:`~repro.serve.ingest`),
and degrades explicitly under overload or ingest failure
(:mod:`~repro.serve.admission`).  The socket front-end and client live
in :mod:`~repro.serve.server`.  See ``docs/serving.md``.
"""

from .admission import (
    MODES,
    AdmissionController,
    AdmissionRejected,
    AdmissionTicket,
)
from .daemon import DaemonConfig, ScoringDaemon
from .epoch import Epoch, EpochStore
from .ingest import IngestPolicy, IngestTimeout, guarded_call
from .server import ScoringServer, ServeClient
from .wal import DeltaWAL, WalRecord, plan_replay

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "MODES",
    "DaemonConfig",
    "ScoringDaemon",
    "Epoch",
    "EpochStore",
    "IngestPolicy",
    "IngestTimeout",
    "guarded_call",
    "ScoringServer",
    "ServeClient",
    "DeltaWAL",
    "WalRecord",
    "plan_replay",
]
