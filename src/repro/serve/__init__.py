"""Always-on scoring service: epochs, WAL, admission, guarded ingest.

The batch pipeline (``build-world`` → ``estimate`` → ``detect``)
answers "what does the graph look like today"; this package answers it
*continuously*.  A :class:`~repro.serve.daemon.ScoringDaemon` loads a
solution snapshot, serves per-host spam-mass queries from immutable
copy-on-write epochs (:mod:`~repro.serve.epoch`), accepts graph deltas
through a crash-safe write-ahead log (:mod:`~repro.serve.wal`), folds
them in with guarded warm re-estimates (:mod:`~repro.serve.ingest`),
and degrades explicitly under overload or ingest failure
(:mod:`~repro.serve.admission`).  The socket front-end and client live
in :mod:`~repro.serve.server`.  Replicated serving — a WAL-owning
writer shipping snapshots to read replicas behind a shard-aware router
— lives in :mod:`~repro.serve.replication` and
:mod:`~repro.serve.router`.  See ``docs/serving.md``.
"""

from .admission import (
    MODES,
    SLOW_OPS,
    AdmissionController,
    AdmissionRejected,
    AdmissionTicket,
)
from .daemon import DaemonConfig, ScoringDaemon
from .epoch import Epoch, EpochStore, score_from_epoch, top_from_epoch
from .ingest import IngestPolicy, IngestTimeout, guarded_call
from .replication import (
    ReadReplica,
    ReplicaSet,
    ReplicatedWriter,
    ShippedSnapshot,
    SnapshotManifest,
    list_manifests,
    load_snapshot,
    read_current,
    ship_snapshot,
)
from .router import ReplicaRouter
from .server import ScoringServer, ServeClient
from .stream import DeadLetterQueue, StreamConfig, StreamIngestor
from .wal import DeltaWAL, WalRecord, plan_replay

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "AdmissionTicket",
    "MODES",
    "SLOW_OPS",
    "DaemonConfig",
    "ScoringDaemon",
    "Epoch",
    "EpochStore",
    "score_from_epoch",
    "top_from_epoch",
    "IngestPolicy",
    "IngestTimeout",
    "guarded_call",
    "ReadReplica",
    "ReplicaSet",
    "ReplicatedWriter",
    "ReplicaRouter",
    "ShippedSnapshot",
    "SnapshotManifest",
    "list_manifests",
    "load_snapshot",
    "read_current",
    "ship_snapshot",
    "ScoringServer",
    "ServeClient",
    "DeadLetterQueue",
    "StreamConfig",
    "StreamIngestor",
    "DeltaWAL",
    "WalRecord",
    "plan_replay",
]
