"""Admission control: bounded queueing, deadlines, graceful shedding.

A scoring daemon that accepts every request dies the moment traffic
exceeds capacity — queues grow without bound, every response is late,
and the ingest worker starves.  Admission control makes overload a
*decision* instead of an accident, degrading in three explicit steps:

``full``
    Everything is served: fresh reads, and ingest is accepting deltas.
``degraded``
    The ingest circuit breaker is open (consecutive re-estimate
    failures), staleness exceeded its bound, or a read replica lags
    past its bound: reads are still served from the current epoch —
    every response carries an explicit ``staleness`` count so clients
    know what they got — but mutating requests (``ingest``) and slow
    analysis (:data:`SLOW_OPS`, i.e. ``explain``) are refused until
    the path heals.
``reject``
    The 503-equivalent: the bounded request queue is full (per-request
    shedding) or the daemon is draining for shutdown.  The connection
    gets an immediate structured refusal, never a silent hang.

Per-request deadlines are enforced at *dequeue*: a request that waited
past its deadline in the queue is answered with a ``deadline``
rejection rather than processed late — under overload, work that no
client is still waiting for is the first thing to drop.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from ..obs import get_telemetry

__all__ = ["AdmissionController", "AdmissionTicket", "MODES", "SLOW_OPS"]

#: Numeric encoding of the ``serve.mode`` gauge (mirrors the
#: ``supervisor.circuit_state`` convention): 0 full service, 1 stale
#: reads only, 2 rejecting.
MODES = {"full": 0, "degraded": 1, "reject": 2}

#: Request kinds that mutate serving state; refused in degraded mode.
MUTATING_OPS = frozenset({"ingest"})

#: Request kinds whose cost is orders of magnitude above a score read
#: (``explain`` walks contribution paths over the whole graph).  They
#: get their own bounded lane — an explain storm can never fill the
#: fast queue — and are shed outright in degraded mode, where every
#: cycle belongs to cheap reads and to healing the ingest path.
SLOW_OPS = frozenset({"explain"})


class AdmissionTicket:
    """One admitted request: its queue slot and deadline."""

    __slots__ = ("op", "enqueued_at", "deadline", "released", "slow")

    def __init__(
        self, op: str, enqueued_at: float, deadline: Optional[float],
        *, slow: bool = False,
    ) -> None:
        self.op = op
        self.enqueued_at = enqueued_at
        #: absolute monotonic time after which the request is dropped
        self.deadline = deadline
        self.released = False
        #: admitted into the slow lane (its own depth bound + workers)
        self.slow = slow


class AdmissionController:
    """Tracks queue depth and service mode; admits or sheds requests.

    Parameters
    ----------
    max_queue:
        Bound on requests admitted but not yet finished.  The
        ``max_queue + 1``-th concurrent request is shed with an
        ``overloaded`` rejection.
    request_timeout:
        Per-request deadline in seconds from admission (``None``
        disables deadline drops).
    max_slow:
        Separate bound on concurrently admitted :data:`SLOW_OPS`
        requests (default ``max(1, max_queue // 4)``) — a storm of
        ``explain`` calls saturates its own lane, never the fast one.
    clock:
        Injection point for deterministic tests.
    """

    def __init__(
        self,
        max_queue: int = 64,
        *,
        request_timeout: Optional[float] = None,
        max_slow: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if max_slow is None:
            max_slow = max(1, max_queue // 4)
        if max_slow < 1:
            raise ValueError("max_slow must be >= 1")
        self.max_queue = max_queue
        self.max_slow = max_slow
        self.request_timeout = request_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._depth = 0
        self._slow_depth = 0
        self._draining = False
        self._ingest_healthy = True
        self.admitted = 0
        self.shed = 0
        self.slow_shed = 0
        self.deadline_drops = 0

    # ------------------------------------------------------------------
    # mode
    # ------------------------------------------------------------------

    @property
    def mode(self) -> str:
        """The current service mode (``full``/``degraded``/``reject``)."""
        if self._draining:
            return "reject"
        if not self._ingest_healthy:
            return "degraded"
        return "full"

    def set_ingest_healthy(self, healthy: bool) -> None:
        """Driven by the ingest circuit breaker / staleness bound."""
        with self._lock:
            changed = self._ingest_healthy != healthy
            self._ingest_healthy = healthy
        if changed:
            tele = get_telemetry()
            if tele.enabled:
                tele.event("serve.mode_change", mode=self.mode)
        self._gauge_mode()

    def start_drain(self) -> None:
        """Enter shutdown: refuse new requests, let admitted ones finish."""
        with self._lock:
            self._draining = True
        self._gauge_mode()

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def depth(self) -> int:
        """Requests admitted and not yet released."""
        return self._depth

    @property
    def slow_depth(self) -> int:
        """Slow-lane requests admitted and not yet released."""
        return self._slow_depth

    # ------------------------------------------------------------------
    # per-request flow
    # ------------------------------------------------------------------

    def admit(self, op: str) -> "AdmissionTicket":
        """Admit one request or raise :class:`AdmissionRejected`.

        Rejection reasons: ``shutting-down`` (drain started),
        ``overloaded`` (queue full), ``degraded`` (a mutating op while
        ingest is unhealthy), ``slow-op`` (a :data:`SLOW_OPS` request
        while degraded — expensive analysis is the first load shed).
        """
        slow = op in SLOW_OPS
        with self._lock:
            if self._draining:
                self._count_shed("shutting-down")
                raise AdmissionRejected("shutting-down", "reject")
            if op in MUTATING_OPS and not self._ingest_healthy:
                self._count_shed("degraded")
                raise AdmissionRejected("degraded", "degraded")
            if slow and not self._ingest_healthy:
                self.slow_shed += 1
                self._count_shed("slow-op")
                raise AdmissionRejected("slow-op", "degraded")
            if slow and self._slow_depth >= self.max_slow:
                self.slow_shed += 1
                self._count_shed("overloaded")
                raise AdmissionRejected("overloaded", self.mode)
            if self._depth >= self.max_queue:
                self._count_shed("overloaded")
                raise AdmissionRejected("overloaded", self.mode)
            self._depth += 1
            if slow:
                self._slow_depth += 1
            self.admitted += 1
            now = self._clock()
            deadline = (
                None
                if self.request_timeout is None
                else now + self.request_timeout
            )
            ticket = AdmissionTicket(op, now, deadline, slow=slow)
        self._gauge_depth()
        return ticket

    def check_deadline(self, ticket: AdmissionTicket) -> None:
        """At dequeue: drop the request if its deadline already passed."""
        if ticket.deadline is not None and self._clock() > ticket.deadline:
            with self._lock:
                self.deadline_drops += 1
            tele = get_telemetry()
            if tele.enabled:
                tele.inc("serve.deadline_drops")
            self.release(ticket)
            raise AdmissionRejected("deadline", self.mode)

    def release(self, ticket: AdmissionTicket) -> None:
        """Free the queue slot (idempotent)."""
        with self._lock:
            if ticket.released:
                return
            ticket.released = True
            self._depth -= 1
            if ticket.slow:
                self._slow_depth -= 1
        self._gauge_depth()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _count_shed(self, reason: str) -> None:
        # caller holds the lock
        self.shed += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("serve.shed")
            tele.event("serve.shed", reason=reason, depth=self._depth)

    def _gauge_depth(self) -> None:
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("serve.queue_depth", self._depth)

    def _gauge_mode(self) -> None:
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("serve.mode", MODES[self.mode])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdmissionController({self.mode}, depth={self._depth}/"
            f"{self.max_queue}, shed={self.shed})"
        )


class AdmissionRejected(Exception):
    """A request was refused at admission (shed/deadline/degraded).

    Not a :class:`~repro.errors.ReproError`: this is request-scoped
    control flow inside the server, mapped to a structured error
    response, never an operator-facing failure.
    """

    def __init__(self, reason: str, mode: str) -> None:
        super().__init__(reason)
        self.reason = reason
        self.mode = mode


__all__.append("AdmissionRejected")
