"""The always-on scoring daemon: queries over epochs, ingest over WAL.

This is the long-lived process the paper's deployment story implies
(Section 5: a search engine re-ranking a churning host graph
continuously) and the ROADMAP names directly.  One
:class:`ScoringDaemon` owns:

* an :class:`~repro.serve.epoch.EpochStore` — queries (``score``,
  ``top``, ``explain``) answer entirely from the current immutable
  epoch, lock-free;
* a :class:`~repro.serve.wal.DeltaWAL` — an accepted delta is fsynced
  to the log *before* it is acknowledged, so a crash never loses an
  acked batch;
* a background ingest worker — pops accepted deltas in order, runs a
  guarded warm re-estimate (deadline, retries, degradation to a cold
  solve; :mod:`repro.serve.ingest`), verifies the result against the
  delta chain's derived fingerprint, and hot-swaps the next epoch;
* a :class:`~repro.runtime.supervisor.CircuitBreaker` on the ingest
  path — consecutive apply failures (or a staleness bound overrun)
  flip the service to *degraded*: reads keep flowing from the current
  epoch with an explicit ``staleness`` field, ingest is refused, and
  the worker keeps retrying until the path heals.

Restart is replay: the WAL is recovered (torn tail truncated), the
chain is deduped against the loaded solution snapshot's fingerprint
(apply-then-crash never double-applies), and the pending suffix is
re-applied — deterministically, so the scores after replay are
bitwise-identical to the ones a crash interrupted.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core import estimate_spam_mass
from ..core.mass import MassEstimates
from ..errors import DeltaError, SnapshotMismatchError, WalError
from ..graph import GraphDelta, read_graph_bundle, read_host_list
from ..graph.delta import DeltaApplication, compose_applications
from ..obs import get_telemetry
from ..runtime.checkpoint import load_solution, save_solution
from ..runtime.supervisor import CircuitBreaker
from .ingest import IngestPolicy, guarded_call
from .epoch import Epoch, EpochStore, score_from_epoch, top_from_epoch
from .wal import DeltaWAL, WalRecord, plan_replay

__all__ = ["DaemonConfig", "ScoringDaemon"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class DaemonConfig:
    """Operational knobs of one daemon instance.

    ``rho``/``tau`` are the Algorithm 2 thresholds used by ``top``
    queries; the ingest fields mirror the supervision flags of the
    batch CLI (``--task-timeout`` → ``ingest_deadline``,
    ``--no-degrade`` → ``allow_degrade=False``).

    ``batch_deltas`` bounds how many queued deltas one apply may
    coalesce: the worker drains up to that many from the queue head,
    composes them into a single splice (net edge set — opposing
    insert/delete pairs cancel), and runs ONE warm re-estimate for the
    whole batch.  The default of 1 preserves the one-record-per-epoch
    behaviour; the WAL chain is unchanged either way (every record is
    still fsynced and acked individually), only epoch cadence changes.
    """

    gamma: Optional[float] = 0.85
    rho: float = 10.0
    tau: float = 0.98
    max_staleness: int = 8
    ingest_retries: int = 1
    ingest_deadline: Optional[float] = None
    allow_degrade: bool = True
    circuit_threshold: int = 3
    retry_interval: float = 0.05
    prune_every: int = 32
    batch_deltas: int = 1

    def __post_init__(self) -> None:
        if self.max_staleness < 1:
            raise ValueError("max_staleness must be >= 1")
        if self.batch_deltas < 1:
            raise ValueError("batch_deltas must be >= 1")
        if self.circuit_threshold < 1:
            raise ValueError("circuit_threshold must be >= 1")
        if self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")

    def ingest_policy(self) -> IngestPolicy:
        return IngestPolicy(
            max_retries=self.ingest_retries,
            deadline=self.ingest_deadline,
            allow_degrade=self.allow_degrade,
        )


class _Pending:
    """One accepted-but-unapplied delta: WAL record + CSR application."""

    __slots__ = ("record", "application")

    def __init__(
        self, record: WalRecord, application: DeltaApplication
    ) -> None:
        self.record = record
        self.application = application


class ScoringDaemon:
    """Loads a solution snapshot and serves/ingests until closed.

    Build one with :meth:`load` (the CLI path) or directly from
    in-memory objects (tests).  Queries are thread-safe and lock-free;
    :meth:`submit_delta` and the ingest worker serialize on one lock.
    """

    def __init__(
        self,
        graph,
        core: np.ndarray,
        estimates: MassEstimates,
        *,
        checkpoint_dir: Optional[PathLike] = None,
        wal: Optional[DeltaWAL] = None,
        config: Optional[DaemonConfig] = None,
        engine=None,
        chaos=None,
        clock: Callable[[], float] = time.monotonic,
        initial_wal_seq: int = 0,
        on_apply: Optional[
            Callable[[Epoch, Sequence[WalRecord]], None]
        ] = None,
    ) -> None:
        self.config = config if config is not None else DaemonConfig()
        self.core = np.asarray(core, dtype=np.int64)
        self.checkpoint_dir = (
            None if checkpoint_dir is None else Path(checkpoint_dir)
        )
        self.wal = wal
        self.chaos = chaos
        self._clock = clock
        if engine is None:
            from ..perf import PagerankEngine

            engine = PagerankEngine()
        self.engine = engine
        self.store = EpochStore(
            Epoch(0, graph, estimates, wal_seq=initial_wal_seq, clock=clock)
        )
        #: called after every successful apply (scores durable, the
        #: watermark advanced) with the new epoch and the WAL records
        #: it covers — one record normally, several when the apply
        #: coalesced a batch (``batch_deltas > 1``) — the replication
        #: writer ships snapshots from here.  Failures are contained:
        #: a broken hook never fails the apply itself.
        self.on_apply = on_apply
        #: tip of the *accepted* chain (last pending graph, or the
        #: current epoch's); submit validates and fingerprints against it
        self._tail = graph
        self._pending: "deque[_Pending]" = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._breaker = CircuitBreaker(self.config.circuit_threshold)
        self._degraded_reason: Optional[str] = None
        self._stop = False
        self._worker: Optional[threading.Thread] = None
        self._applied_since_prune = 0
        self.applies = 0
        self.apply_failures = 0
        self.degraded_applies = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def load(
        cls,
        world_dir: PathLike,
        checkpoint_dir: PathLike,
        *,
        core_path: Optional[PathLike] = None,
        wal_dir: Optional[PathLike] = None,
        config: Optional[DaemonConfig] = None,
        engine=None,
        chaos=None,
    ) -> "ScoringDaemon":
        """Load the bundle + snapshot + WAL; enqueue the replay suffix.

        The solution snapshot need not match the *bundle's* fingerprint
        — a daemon that applied deltas and crashed left a snapshot at
        some point *inside* the WAL chain.  The chain is the arbiter:
        the snapshot's stored fingerprint must be the bundle graph or
        reachable from it through the log's applied prefix
        (:class:`~repro.errors.SnapshotMismatchError` otherwise — the
        operator pointed the daemon at the wrong world).  The bundle
        graph is fast-forwarded through that prefix structurally (no
        re-estimation — the snapshot already has the scores), and the
        unapplied suffix is enqueued for the worker (or
        :meth:`apply_pending`).
        """
        config = config if config is not None else DaemonConfig()
        graph, _, _ = read_graph_bundle(world_dir)
        if core_path is None:
            core_path = Path(world_dir) / "core.hosts"
        names = read_host_list(core_path)
        lookup = {graph.name_of(i): i for i in range(graph.num_nodes)}
        missing = [name for name in names if name not in lookup]
        if missing:
            raise DeltaError(
                f"{len(missing)} core hosts are not in the graph "
                f"(first: {missing[0]!r})"
            )
        core = np.asarray([lookup[n] for n in names], dtype=np.int64)
        snapshot = load_solution(checkpoint_dir)
        base_fp = graph.structural_fingerprint()
        stored_fp = str(snapshot.meta.get("fingerprint", "")) or base_fp
        wal = DeltaWAL(
            wal_dir if wal_dir is not None else Path(checkpoint_dir) / "wal"
        )
        records, dropped = wal.recover()
        todo = plan_replay(records, stored_fp)
        prefix = records[: len(records) - len(todo)]
        if stored_fp != base_fp:
            if not prefix or prefix[0].parent != base_fp:
                raise SnapshotMismatchError(
                    f"solution snapshot {snapshot.path} (fingerprint "
                    f"{stored_fp!r}) belongs to neither the world bundle "
                    f"(fingerprint {base_fp!r}) nor any delta chain the "
                    "wal can replay from it; the daemon is pointed at "
                    "the wrong world or the wal was pruned past its "
                    "base",
                    expected=base_fp,
                    actual=stored_fp,
                )
            # reconstruct the snapshot-point graph structurally
            for record in prefix:
                graph = record.delta().apply(graph).after
            if graph.structural_fingerprint() != stored_fp:
                raise WalError(
                    "wal prefix replays the bundle to fingerprint "
                    f"{graph.structural_fingerprint()!r}, but the "
                    f"snapshot claims {stored_fp!r}"
                )
        gamma = snapshot.meta.get("gamma", config.gamma)
        damping = float(snapshot.meta.get("damping", 0.85))
        estimates = MassEstimates(
            snapshot.scores[:, 0].copy(),
            snapshot.scores[:, 1].copy(),
            damping,
            gamma,
        )
        daemon = cls(
            graph,
            core,
            estimates,
            checkpoint_dir=checkpoint_dir,
            wal=wal,
            config=config,
            engine=engine,
            chaos=chaos,
            # the restored epoch sits at the end of the applied prefix;
            # stamping its true WAL position keeps snapshot shipping
            # keys monotonic across restarts
            initial_wal_seq=(prefix[-1].seq if prefix else 0),
        )
        daemon._enqueue_replay(records, todo, dropped)
        return daemon

    def _enqueue_replay(self, records, todo, dropped: int) -> None:
        """Enqueue the unapplied suffix; catch the watermark up."""
        applied_prefix = len(records) - len(todo)
        if applied_prefix:
            # the snapshot already contains these (crash before the
            # watermark advanced); make the watermark catch up
            last_applied = records[applied_prefix - 1].seq
            if self.wal.applied_seq() < last_applied:
                self.wal.mark_applied(last_applied)
        tail = self.store.current.graph
        for record in todo:
            application = record.delta().apply(tail)
            if application.after.structural_fingerprint() != record.after:
                raise WalError(
                    f"wal record seq {record.seq} replays to fingerprint "
                    f"{application.after.structural_fingerprint()!r}, "
                    f"expected {record.after!r}"
                )
            self._pending.append(_Pending(record, application))
            tail = application.after
        self._tail = tail
        tele = get_telemetry()
        if tele.enabled:
            tele.event(
                "serve.wal_replay",
                records=len(records),
                pending=len(todo),
                dropped_bytes=dropped,
            )
        self._gauge_staleness()

    # ------------------------------------------------------------------
    # read path (lock-free: everything comes from one epoch object)
    # ------------------------------------------------------------------

    @property
    def staleness(self) -> int:
        """Accepted-but-unapplied delta batches (0 = fully fresh)."""
        return len(self._pending)

    @property
    def degraded(self) -> bool:
        """True when the ingest path is unhealthy (stale-reads-only)."""
        return (
            self._breaker.is_open
            or len(self._pending) > self.config.max_staleness
        )

    def _meta(self, epoch: Epoch) -> dict:
        return {
            "epoch": epoch.seq,
            "fingerprint": epoch.fingerprint,
            "staleness": self.staleness,
            "mode": "degraded" if self.degraded else "full",
        }

    def query_score(self, host: str) -> dict:
        """Per-host spam-mass scores from the current epoch."""
        epoch = self.store.current
        return {**score_from_epoch(epoch, host), **self._meta(epoch)}

    def query_top(
        self,
        k: int = 10,
        *,
        tau: Optional[float] = None,
        rho: Optional[float] = None,
    ) -> dict:
        """Top-k spam candidates by relative mass (Algorithm 2 gates)."""
        epoch = self.store.current
        tau = self.config.tau if tau is None else tau
        rho = self.config.rho if rho is None else rho
        return {
            **top_from_epoch(epoch, k, tau=tau, rho=rho),
            **self._meta(epoch),
        }

    def query_explain(self, host: str, *, top: int = 10) -> dict:
        """Contribution breakdown for one host (review-sheet text).

        A **slow op** (:data:`~repro.serve.admission.SLOW_OPS`):
        ``explain_mass`` walks contribution paths over the whole graph,
        orders of magnitude above a score read.  The server runs it on
        the dedicated slow lane, admission sheds it first in degraded
        mode, and the replica router pins it to the explain replica so
        it never competes with the hot scoring path.
        """
        from ..core.explain import explain_mass

        epoch = self.store.current
        node = epoch.lookup.get(host)
        if node is None:
            raise KeyError(host)
        explanation = explain_mass(
            epoch.graph,
            int(node),
            self.core,
            damping=epoch.estimates.damping,
            top=top,
        )
        return {
            "host": host,
            "text": explanation.render(epoch.graph),
            **self._meta(epoch),
        }

    def health(self) -> dict:
        """Readiness/liveness probe; auto-rolls-back a poisoned epoch."""
        epoch = self.store.current
        est = epoch.estimates
        poisoned = not (
            np.all(np.isfinite(est.pagerank))
            and np.all(np.isfinite(est.core_pagerank))
        )
        if poisoned:
            restored = self.store.rollback()
            tele = get_telemetry()
            if tele.enabled:
                tele.event(
                    "serve.poisoned_epoch",
                    epoch=epoch.seq,
                    rolled_back_to=(
                        restored.seq if restored is not None else None
                    ),
                )
            epoch = self.store.current
        return {
            "ready": True,
            "poisoned_epoch_rolled_back": poisoned,
            "circuit": "open" if self._breaker.is_open else "closed",
            "degraded_reason": self._degraded_reason,
            "applies": self.applies,
            "apply_failures": self.apply_failures,
            "swaps": self.store.swaps,
            "rollbacks": self.store.rollbacks,
            **self._meta(self.store.current),
        }

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def submit_delta(
        self,
        insertions: Optional[List[Tuple[int, int]]] = None,
        deletions: Optional[List[Tuple[int, int]]] = None,
    ) -> dict:
        """Accept one delta batch: validate, fsync to WAL, enqueue.

        The delta is validated (and its successor fingerprint derived)
        against the *tip* of the accepted chain — pending batches
        compose, and a duplicate submission fails validation the same
        way any conflicting delta does.  Acknowledged means durable:
        the WAL append fsyncs before this returns.
        """
        delta = GraphDelta(insertions or (), deletions or ())
        with self._lock:
            if self.degraded:
                raise WalError(
                    "ingest refused: serving is degraded "
                    f"({self._degraded_reason or 'circuit open'})"
                )
            parent = self._tail.structural_fingerprint()
            application = delta.apply(self._tail)
            after = application.after.structural_fingerprint()
            if self.wal is None:
                seq = (
                    self._pending[-1].record.seq + 1
                    if self._pending
                    else self.store.current.wal_seq + 1
                )
                record = WalRecord(
                    seq,
                    parent,
                    after,
                    [(int(u), int(v)) for u, v in delta.insertions],
                    [(int(u), int(v)) for u, v in delta.deletions],
                )
            else:
                record = self.wal.append(delta, parent=parent, after=after)
            self._pending.append(_Pending(record, application))
            self._tail = application.after
            self._cond.notify_all()
        self._gauge_staleness()
        return {
            "accepted": True,
            "seq": record.seq,
            "staleness": self.staleness,
            "insertions": delta.num_insertions,
            "deletions": delta.num_deletions,
        }

    def quarantine_pending(self) -> List[WalRecord]:
        """Drop every pending batch after an unrecoverable apply failure.

        The streaming ingestor calls this when a window's compacted
        delta is *poison*: durable in the WAL (submit validated it
        structurally) but unapplicable — both the warm and the cold
        estimate fail on it.  Retrying forever would wedge the queue,
        so the poison suffix is abandoned wholesale: the pending queue
        is cleared, the accepted tip is reset to the current epoch's
        graph, the breaker is healed, and the WAL watermark is advanced
        past the dropped records (then pruned) so a restart does not
        replay them.  The caller owns routing the dropped records to a
        dead-letter queue; the daemon just keeps serving its current
        epoch.

        Returns the dropped records, oldest first (empty when nothing
        was pending).
        """
        with self._lock:
            dropped = [p.record for p in self._pending]
            self._pending.clear()
            self._tail = self.store.current.graph
            self._breaker = CircuitBreaker(self.config.circuit_threshold)
            self._degraded_reason = None
        if self.wal is not None and dropped:
            # forget the poison suffix durably: the watermark jumps past
            # it and prune removes the records, so the next append's
            # parent (the current epoch's fingerprint) restarts a clean
            # chain that replay can anchor
            self.wal.mark_applied(dropped[-1].seq)
            self.wal.prune()
        tele = get_telemetry()
        if tele.enabled and dropped:
            tele.inc("serve.quarantines")
            tele.event(
                "serve.quarantined",
                records=len(dropped),
                first_seq=dropped[0].seq,
                last_seq=dropped[-1].seq,
            )
        self._gauge_staleness()
        self._gauge_circuit()
        return dropped

    # ------------------------------------------------------------------
    # ingest worker
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the background ingest worker (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        self._stop = False
        self._worker = threading.Thread(
            target=self._worker_loop, name="serve-ingest", daemon=True
        )
        self._worker.start()

    def close(self, *, timeout: float = 10.0) -> None:
        """Stop the worker after its current apply; WAL keeps pending.

        Pending batches are durable in the log, so shutdown never
        waits for the whole backlog — restart replays it.
        """
        with self._lock:
            self._stop = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join(timeout)

    def apply_pending(self) -> int:
        """Synchronously apply every pending batch; returns how many.

        The deterministic path tests and replay-heavy callers use; the
        background worker must not be running concurrently.
        """
        applied = 0
        while self._pending:
            if not self._apply_one():
                break
            applied += 1
        return applied

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stop and not self._pending:
                    self._cond.wait(timeout=self.config.retry_interval)
                if self._stop:
                    return
            ok = self._apply_one()
            if not ok:
                # failed apply: the record stays at the queue head; wait
                # out the retry interval (interruptible by close())
                with self._cond:
                    self._cond.wait(timeout=self.config.retry_interval)

    def _apply_one(self) -> bool:
        """Apply the oldest pending batch; returns success.

        With ``batch_deltas > 1`` a prefix of the queue is coalesced:
        the chained applications compose into one net splice and one
        warm (or degraded-cold) re-estimate covers them all.  The
        published epoch carries the *last* record's seq/fingerprint —
        the composed splice yields exactly the graph the last delta's
        chain fingerprint names, which the publish verifies.
        """
        with self._lock:
            if not self._pending:
                return False
            items = [
                self._pending[i]
                for i in range(
                    min(self.config.batch_deltas, len(self._pending))
                )
            ]
        item = items[0]
        record = items[-1].record
        if len(items) == 1:
            application = item.application
        else:
            application = compose_applications(
                [it.application for it in items]
            )
        epoch = self.store.current
        config = self.config
        est = epoch.estimates
        tele = get_telemetry()
        try:
            if self.chaos is not None:
                self.chaos.before_apply(record.seq)

            def _warm():
                return estimate_spam_mass(
                    application,
                    self.core,
                    damping=est.damping,
                    gamma=est.gamma,
                    previous=est,
                    engine=self.engine,
                )

            def _cold():
                return estimate_spam_mass(
                    application.after,
                    self.core,
                    damping=est.damping,
                    gamma=est.gamma,
                    engine=self.engine,
                )

            started = self._clock()
            new_estimates, degraded = guarded_call(
                _warm,
                _cold,
                config.ingest_policy(),
                label=f"wal-seq-{record.seq}",
            )
            if degraded:
                self.degraded_applies += 1
            candidate = epoch.successor(
                application.after, new_estimates, wal_seq=record.seq
            )
            self.store.publish(
                candidate,
                expected_fingerprint=record.after,
                pre_publish=(
                    None
                    if self.chaos is None
                    else lambda _ep: self.chaos.before_publish(record.seq)
                ),
            )
        except Exception as exc:
            self.apply_failures += 1
            if self._breaker.record_failure():
                self._degraded_reason = (
                    f"circuit open after "
                    f"{self._breaker.consecutive_failures} consecutive "
                    f"apply failures (last: {type(exc).__name__})"
                )
                if tele.enabled:
                    tele.event(
                        "serve.circuit_open",
                        seq=record.seq,
                        error=type(exc).__name__,
                    )
            if tele.enabled:
                tele.inc("serve.apply_failures")
                tele.event(
                    "serve.apply_failed",
                    seq=record.seq,
                    error=type(exc).__name__,
                )
            self._gauge_circuit()
            return False

        # success: persist the solution, advance the watermark, dequeue
        if self.checkpoint_dir is not None:
            save_solution(
                self.checkpoint_dir,
                np.stack(
                    [new_estimates.pagerank, new_estimates.core_pagerank],
                    axis=1,
                ),
                fingerprint=candidate.fingerprint,
                extra={
                    "damping": new_estimates.damping,
                    "gamma": new_estimates.gamma,
                    "labels": ["pagerank", "core"],
                    "wal_seq": record.seq,
                },
            )
        if self.wal is not None:
            # the watermark is monotone: the last coalesced seq covers
            # every record the composed apply consumed
            self.wal.mark_applied(record.seq)
        with self._lock:
            if self._pending and self._pending[0] is item:
                for _ in items:
                    self._pending.popleft()
        self.applies += 1
        self._applied_since_prune += len(items)
        # any success heals the breaker (fresh instance: `opened` is
        # sticky by design inside one supervised run, but the daemon
        # outlives many)
        self._breaker = CircuitBreaker(config.circuit_threshold)
        self._degraded_reason = None
        if tele.enabled:
            tele.inc("serve.applies")
            tele.event(
                "serve.applied",
                seq=record.seq,
                epoch=self.store.current.seq,
                batch=len(items),
                degraded=self.degraded_applies > 0,
                seconds=round(self._clock() - started, 6),
            )
        self._gauge_staleness()
        self._gauge_circuit()
        if self.on_apply is not None:
            # a failed ship must not fail the apply: scores are live
            # and durable; the shipper re-ships on its next chance
            try:
                self.on_apply(
                    self.store.current, [it.record for it in items]
                )
            except Exception as exc:  # noqa: BLE001 - containment
                if tele.enabled:
                    tele.event(
                        "replica.ship_failed",
                        seq=record.seq,
                        error=type(exc).__name__,
                    )
        if (
            self.wal is not None
            and self._applied_since_prune >= config.prune_every
        ):
            self.wal.prune()
            self._applied_since_prune = 0
        return True

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _gauge_staleness(self) -> None:
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("serve.staleness", self.staleness)

    def _gauge_circuit(self) -> None:
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge(
                "serve.circuit_state", 1 if self._breaker.is_open else 0
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScoringDaemon(epoch={self.store.current.seq}, "
            f"staleness={self.staleness}, degraded={self.degraded})"
        )
