"""Copy-on-write score epochs: atomic hot-swap, guard, rollback.

Readers of the serving daemon must never observe a *torn* state — a
graph from one crawl paired with scores from another.  The mechanism
is the oldest one in the book: everything a query needs (graph, mass
estimates, fingerprint, name lookup) is frozen into one immutable
:class:`Epoch`, and the store holds a single pointer to the current
one.  A reader grabs the pointer once (one attribute read — atomic
under the GIL) and answers entirely from that object; the ingest
worker builds the *next* epoch off to the side and publishes it with a
pointer swap.  No locks on the read path, no partially-updated arrays,
ever.

Publication is guarded: the candidate's scores must be finite and its
stamped fingerprint must equal both the fingerprint derived from the
delta chain *and* what the mutated graph hashes to
(:class:`~repro.errors.SnapshotMismatchError` otherwise) — a diverged
re-estimate is refused before any reader can see it.  The store keeps
the previous epoch, so a post-publish problem (a chaos-poisoned
vector, a failed validation downstream) rolls back with another
pointer swap.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

import numpy as np

from ..core import scale_scores
from ..errors import SnapshotMismatchError
from ..obs import get_telemetry

__all__ = ["Epoch", "EpochStore", "score_from_epoch", "top_from_epoch"]


class Epoch:
    """One immutable, self-contained serving state.

    Everything a query touches lives here; an epoch is never mutated
    after construction, so a reader holding one can never observe a
    half-applied update regardless of what the ingest worker does.
    """

    __slots__ = (
        "seq",
        "graph",
        "estimates",
        "fingerprint",
        "lookup",
        "wal_seq",
        "created_at",
    )

    def __init__(
        self,
        seq: int,
        graph,
        estimates,
        *,
        wal_seq: int = 0,
        lookup: Optional[Dict[str, int]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.seq = seq
        self.graph = graph
        self.estimates = estimates
        self.fingerprint = graph.structural_fingerprint()
        #: host name -> node id; node universes are fixed across deltas,
        #: so successor epochs share the parent's dict (never copied)
        self.lookup = (
            lookup
            if lookup is not None
            else {
                graph.name_of(i): i for i in range(graph.num_nodes)
            }
        )
        #: sequence of the last WAL record folded into these scores
        self.wal_seq = wal_seq
        self.created_at = clock()

    def successor(self, graph, estimates, *, wal_seq: int) -> "Epoch":
        """The next epoch, sharing this one's name lookup."""
        return Epoch(
            self.seq + 1,
            graph,
            estimates,
            wal_seq=wal_seq,
            lookup=self.lookup,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Epoch(seq={self.seq}, wal_seq={self.wal_seq}, "
            f"n={self.graph.num_nodes})"
        )


def score_from_epoch(epoch: Epoch, host: str) -> dict:
    """Per-host spam-mass score payload from one epoch.

    Shared by the daemon and read replicas so a replica's answer is
    *constructed* identically to the writer's — the differential
    replica battery then only has to prove the inputs (scores,
    fingerprints) match bitwise.  Raises :class:`KeyError` for an
    unknown host.
    """
    node = epoch.lookup.get(host)
    if node is None:
        raise KeyError(host)
    est = epoch.estimates
    n = epoch.graph.num_nodes
    return {
        "host": host,
        "node": int(node),
        "pagerank": float(est.pagerank[node]),
        "scaled_pagerank": float(
            scale_scores(est.pagerank[node:node + 1], n, est.damping)[0]
        ),
        "core_pagerank": float(est.core_pagerank[node]),
        "absolute_mass": float(est.absolute[node]),
        "relative_mass": float(est.relative[node]),
    }


def top_from_epoch(epoch: Epoch, k: int, *, tau: float, rho: float) -> dict:
    """Top-k spam candidates (Algorithm 2 gates) from one epoch."""
    if k < 1:
        raise ValueError("k must be >= 1")
    est = epoch.estimates
    scaled = scale_scores(est.pagerank, epoch.graph.num_nodes, est.damping)
    eligible = np.flatnonzero((scaled >= rho) & (est.relative >= tau))
    order = eligible[np.argsort(-est.relative[eligible], kind="stable")][:k]
    return {
        "candidates": [
            {
                "host": epoch.graph.name_of(int(node)),
                "relative_mass": float(est.relative[node]),
                "scaled_pagerank": float(scaled[node]),
            }
            for node in order
        ],
        "total_eligible": int(len(eligible)),
        "tau": tau,
        "rho": rho,
    }


class EpochStore:
    """The swap point: one current epoch, one rollback predecessor.

    The read side is a bare attribute access; the write side
    (:meth:`publish`, :meth:`rollback`) serializes under a lock, which
    costs nothing because only the single ingest worker ever writes.
    """

    def __init__(self, initial: Epoch) -> None:
        self._current = initial
        self._previous: Optional[Epoch] = None
        self._lock = threading.Lock()
        self.swaps = 0
        self.rollbacks = 0
        self._set_gauges(initial)

    @property
    def current(self) -> Epoch:
        """The serving epoch (a single atomic pointer read)."""
        return self._current

    @property
    def previous(self) -> Optional[Epoch]:
        return self._previous

    def publish(
        self,
        candidate: Epoch,
        *,
        expected_fingerprint: str = "",
        pre_publish: Optional[Callable[[Epoch], None]] = None,
    ) -> Epoch:
        """Validate ``candidate`` and swap it in atomically.

        ``expected_fingerprint`` is the fingerprint the delta chain
        says the new graph must have (the WAL record's ``after``); the
        guard refuses the swap when the candidate disagrees, and when
        its scores are not finite.  ``pre_publish`` is the chaos
        injection point — it runs after validation but *before* the
        pointer swap, so an injected kill lands exactly in the
        mid-swap window; if it raises, readers keep the old epoch.
        """
        actual = candidate.fingerprint
        if expected_fingerprint and actual != expected_fingerprint:
            raise SnapshotMismatchError(
                f"refusing epoch swap: re-estimated graph fingerprint "
                f"{actual!r} does not match the delta chain's expected "
                f"{expected_fingerprint!r}",
                expected=expected_fingerprint,
                actual=actual,
            )
        scores = candidate.estimates.pagerank
        core = candidate.estimates.core_pagerank
        if not (np.all(np.isfinite(scores)) and np.all(np.isfinite(core))):
            raise SnapshotMismatchError(
                "refusing epoch swap: re-estimated scores contain "
                "non-finite values (diverged re-estimate)",
                expected=expected_fingerprint,
                actual=actual,
            )
        if pre_publish is not None:
            pre_publish(candidate)
        with self._lock:
            self._previous = self._current
            self._current = candidate
            self.swaps += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("serve.swaps")
            tele.event(
                "serve.swap",
                epoch=candidate.seq,
                wal_seq=candidate.wal_seq,
                fingerprint=candidate.fingerprint,
            )
        self._set_gauges(candidate)
        return candidate

    def rollback(self) -> Optional[Epoch]:
        """Swap the previous epoch back in; ``None`` if there is none.

        Used when a published epoch is later found bad (health probe
        catches a poisoned vector).  Single-level on purpose: the WAL
        is the durable history, the store only needs one step of undo
        to keep serving while the ingest path recovers.
        """
        with self._lock:
            if self._previous is None:
                return None
            restored = self._previous
            self._previous = None
            self._current = restored
            self.rollbacks += 1
        tele = get_telemetry()
        if tele.enabled:
            tele.inc("serve.rollbacks")
            tele.event("serve.rollback", epoch=restored.seq)
        self._set_gauges(restored)
        return restored

    @staticmethod
    def _set_gauges(epoch: Epoch) -> None:
        tele = get_telemetry()
        if tele.enabled:
            tele.set_gauge("serve.epoch", epoch.seq)
            tele.set_gauge("serve.epoch_wal_seq", epoch.wal_seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochStore(current={self._current!r}, swaps={self.swaps}, "
            f"rollbacks={self.rollbacks})"
        )
