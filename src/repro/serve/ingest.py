"""Guarded incremental re-estimation: deadline, retries, degradation.

Both consumers of the incremental engine — the serving daemon's ingest
worker and the ``repro-spam update`` command — need the same wrapper
around a warm re-estimate: bound it with a wall-clock deadline (a
diffused push can cost far more than the typical case), retry
transient failures with deterministic backoff, and degrade to a cold
re-solve when the warm path keeps failing (unless degradation is
forbidden).  This mirrors :class:`~repro.runtime.supervisor.TaskSupervisor`
semantics for a *single* in-process task: the plan here is one
re-estimate, not a fan-out, so the machinery is a worker thread joined
against the deadline rather than a pool watchdog.

An abandoned attempt keeps running in its daemon thread until it
finishes or the process exits — same trade the supervisor makes with
hung pool workers: never block the caller behind a hang.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import ReproError, SupervisionError
from ..obs import get_telemetry
from ..runtime.retry import BackoffPolicy
from ..runtime.supervisor import DEFAULT_BACKOFF

__all__ = ["IngestPolicy", "IngestTimeout", "guarded_call"]


class IngestTimeout(ReproError):
    """A guarded re-estimate exceeded its deadline and was abandoned."""


@dataclass(frozen=True)
class IngestPolicy:
    """The knobs of one guarded re-estimate.

    ``max_retries`` re-runs of the *warm* path are allowed after its
    first attempt; when they are exhausted (or the deadline fires on
    the last attempt) the ``fallback`` — typically a cold re-solve —
    runs, unless ``allow_degrade`` is false, in which case
    :class:`~repro.errors.SupervisionError` is raised (the ``--no-degrade``
    contract).
    """

    max_retries: int = 1
    deadline: Optional[float] = None
    allow_degrade: bool = True
    backoff: BackoffPolicy = field(default_factory=lambda: DEFAULT_BACKOFF)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive")


def _call_with_deadline(
    fn: Callable[[], object], deadline: Optional[float]
):
    """Run ``fn`` bounded by ``deadline`` seconds; raise on expiry.

    Without a deadline the call is direct (no thread).  With one, the
    work runs in a daemon thread and the caller joins against the
    budget — numpy/scipy kernels release the GIL, so the worker makes
    real progress while the caller waits.
    """
    if deadline is None:
        return fn()
    box: dict = {}

    def _runner() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # propagated to the caller below
            box["error"] = exc

    thread = threading.Thread(
        target=_runner, name="guarded-reestimate", daemon=True
    )
    thread.start()
    thread.join(deadline)
    if thread.is_alive():
        raise IngestTimeout(
            f"re-estimate exceeded its {deadline:g}s deadline and was "
            "abandoned"
        )
    if "error" in box:
        raise box["error"]
    return box.get("value")


def guarded_call(
    warm: Callable[[], object],
    fallback: Optional[Callable[[], object]],
    policy: IngestPolicy,
    *,
    label: str = "ingest",
    sleep: Callable[[float], None] = time.sleep,
) -> tuple:
    """Run ``warm`` under the policy; returns ``(result, degraded)``.

    ``degraded`` is true when the result came from ``fallback``.  A
    warm attempt that raises (or times out) is retried up to
    ``policy.max_retries`` times with the policy's backoff; exhaustion
    degrades to ``fallback`` — still under the deadline — or raises
    :class:`SupervisionError` when degradation is disallowed or there
    is no fallback.
    """
    tele = get_telemetry()
    delays = policy.backoff.delays()
    last_error: Optional[BaseException] = None
    for attempt in range(1 + policy.max_retries):
        try:
            return _call_with_deadline(warm, policy.deadline), False
        except (ReproError, FloatingPointError) as exc:
            last_error = exc
            if tele.enabled:
                tele.inc("serve.ingest.retries" if attempt
                         < policy.max_retries else "serve.ingest.failures")
                tele.event(
                    "serve.ingest_attempt_failed",
                    label=label,
                    attempt=attempt + 1,
                    error=type(exc).__name__,
                )
            if attempt < policy.max_retries:
                if delays:
                    sleep(delays[min(attempt, len(delays) - 1)])
                continue
    if not policy.allow_degrade or fallback is None:
        raise SupervisionError(
            f"{label}: warm re-estimate failed "
            f"{1 + policy.max_retries} time(s) "
            f"(last: {type(last_error).__name__}: {last_error}) and "
            "degradation to a cold re-solve is "
            + ("disallowed" if fallback is not None else "unavailable"),
        ) from last_error
    if tele.enabled:
        tele.inc("serve.ingest.degraded")
        tele.event(
            "serve.ingest_degraded",
            label=label,
            error=type(last_error).__name__,
        )
    try:
        return _call_with_deadline(fallback, policy.deadline), True
    except (ReproError, FloatingPointError) as exc:
        raise SupervisionError(
            f"{label}: cold fallback failed after the warm path did "
            f"({type(exc).__name__}: {exc})",
        ) from exc
